//! A token-level C preprocessor.
//!
//! This is the mechanism that makes kernel specialization work exactly the
//! way the dissertation uses `nvcc -D` (§4.4): undefined constants in kernel
//! source become macros supplied on the "command line". Supports:
//!
//! * command-line defines (`-D NAME=value`, `-D FLAG` ⇒ `1`),
//! * object-like and function-like `#define` / `#undef`,
//! * conditional compilation: `#if`, `#ifdef`, `#ifndef`, `#elif`, `#else`,
//!   `#endif`, with full constant-expression evaluation and `defined()`,
//! * recursive macro expansion with self-reference protection (hide sets),
//! * `#pragma unroll [N]`, forwarded to the parser as a synthetic token,
//! * `#error`.

use crate::token::{LangError, Punct, Tok, Token};
use std::collections::{BTreeMap, HashSet};

/// Synthetic identifier the parser recognizes for `#pragma unroll`.
pub const PRAGMA_UNROLL: &str = "__pragma_unroll";

#[derive(Debug, Clone)]
struct MacroDef {
    /// `None` for object-like macros; parameter names otherwise.
    params: Option<Vec<String>>,
    body: Vec<Tok>,
}

struct Pp {
    macros: BTreeMap<String, MacroDef>,
    out: Vec<Token>,
}

fn err(t: Option<&Token>, msg: impl Into<String>) -> LangError {
    let (l, c) = t.map(|t| (t.line, t.col)).unwrap_or((0, 0));
    LangError::new("preprocess", l, c, msg)
}

/// Split the token stream into logical lines (a new line starts at a token
/// with `line_start == true`).
fn split_lines(tokens: Vec<Token>) -> Vec<Vec<Token>> {
    let mut lines: Vec<Vec<Token>> = Vec::new();
    for t in tokens {
        if t.line_start || lines.is_empty() {
            lines.push(vec![t]);
        } else {
            lines.last_mut().unwrap().push(t);
        }
    }
    lines
}

/// Run the preprocessor over a lexed token stream.
pub fn preprocess(
    tokens: Vec<Token>,
    defines: &[(String, String)],
) -> Result<Vec<Token>, LangError> {
    let mut pp = Pp {
        macros: BTreeMap::new(),
        out: Vec::new(),
    };
    for (name, value) in defines {
        let body = if value.is_empty() {
            vec![Tok::Int {
                value: 1,
                unsigned: false,
            }]
        } else {
            crate::lexer::lex(value)
                .map_err(|e| err(None, format!("in -D {name}={value}: {}", e.message)))?
                .into_iter()
                .map(|t| t.tok)
                .collect()
        };
        pp.macros
            .insert(name.clone(), MacroDef { params: None, body });
    }

    // Conditional-inclusion stack: (currently_active, any_branch_taken).
    let mut conds: Vec<(bool, bool)> = Vec::new();

    for line in split_lines(tokens) {
        let is_directive = matches!(line.first(), Some(t) if t.tok == Tok::Punct(Punct::Hash));
        let active = conds.iter().all(|&(a, _)| a);
        if is_directive {
            pp.directive(&line, &mut conds, active)?;
        } else if active {
            let mut expanded = Vec::new();
            pp.expand(&line, &HashSet::new(), &mut expanded)?;
            pp.out.extend(expanded);
        }
    }
    if !conds.is_empty() {
        return Err(err(None, "unterminated #if/#ifdef block"));
    }
    Ok(pp.out)
}

impl Pp {
    fn directive(
        &mut self,
        line: &[Token],
        conds: &mut Vec<(bool, bool)>,
        active: bool,
    ) -> Result<(), LangError> {
        let name = match line.get(1).map(|t| &t.tok) {
            Some(Tok::Ident(s)) => s.clone(),
            None => return Ok(()), // bare '#': null directive
            _ => return Err(err(line.get(1), "expected directive name after '#'")),
        };
        let rest = &line[2..];
        match name.as_str() {
            "define" if active => self.define(line, rest),
            "undef" if active => {
                if let Some(Tok::Ident(n)) = rest.first().map(|t| &t.tok) {
                    self.macros.remove(n);
                    Ok(())
                } else {
                    Err(err(rest.first(), "expected macro name after #undef"))
                }
            }
            "ifdef" | "ifndef" => {
                let cond = if active {
                    match rest.first().map(|t| &t.tok) {
                        Some(Tok::Ident(n)) => {
                            let d = self.macros.contains_key(n);
                            if name == "ifdef" {
                                d
                            } else {
                                !d
                            }
                        }
                        _ => return Err(err(rest.first(), "expected macro name")),
                    }
                } else {
                    false
                };
                conds.push((cond, cond));
                Ok(())
            }
            "if" => {
                let cond = if active {
                    self.eval_condition(rest)? != 0
                } else {
                    false
                };
                conds.push((cond, cond));
                Ok(())
            }
            "elif" => {
                let Some(&(_, taken)) = conds.last() else {
                    return Err(err(line.first(), "#elif without #if"));
                };
                let parent_active = conds[..conds.len() - 1].iter().all(|&(a, _)| a);
                let cond = if parent_active && !taken {
                    self.eval_condition(rest)? != 0
                } else {
                    false
                };
                let last = conds.last_mut().unwrap();
                last.0 = cond;
                last.1 = taken || cond;
                Ok(())
            }
            "else" => {
                let Some(&(_, taken)) = conds.last() else {
                    return Err(err(line.first(), "#else without #if"));
                };
                let parent_active = conds[..conds.len() - 1].iter().all(|&(a, _)| a);
                let last = conds.last_mut().unwrap();
                last.0 = parent_active && !taken;
                last.1 = true;
                Ok(())
            }
            "endif" => {
                if conds.pop().is_none() {
                    return Err(err(line.first(), "#endif without #if"));
                }
                Ok(())
            }
            "pragma" if active => {
                // Forward `#pragma unroll [N]` to the parser; ignore others.
                if matches!(rest.first().map(|t| &t.tok), Some(Tok::Ident(s)) if s == "unroll") {
                    let tmpl = line.first().unwrap();
                    self.out.push(Token {
                        tok: Tok::ident(PRAGMA_UNROLL),
                        line: tmpl.line,
                        col: tmpl.col,
                        line_start: false,
                    });
                    // Optional count: `#pragma unroll 4` or `#pragma unroll(4)`.
                    for t in &rest[1..] {
                        if let Tok::Int { .. } = t.tok {
                            self.out.push(Token {
                                line_start: false,
                                ..t.clone()
                            });
                        }
                    }
                }
                Ok(())
            }
            "error" if active => {
                let msg: Vec<String> = rest.iter().map(|t| t.tok.to_string()).collect();
                Err(err(line.first(), format!("#error {}", msg.join(" "))))
            }
            // Inactive regions still balance their nesting but skip content.
            "define" | "undef" | "pragma" | "error" => Ok(()),
            other => {
                if active {
                    Err(err(line.get(1), format!("unknown directive #{other}")))
                } else {
                    Ok(())
                }
            }
        }
    }

    fn define(&mut self, line: &[Token], rest: &[Token]) -> Result<(), LangError> {
        let Some(Tok::Ident(name)) = rest.first().map(|t| &t.tok) else {
            return Err(err(line.first(), "expected macro name after #define"));
        };
        let name = name.clone();
        // Function-like iff '(' immediately follows the name (same column
        // adjacency is approximated by token adjacency, which is what we
        // have after lexing; C requires no space, we accept adjacency).
        let is_fn = rest.len() > 1
            && rest[1].tok == Tok::Punct(Punct::LParen)
            && rest[1].line == rest[0].line
            && rest[1].col == rest[0].col + name.len() as u32;
        if is_fn {
            let mut params = Vec::new();
            let mut i = 2;
            if rest.get(i).map(|t| &t.tok) == Some(&Tok::Punct(Punct::RParen)) {
                i += 1;
            } else {
                loop {
                    match rest.get(i).map(|t| &t.tok) {
                        Some(Tok::Ident(p)) => params.push(p.clone()),
                        _ => return Err(err(rest.get(i), "expected macro parameter name")),
                    }
                    i += 1;
                    match rest.get(i).map(|t| &t.tok) {
                        Some(Tok::Punct(Punct::Comma)) => i += 1,
                        Some(Tok::Punct(Punct::RParen)) => {
                            i += 1;
                            break;
                        }
                        _ => return Err(err(rest.get(i), "expected ',' or ')' in macro params")),
                    }
                }
            }
            let body = rest[i..].iter().map(|t| t.tok.clone()).collect();
            self.macros.insert(
                name,
                MacroDef {
                    params: Some(params),
                    body,
                },
            );
        } else {
            let body = rest[1..].iter().map(|t| t.tok.clone()).collect();
            self.macros.insert(name, MacroDef { params: None, body });
        }
        Ok(())
    }

    /// Expand macros in `line`, appending to `out`. `hide` carries the set
    /// of macro names already being expanded (self-reference protection).
    fn expand(
        &self,
        line: &[Token],
        hide: &HashSet<String>,
        out: &mut Vec<Token>,
    ) -> Result<(), LangError> {
        let mut i = 0;
        while i < line.len() {
            let t = &line[i];
            let Tok::Ident(name) = &t.tok else {
                out.push(t.clone());
                i += 1;
                continue;
            };
            let Some(def) = self.macros.get(name) else {
                out.push(t.clone());
                i += 1;
                continue;
            };
            if hide.contains(name) {
                out.push(t.clone());
                i += 1;
                continue;
            }
            match &def.params {
                None => {
                    let mut h = hide.clone();
                    h.insert(name.clone());
                    let body: Vec<Token> = def
                        .body
                        .iter()
                        .map(|tok| Token {
                            tok: tok.clone(),
                            line: t.line,
                            col: t.col,
                            line_start: false,
                        })
                        .collect();
                    self.expand(&body, &h, out)?;
                    i += 1;
                }
                Some(params) => {
                    // Function-like: only expands when followed by '('.
                    if line.get(i + 1).map(|t| &t.tok) != Some(&Tok::Punct(Punct::LParen)) {
                        out.push(t.clone());
                        i += 1;
                        continue;
                    }
                    let (args, consumed) = collect_args(&line[i + 1..]).ok_or_else(|| {
                        err(Some(t), format!("unterminated call to macro {name}"))
                    })?;
                    if args.len() != params.len()
                        && !(params.is_empty() && args.len() == 1 && args[0].is_empty())
                    {
                        return Err(err(
                            Some(t),
                            format!(
                                "macro {name} expects {} arguments, got {}",
                                params.len(),
                                args.len()
                            ),
                        ));
                    }
                    // Pre-expand arguments (call-by-value prescan).
                    let mut exp_args: Vec<Vec<Token>> = Vec::with_capacity(args.len());
                    for a in &args {
                        let mut e = Vec::new();
                        self.expand(a, hide, &mut e)?;
                        exp_args.push(e);
                    }
                    // Substitute parameters in the body.
                    let mut subst: Vec<Token> = Vec::new();
                    for btok in &def.body {
                        if let Tok::Ident(b) = btok {
                            if let Some(pi) = params.iter().position(|p| p == b) {
                                subst.extend(exp_args[pi].iter().cloned());
                                continue;
                            }
                        }
                        subst.push(Token {
                            tok: btok.clone(),
                            line: t.line,
                            col: t.col,
                            line_start: false,
                        });
                    }
                    let mut h = hide.clone();
                    h.insert(name.clone());
                    self.expand(&subst, &h, out)?;
                    i += 1 + consumed;
                }
            }
        }
        Ok(())
    }

    /// Evaluate a `#if`/`#elif` controlling expression.
    fn eval_condition(&self, toks: &[Token]) -> Result<i64, LangError> {
        // First pass: resolve `defined(X)` / `defined X` before expansion.
        let mut resolved: Vec<Token> = Vec::new();
        let mut i = 0;
        while i < toks.len() {
            if toks[i].tok.is_ident("defined") {
                let (name_tok, consumed) =
                    if toks.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct(Punct::LParen)) {
                        (toks.get(i + 2), 4)
                    } else {
                        (toks.get(i + 1), 2)
                    };
                let Some(Tok::Ident(n)) = name_tok.map(|t| &t.tok) else {
                    return Err(err(toks.get(i), "expected name after defined"));
                };
                let v = i64::from(self.macros.contains_key(n));
                resolved.push(Token {
                    tok: Tok::Int {
                        value: v,
                        unsigned: false,
                    },
                    line: toks[i].line,
                    col: toks[i].col,
                    line_start: false,
                });
                i += consumed;
            } else {
                resolved.push(toks[i].clone());
                i += 1;
            }
        }
        let mut expanded = Vec::new();
        self.expand(&resolved, &HashSet::new(), &mut expanded)?;
        // Remaining identifiers evaluate to 0, per C semantics.
        let mut p = CondParser {
            toks: &expanded,
            pos: 0,
        };
        let v = p.ternary()?;
        if p.pos != p.toks.len() {
            return Err(err(p.toks.get(p.pos), "trailing tokens in #if expression"));
        }
        Ok(v)
    }
}

/// Collect macro-call arguments. `toks[0]` must be '('. Returns the argument
/// token lists and the number of tokens consumed (including both parens).
fn collect_args(toks: &[Token]) -> Option<(Vec<Vec<Token>>, usize)> {
    debug_assert_eq!(toks[0].tok, Tok::Punct(Punct::LParen));
    let mut args: Vec<Vec<Token>> = vec![Vec::new()];
    let mut depth = 1usize;
    let mut i = 1;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct(Punct::LParen) => {
                depth += 1;
                args.last_mut().unwrap().push(toks[i].clone());
            }
            Tok::Punct(Punct::RParen) => {
                depth -= 1;
                if depth == 0 {
                    return Some((args, i + 1));
                }
                args.last_mut().unwrap().push(toks[i].clone());
            }
            Tok::Punct(Punct::Comma) if depth == 1 => args.push(Vec::new()),
            _ => args.last_mut().unwrap().push(toks[i].clone()),
        }
        i += 1;
    }
    None
}

/// Minimal Pratt parser for `#if` constant expressions.
struct CondParser<'a> {
    toks: &'a [Token],
    pos: usize,
}

impl<'a> CondParser<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn bump(&mut self) -> Option<&Tok> {
        let t = self.toks.get(self.pos).map(|t| &t.tok);
        self.pos += 1;
        t
    }

    fn eat(&mut self, p: Punct) -> bool {
        if self.peek() == Some(&Tok::Punct(p)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn primary(&mut self) -> Result<i64, LangError> {
        let here = self.pos;
        match self.bump() {
            Some(Tok::Int { value, .. }) => Ok(*value),
            Some(Tok::Ident(_)) => Ok(0), // undefined identifiers are 0
            Some(Tok::Punct(Punct::LParen)) => {
                let v = self.ternary()?;
                if !self.eat(Punct::RParen) {
                    return Err(err(self.toks.get(self.pos), "expected ')'"));
                }
                Ok(v)
            }
            Some(Tok::Punct(Punct::Minus)) => Ok(-self.primary()?),
            Some(Tok::Punct(Punct::Plus)) => self.primary(),
            Some(Tok::Punct(Punct::Not)) => Ok(i64::from(self.primary()? == 0)),
            Some(Tok::Punct(Punct::Tilde)) => Ok(!self.primary()?),
            t => {
                let msg = format!("unexpected token {t:?} in #if expression");
                Err(err(self.toks.get(here), msg))
            }
        }
    }

    fn binary(&mut self, min_prec: u8) -> Result<i64, LangError> {
        let mut lhs = self.primary()?;
        while let Some(&Tok::Punct(p)) = self.peek() {
            let (prec, f): (u8, fn(i64, i64) -> i64) = match p {
                Punct::Star => (10, |a, b| a.wrapping_mul(b)),
                Punct::Slash => (10, |a, b| if b == 0 { 0 } else { a / b }),
                Punct::Percent => (10, |a, b| if b == 0 { 0 } else { a % b }),
                Punct::Plus => (9, |a, b| a.wrapping_add(b)),
                Punct::Minus => (9, |a, b| a.wrapping_sub(b)),
                Punct::Shl => (8, |a, b| a.wrapping_shl(b as u32)),
                Punct::Shr => (8, |a, b| a.wrapping_shr(b as u32)),
                Punct::Lt => (7, |a, b| i64::from(a < b)),
                Punct::Le => (7, |a, b| i64::from(a <= b)),
                Punct::Gt => (7, |a, b| i64::from(a > b)),
                Punct::Ge => (7, |a, b| i64::from(a >= b)),
                Punct::EqEq => (6, |a, b| i64::from(a == b)),
                Punct::NotEq => (6, |a, b| i64::from(a != b)),
                Punct::Amp => (5, |a, b| a & b),
                Punct::Caret => (4, |a, b| a ^ b),
                Punct::Pipe => (3, |a, b| a | b),
                Punct::AndAnd => (2, |a, b| i64::from(a != 0 && b != 0)),
                Punct::OrOr => (1, |a, b| i64::from(a != 0 || b != 0)),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.pos += 1;
            let rhs = self.binary(prec + 1)?;
            lhs = f(lhs, rhs);
        }
        Ok(lhs)
    }

    fn ternary(&mut self) -> Result<i64, LangError> {
        let c = self.binary(1)?;
        if self.eat(Punct::Question) {
            let a = self.ternary()?;
            if !self.eat(Punct::Colon) {
                return Err(err(self.toks.get(self.pos), "expected ':'"));
            }
            let b = self.ternary()?;
            Ok(if c != 0 { a } else { b })
        } else {
            Ok(c)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn pp(src: &str, defs: &[(&str, &str)]) -> Result<String, LangError> {
        let defs: Vec<(String, String)> = defs
            .iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect();
        let toks = preprocess(lex(src)?, &defs)?;
        Ok(toks
            .iter()
            .map(|t| t.tok.to_string())
            .collect::<Vec<_>>()
            .join(" "))
    }

    #[test]
    fn object_macro_expansion() {
        assert_eq!(pp("#define N 5\nint x = N;", &[]).unwrap(), "int x = 5 ;");
    }

    #[test]
    fn command_line_define_wins_like_nvcc_d() {
        assert_eq!(
            pp("int x = TILE_W;", &[("TILE_W", "32")]).unwrap(),
            "int x = 32 ;"
        );
        // Bare flag define becomes 1.
        assert_eq!(pp("int x = FLAG;", &[("FLAG", "")]).unwrap(), "int x = 1 ;");
    }

    #[test]
    fn function_like_macro() {
        assert_eq!(
            pp("#define MUL(a, b) ((a) * (b))\nint x = MUL(3, 4 + 1);", &[]).unwrap(),
            "int x = ( ( 3 ) * ( 4 + 1 ) ) ;"
        );
    }

    #[test]
    fn function_like_without_call_left_alone() {
        assert_eq!(pp("#define F(x) x\nint F;", &[]).unwrap(), "int F ;");
    }

    #[test]
    fn nested_macros_expand() {
        assert_eq!(
            pp("#define A B\n#define B 7\nint x = A;", &[]).unwrap(),
            "int x = 7 ;"
        );
    }

    #[test]
    fn self_reference_does_not_loop() {
        assert_eq!(
            pp("#define X X + 1\nint y = X;", &[]).unwrap(),
            "int y = X + 1 ;"
        );
    }

    #[test]
    fn ifdef_selects_branch() {
        let src = "#ifdef CT_COUNT\nint a;\n#else\nint b;\n#endif";
        assert_eq!(pp(src, &[("CT_COUNT", "4")]).unwrap(), "int a ;");
        assert_eq!(pp(src, &[]).unwrap(), "int b ;");
    }

    #[test]
    fn if_expression_with_defined_and_arith() {
        let src =
            "#if defined(A) && A >= 20\nint hi;\n#elif defined(A)\nint lo;\n#else\nint no;\n#endif";
        assert_eq!(pp(src, &[("A", "32")]).unwrap(), "int hi ;");
        assert_eq!(pp(src, &[("A", "8")]).unwrap(), "int lo ;");
        assert_eq!(pp(src, &[]).unwrap(), "int no ;");
    }

    #[test]
    fn nested_conditionals() {
        let src = "#if 1\n#if 0\nint a;\n#else\nint b;\n#endif\n#endif";
        assert_eq!(pp(src, &[]).unwrap(), "int b ;");
    }

    #[test]
    fn undef_removes() {
        let src = "#define N 1\n#undef N\n#ifdef N\nint a;\n#else\nint b;\n#endif";
        assert_eq!(pp(src, &[]).unwrap(), "int b ;");
    }

    #[test]
    fn pragma_unroll_forwarded() {
        let s = pp("#pragma unroll 4\nfor", &[]).unwrap();
        assert_eq!(s, "__pragma_unroll 4 for");
        let s = pp("#pragma unroll\nfor", &[]).unwrap();
        assert_eq!(s, "__pragma_unroll for");
    }

    #[test]
    fn error_directive_fires_only_when_active() {
        assert!(pp("#error boom", &[]).is_err());
        assert_eq!(
            pp("#if 0\n#error boom\n#endif\nint x;", &[]).unwrap(),
            "int x ;"
        );
    }

    #[test]
    fn unterminated_if_is_error() {
        assert!(pp("#if 1\nint x;", &[]).is_err());
    }

    #[test]
    fn multiline_define_via_continuation() {
        let src = "#define SUM(a,b) \\\n ((a)+(b))\nint x = SUM(1,2);";
        assert_eq!(pp(src, &[]).unwrap(), "int x = ( ( 1 ) + ( 2 ) ) ;");
    }

    #[test]
    fn ternary_in_condition() {
        assert_eq!(pp("#if 1 ? 2 : 0\nint a;\n#endif", &[]).unwrap(), "int a ;");
    }

    #[test]
    fn undefined_ident_in_if_is_zero() {
        assert_eq!(
            pp("#if WAT\nint a;\n#else\nint b;\n#endif", &[]).unwrap(),
            "int b ;"
        );
    }

    #[test]
    fn zero_arg_function_macro() {
        assert_eq!(
            pp("#define F() 42\nint x = F();", &[]).unwrap(),
            "int x = 42 ;"
        );
    }

    #[test]
    fn non_unroll_pragmas_are_dropped() {
        assert_eq!(pp("#pragma once\nint x;", &[]).unwrap(), "int x ;");
    }

    #[test]
    fn nested_macro_calls_in_arguments() {
        let src = "#define TWICE(x) ((x)*2)\n#define INC(x) ((x)+1)\nint v = TWICE(INC(3));";
        assert_eq!(pp(src, &[]).unwrap(), "int v = ( ( ( ( 3 ) + 1 ) ) * 2 ) ;");
    }

    #[test]
    fn default_value_pattern_from_paper() {
        // The Appendix-B pattern: define a default when not specified.
        let src = "#ifndef LOOP_COUNT\n#define LOOP_COUNT loopCount\n#endif\nx = LOOP_COUNT;";
        assert_eq!(pp(src, &[]).unwrap(), "x = loopCount ;");
        assert_eq!(pp(src, &[("LOOP_COUNT", "5")]).unwrap(), "x = 5 ;");
    }
}
