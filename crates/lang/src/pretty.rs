//! AST pretty-printer: render a parsed [`TranslationUnit`] back to
//! source text that the front end accepts and parses to the *same* AST.
//!
//! Expressions are printed fully parenthesized, so no operator
//! precedence table is needed and the reparse is structurally forced.
//! The round trip `parse(print(tu)) == tu` holds for every AST the
//! parser itself can produce (and is fuzzed in `tests/fuzz.rs`); ASTs
//! constructed by hand can step outside that set — negative or
//! non-finite literals, for instance, have no literal token form and
//! reparse as `Unary(Neg, …)`.

use crate::ast::*;
use std::fmt::Write;

/// Render a full translation unit.
pub fn print_unit(tu: &TranslationUnit) -> String {
    let mut out = String::new();
    for item in &tu.items {
        match item {
            Item::Func(f) => print_func(&mut out, f),
            Item::Constant(c) => {
                let _ = write!(out, "__constant__ {} {}", ty(&c.elem), c.name);
                for d in &c.dims {
                    let _ = write!(out, "[{}]", expr(d));
                }
                out.push_str(";\n");
            }
            Item::Texture(t) => {
                let _ = writeln!(out, "texture<{}> {};", ty(&t.elem), t.name);
            }
        }
    }
    out
}

fn print_func(out: &mut String, f: &FuncDef) {
    let kind = match f.kind {
        FnKind::Kernel => "__global__",
        FnKind::Device => "__device__",
    };
    let params = f
        .params
        .iter()
        .map(|p| format!("{} {}", ty(&p.ty), p.name))
        .collect::<Vec<_>>()
        .join(", ");
    let _ = writeln!(out, "{kind} {} {}({}) {{", ty(&f.ret), f.name, params);
    for s in &f.body {
        stmt(out, s, 1);
    }
    out.push_str("}\n");
}

/// Render a type specifier, e.g. `unsigned int**`.
pub fn ty(t: &TypeSpec) -> String {
    match t {
        TypeSpec::Void => "void".into(),
        TypeSpec::Int => "int".into(),
        TypeSpec::UInt => "unsigned int".into(),
        TypeSpec::Float => "float".into(),
        TypeSpec::Ptr(inner) => format!("{}*", ty(inner)),
    }
}

fn ptr_depth(t: &TypeSpec) -> usize {
    match t {
        TypeSpec::Ptr(inner) => 1 + ptr_depth(inner),
        _ => 0,
    }
}

/// Render one declarator (everything after the base type).
fn declarator(d: &Decl, extra_stars: usize) -> String {
    let mut s = format!("{}{}", "*".repeat(extra_stars), d.name);
    for dim in &d.dims {
        let _ = write!(s, "[{}]", expr(dim));
    }
    if let Some(init) = &d.init {
        let _ = write!(s, " = {}", expr(init));
    }
    s
}

fn decl_qualifiers(d: &Decl) -> String {
    let mut q = String::new();
    if d.shared {
        q.push_str("__shared__ ");
    }
    if d.is_const {
        q.push_str("const ");
    }
    q
}

/// Render a statement at `indent` levels, including the trailing newline.
pub fn stmt(out: &mut String, s: &Stmt, indent: usize) {
    let pad = "    ".repeat(indent);
    match s {
        Stmt::Decl(d) => {
            let _ = writeln!(
                out,
                "{pad}{}{} {};",
                decl_qualifiers(d),
                ty(&d.ty),
                declarator(d, 0)
            );
        }
        Stmt::Multi(decls) => {
            // All declarators share the first one's base type; later
            // declarators carry their extra pointer depth as stars
            // (mirroring how the parser distributes `int* a, *b;`).
            let Some(Stmt::Decl(first)) = decls.first() else {
                for d in decls {
                    stmt(out, d, indent);
                }
                return;
            };
            let base_depth = ptr_depth(&first.ty);
            let parts = decls
                .iter()
                .map(|s| {
                    let Stmt::Decl(d) = s else {
                        unreachable!("Multi holds only Decl statements")
                    };
                    declarator(d, ptr_depth(&d.ty).saturating_sub(base_depth))
                })
                .collect::<Vec<_>>()
                .join(", ");
            let _ = writeln!(
                out,
                "{pad}{}{} {};",
                decl_qualifiers(first),
                ty(&first.ty),
                parts
            );
        }
        Stmt::Expr(e) => {
            let _ = writeln!(out, "{pad}{};", expr(e));
        }
        Stmt::If {
            cond,
            then_s,
            else_s,
        } => {
            let _ = writeln!(out, "{pad}if ({})", expr(cond));
            stmt(out, then_s, indent + 1);
            if let Some(e) = else_s {
                let _ = writeln!(out, "{pad}else");
                stmt(out, e, indent + 1);
            }
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
            unroll,
        } => {
            match unroll {
                Some(Some(n)) => {
                    let _ = writeln!(out, "{pad}#pragma unroll {n}");
                }
                Some(None) => {
                    let _ = writeln!(out, "{pad}#pragma unroll");
                }
                None => {}
            }
            let init_s = match init {
                // The init statement renders with its own ';'.
                Some(s) => {
                    let mut tmp = String::new();
                    stmt(&mut tmp, s, 0);
                    tmp.trim_end().to_string()
                }
                None => ";".into(),
            };
            let cond_s = cond.as_ref().map(expr).unwrap_or_default();
            let step_s = step.as_ref().map(expr).unwrap_or_default();
            let _ = writeln!(out, "{pad}for ({init_s} {cond_s}; {step_s})");
            stmt(out, body, indent + 1);
        }
        Stmt::While { cond, body } => {
            let _ = writeln!(out, "{pad}while ({})", expr(cond));
            stmt(out, body, indent + 1);
        }
        Stmt::DoWhile { body, cond } => {
            let _ = writeln!(out, "{pad}do");
            stmt(out, body, indent + 1);
            let _ = writeln!(out, "{pad}while ({});", expr(cond));
        }
        Stmt::Return(None) => {
            let _ = writeln!(out, "{pad}return;");
        }
        Stmt::Return(Some(e)) => {
            let _ = writeln!(out, "{pad}return {};", expr(e));
        }
        Stmt::Break => {
            let _ = writeln!(out, "{pad}break;");
        }
        Stmt::Continue => {
            let _ = writeln!(out, "{pad}continue;");
        }
        Stmt::Block(stmts) => {
            let _ = writeln!(out, "{pad}{{");
            for s in stmts {
                stmt(out, s, indent + 1);
            }
            let _ = writeln!(out, "{pad}}}");
        }
        Stmt::Sync => {
            let _ = writeln!(out, "{pad}__syncthreads();");
        }
        Stmt::Empty => {
            let _ = writeln!(out, "{pad};");
        }
    }
}

/// Render an expression, parenthesizing every composite node.
pub fn expr(e: &Expr) -> String {
    match e {
        Expr::IntLit { value, unsigned } => {
            if *unsigned {
                format!("{value}u")
            } else {
                format!("{value}")
            }
        }
        // `{:?}` is Rust's shortest round-tripping float form; the `f`
        // suffix keeps the lexer in f32. Infinity (reachable only from
        // overflowing literals like `1e40f`) re-overflows the same way.
        Expr::FloatLit(v) if v.is_infinite() => "1e39f".into(),
        Expr::FloatLit(v) => format!("{v:?}f"),
        Expr::Ident(n) => n.clone(),
        Expr::Builtin(b, d) => {
            let var = match b {
                BuiltinVar::ThreadIdx => "threadIdx",
                BuiltinVar::BlockIdx => "blockIdx",
                BuiltinVar::BlockDim => "blockDim",
                BuiltinVar::GridDim => "gridDim",
            };
            let dim = match d {
                Dim3::X => "x",
                Dim3::Y => "y",
                Dim3::Z => "z",
            };
            format!("{var}.{dim}")
        }
        Expr::Unary(op, a) => {
            let a = expr(a);
            match op {
                UnaryOp::Neg => format!("(-{a})"),
                UnaryOp::LogicalNot => format!("(!{a})"),
                UnaryOp::BitNot => format!("(~{a})"),
                UnaryOp::Deref => format!("(*{a})"),
                UnaryOp::PreInc => format!("(++{a})"),
                UnaryOp::PreDec => format!("(--{a})"),
                UnaryOp::PostInc => format!("({a}++)"),
                UnaryOp::PostDec => format!("({a}--)"),
            }
        }
        Expr::Binary(op, a, b) => {
            let sym = match op {
                BinaryOp::Add => "+",
                BinaryOp::Sub => "-",
                BinaryOp::Mul => "*",
                BinaryOp::Div => "/",
                BinaryOp::Rem => "%",
                BinaryOp::Shl => "<<",
                BinaryOp::Shr => ">>",
                BinaryOp::Lt => "<",
                BinaryOp::Le => "<=",
                BinaryOp::Gt => ">",
                BinaryOp::Ge => ">=",
                BinaryOp::Eq => "==",
                BinaryOp::Ne => "!=",
                BinaryOp::BitAnd => "&",
                BinaryOp::BitXor => "^",
                BinaryOp::BitOr => "|",
                BinaryOp::LogicalAnd => "&&",
                BinaryOp::LogicalOr => "||",
            };
            format!("({} {sym} {})", expr(a), expr(b))
        }
        Expr::Assign(op, lhs, rhs) => {
            let sym = match op {
                AssignOp::Assign => "=",
                AssignOp::Add => "+=",
                AssignOp::Sub => "-=",
                AssignOp::Mul => "*=",
                AssignOp::Div => "/=",
                AssignOp::Rem => "%=",
                AssignOp::Shl => "<<=",
                AssignOp::Shr => ">>=",
                AssignOp::And => "&=",
                AssignOp::Or => "|=",
                AssignOp::Xor => "^=",
            };
            format!("({} {sym} {})", expr(lhs), expr(rhs))
        }
        Expr::Cond(c, a, b) => format!("({} ? {} : {})", expr(c), expr(a), expr(b)),
        Expr::Index(base, idx) => format!("{}[{}]", expr(base), expr(idx)),
        Expr::Call(name, args) => {
            let args = args.iter().map(expr).collect::<Vec<_>>().join(", ");
            format!("{name}({args})")
        }
        Expr::Cast(t, inner) => format!("(({}){})", ty(t), expr(inner)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lexer, parser, preproc};

    fn reparse(src: &str) -> TranslationUnit {
        parser::parse(preproc::preprocess(lexer::lex(src).unwrap(), &[]).unwrap()).unwrap()
    }

    fn roundtrip(src: &str) {
        let tu = reparse(src);
        let printed = print_unit(&tu);
        let tu2 = reparse(&printed);
        assert_eq!(tu, tu2, "pretty output diverged:\n{printed}");
    }

    #[test]
    fn roundtrips_listing_4_1() {
        roundtrip(
            r#"
            __global__ void mathTest(int* in, int* out, int argA, int argB, int loopCount) {
                int acc = 0;
                const unsigned int stride = argA * argB;
                const unsigned int offset = blockIdx.x * blockDim.x + threadIdx.x;
                for (int i = 0; i < loopCount; i++) {
                    acc += *(in + offset + i * stride);
                }
                *(out + offset) = acc;
                return;
            }
            "#,
        );
    }

    #[test]
    fn roundtrips_shared_multi_and_pragma() {
        roundtrip(
            r#"
            __constant__ float filt[32];
            texture<float> tex;
            __device__ float square(float x) { return x * x; }
            __global__ void k(float* p, int n) {
                __shared__ float tile[4][8];
                int a = 1, b = 2;
                float* q = (float*)p;
                #pragma unroll 4
                for (int i = 0; i < n; i++) {
                    tile[threadIdx.y][threadIdx.x] = q[i] > 0.5f ? square(q[i]) : -q[i];
                    __syncthreads();
                }
                do { a--; } while (a > 0 && b != 0);
                while (b > 0) { b >>= 1; }
                if (n % 2) { p[0] = 1.0f; } else { p[1] = 2.5e-2f; }
                p[a] = (float)(b++);
            }
            "#,
        );
    }

    #[test]
    fn unsigned_and_large_literals_roundtrip() {
        roundtrip("__global__ void k(unsigned int* o) { o[0] = 5000000000 + 7u; }");
    }
}
