//! Semantic analysis: name resolution, type checking, device-function
//! inlining, and lowering of the untyped AST into a typed HIR that the
//! code generator consumes.
//!
//! The HIR keeps structured control flow (needed for AST-level loop
//! unrolling in `ks-codegen`) but resolves every name to a symbol id and
//! annotates every expression with a type.

use crate::ast::{self, BinaryOp, Expr, FnKind, Item, Stmt, TranslationUnit, TypeSpec, UnaryOp};
use crate::token::LangError;
use std::collections::HashMap;

/// The typed intermediate representation.
pub mod hir {
    pub use crate::ast::{BuiltinVar, Dim3};

    /// Element type of pointers, arrays, and constant memory.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub enum Elem {
        Int,
        UInt,
        Float,
    }

    impl Elem {
        pub fn size_bytes(self) -> u32 {
            4
        }
    }

    /// Scalar expression types.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub enum HTy {
        Int,
        UInt,
        Float,
        Bool,
        Ptr(Elem),
    }

    impl HTy {
        pub fn from_elem(e: Elem) -> HTy {
            match e {
                Elem::Int => HTy::Int,
                Elem::UInt => HTy::UInt,
                Elem::Float => HTy::Float,
            }
        }

        pub fn as_elem(self) -> Option<Elem> {
            match self {
                HTy::Int => Some(Elem::Int),
                HTy::UInt => Some(Elem::UInt),
                HTy::Float => Some(Elem::Float),
                _ => None,
            }
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
    pub struct LocalId(pub u32);
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub struct ParamId(pub u32);
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub struct SharedId(pub u32);
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub struct ConstId(pub u32);
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub struct TexId(pub u32);

    /// Built-in device functions.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub enum BuiltinFn {
        Sqrtf,
        Rsqrtf,
        Fabsf,
        Floorf,
        Fminf,
        Fmaxf,
        MinI,
        MaxI,
        MinU,
        MaxU,
        AbsI,
        Mul24,
        UMul24,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub enum HBinOp {
        Add,
        Sub,
        Mul,
        Div,
        Rem,
        Shl,
        Shr,
        And,
        Or,
        Xor,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub enum HUnOp {
        Neg,
        BitNot,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub enum HCmp {
        Eq,
        Ne,
        Lt,
        Le,
        Gt,
        Ge,
    }

    /// An lvalue.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Place {
        /// Scalar local variable.
        Local(LocalId),
        /// Element of a per-thread local array (flattened element index).
        LocalElem(LocalId, Box<HExpr>),
        /// Element of a `__shared__` array (flattened element index).
        SharedElem(SharedId, Box<HExpr>),
        /// `*ptr` into global memory.
        Deref { ptr: Box<HExpr>, elem: Elem },
    }

    /// Typed expressions.
    #[derive(Debug, Clone, PartialEq)]
    pub enum HExpr {
        IntLit {
            value: i64,
            ty: HTy,
        },
        FloatLit(f32),
        /// Read a scalar local.
        Local(LocalId, HTy),
        /// Read a kernel parameter.
        Param(ParamId, HTy),
        Builtin(BuiltinVar, Dim3),
        Unary(HUnOp, HTy, Box<HExpr>),
        Binary(HBinOp, HTy, Box<HExpr>, Box<HExpr>),
        /// Comparison over operands of type `ty`; result is Bool.
        Cmp(HCmp, HTy, Box<HExpr>, Box<HExpr>),
        LogAnd(Box<HExpr>, Box<HExpr>),
        LogOr(Box<HExpr>, Box<HExpr>),
        LogNot(Box<HExpr>),
        /// `cond ? a : b` with result type `ty`.
        Cond(Box<HExpr>, Box<HExpr>, Box<HExpr>, HTy),
        /// Read through a place (local/shared array element, deref).
        Load(Place, HTy),
        /// Element of `__constant__` memory.
        ConstElem(ConstId, Box<HExpr>, Elem),
        /// `tex1Dfetch(texref, idx)` — unfiltered 1-D texture fetch.
        TexFetch(TexId, Box<HExpr>, Elem),
        Call(BuiltinFn, Vec<HExpr>, HTy),
        /// Numeric or pointer cast.
        Cast {
            to: HTy,
            from: HTy,
            val: Box<HExpr>,
        },
        /// Pointer + element offset (scaled by element size at codegen).
        PtrAdd {
            ptr: Box<HExpr>,
            offset: Box<HExpr>,
            elem: Elem,
        },
    }

    impl HExpr {
        pub fn ty(&self) -> HTy {
            match self {
                HExpr::IntLit { ty, .. } => *ty,
                HExpr::FloatLit(_) => HTy::Float,
                HExpr::Local(_, ty) | HExpr::Param(_, ty) => *ty,
                HExpr::Builtin(..) => HTy::UInt,
                HExpr::Unary(_, ty, _) | HExpr::Binary(_, ty, ..) => *ty,
                HExpr::Cmp(..) | HExpr::LogAnd(..) | HExpr::LogOr(..) | HExpr::LogNot(_) => {
                    HTy::Bool
                }
                HExpr::Cond(_, _, _, ty) => *ty,
                HExpr::Load(_, ty) => *ty,
                HExpr::ConstElem(_, _, e) => HTy::from_elem(*e),
                HExpr::TexFetch(_, _, e) => HTy::from_elem(*e),
                HExpr::Call(_, _, ty) => *ty,
                HExpr::Cast { to, .. } => *to,
                HExpr::PtrAdd { elem, .. } => HTy::Ptr(*elem),
            }
        }

        pub fn int(v: i64) -> HExpr {
            HExpr::IntLit {
                value: v,
                ty: HTy::Int,
            }
        }
    }

    /// Typed statements. Control flow stays structured for unrolling.
    #[derive(Debug, Clone, PartialEq)]
    pub enum HStmt {
        Assign {
            place: Place,
            value: HExpr,
        },
        If {
            cond: HExpr,
            then_s: Vec<HStmt>,
            else_s: Vec<HStmt>,
        },
        For {
            init: Vec<HStmt>,
            cond: Option<HExpr>,
            step: Vec<HStmt>,
            body: Vec<HStmt>,
            unroll: Option<Option<u32>>,
        },
        While {
            cond: HExpr,
            body: Vec<HStmt>,
        },
        DoWhile {
            body: Vec<HStmt>,
            cond: HExpr,
        },
        Break,
        Continue,
        /// `return;` from a kernel.
        Return,
        Sync,
    }

    /// A declared local (scalar or per-thread array).
    #[derive(Debug, Clone, PartialEq)]
    pub struct HLocal {
        pub name: String,
        pub elem: Elem,
        /// `HTy` of the scalar, or the element type for arrays. For pointer
        /// locals this is `Ptr(..)`.
        pub ty: HTy,
        /// Total flattened element count; 0 for scalars.
        pub array_len: u32,
    }

    /// A `__shared__` array.
    #[derive(Debug, Clone, PartialEq)]
    pub struct HShared {
        pub name: String,
        pub elem: Elem,
        pub len: u32,
    }

    /// A kernel parameter.
    #[derive(Debug, Clone, PartialEq)]
    pub struct HParam {
        pub name: String,
        pub ty: HTy,
    }

    /// A type-checked kernel.
    #[derive(Debug, Clone, PartialEq)]
    pub struct HFunc {
        pub name: String,
        pub params: Vec<HParam>,
        pub locals: Vec<HLocal>,
        pub shared: Vec<HShared>,
        pub body: Vec<HStmt>,
    }

    /// A `__constant__` declaration.
    #[derive(Debug, Clone, PartialEq)]
    pub struct HConst {
        pub name: String,
        pub elem: Elem,
        pub len: u32,
    }

    /// A texture reference.
    #[derive(Debug, Clone, PartialEq)]
    pub struct HTex {
        pub name: String,
        pub elem: Elem,
    }

    /// A fully checked translation unit (kernels only; device functions
    /// are inlined away during checking).
    #[derive(Debug, Clone, Default, PartialEq)]
    pub struct Program {
        pub kernels: Vec<HFunc>,
        pub consts: Vec<HConst>,
        pub textures: Vec<HTex>,
    }
}

use hir::*;

fn serr(msg: impl Into<String>) -> LangError {
    LangError::new("sema", 0, 0, msg)
}

/// Convert an AST type to an HIR type. Arrays are handled at declaration
/// sites; nested pointers are rejected.
fn lower_type(t: &TypeSpec) -> Result<HTy, LangError> {
    Ok(match t {
        TypeSpec::Int => HTy::Int,
        TypeSpec::UInt => HTy::UInt,
        TypeSpec::Float => HTy::Float,
        TypeSpec::Void => return Err(serr("void is not a value type")),
        TypeSpec::Ptr(inner) => match inner.as_ref() {
            TypeSpec::Int => HTy::Ptr(Elem::Int),
            TypeSpec::UInt => HTy::Ptr(Elem::UInt),
            TypeSpec::Float => HTy::Ptr(Elem::Float),
            _ => return Err(serr("only single-level pointers to scalars are supported")),
        },
    })
}

/// Compile-time constant evaluation of an AST expression (integers only).
/// After preprocessing, specialized parameters are literals, so array sizes
/// and similar compile-time-required values fold here.
pub fn const_eval_ast(e: &Expr) -> Option<i64> {
    Some(match e {
        Expr::IntLit { value, .. } => *value,
        Expr::Unary(UnaryOp::Neg, x) => -const_eval_ast(x)?,
        Expr::Unary(UnaryOp::BitNot, x) => !const_eval_ast(x)?,
        Expr::Unary(UnaryOp::LogicalNot, x) => i64::from(const_eval_ast(x)? == 0),
        Expr::Binary(op, a, b) => {
            let a = const_eval_ast(a)?;
            let b = const_eval_ast(b)?;
            match op {
                BinaryOp::Add => a.wrapping_add(b),
                BinaryOp::Sub => a.wrapping_sub(b),
                BinaryOp::Mul => a.wrapping_mul(b),
                BinaryOp::Div => {
                    if b == 0 {
                        return None;
                    }
                    a / b
                }
                BinaryOp::Rem => {
                    if b == 0 {
                        return None;
                    }
                    a % b
                }
                BinaryOp::Shl => a.wrapping_shl(b as u32),
                BinaryOp::Shr => a.wrapping_shr(b as u32),
                BinaryOp::Lt => i64::from(a < b),
                BinaryOp::Le => i64::from(a <= b),
                BinaryOp::Gt => i64::from(a > b),
                BinaryOp::Ge => i64::from(a >= b),
                BinaryOp::Eq => i64::from(a == b),
                BinaryOp::Ne => i64::from(a != b),
                BinaryOp::BitAnd => a & b,
                BinaryOp::BitXor => a ^ b,
                BinaryOp::BitOr => a | b,
                BinaryOp::LogicalAnd => i64::from(a != 0 && b != 0),
                BinaryOp::LogicalOr => i64::from(a != 0 || b != 0),
            }
        }
        Expr::Cond(c, a, b) => {
            if const_eval_ast(c)? != 0 {
                const_eval_ast(a)?
            } else {
                const_eval_ast(b)?
            }
        }
        Expr::Cast(TypeSpec::Int | TypeSpec::UInt, x) => const_eval_ast(x)?,
        _ => return None,
    })
}

#[derive(Clone)]
enum Sym {
    Local(LocalId),
    Param(ParamId),
    Shared(SharedId),
    Const(ConstId),
    Texture(TexId),
}

struct FnCtx<'a> {
    devices: &'a HashMap<String, &'a ast::FuncDef>,
    params: Vec<HParam>,
    locals: Vec<HLocal>,
    shared: Vec<HShared>,
    consts: &'a [HConst],
    textures: &'a [HTex],
    /// Lexical scopes mapping names to symbols.
    scopes: Vec<HashMap<String, Sym>>,
    /// Device-function inline stack (recursion guard).
    inline_stack: Vec<String>,
    /// Declared dimensions of each `__shared__` array (parallel to `shared`),
    /// kept so multi-dimensional indexing can be flattened.
    shared_dims: Vec<Vec<u32>>,
    /// Declared dimensions of local arrays.
    local_dims: HashMap<LocalId, Vec<u32>>,
}

impl<'a> FnCtx<'a> {
    fn lookup(&self, name: &str) -> Option<Sym> {
        for scope in self.scopes.iter().rev() {
            if let Some(s) = scope.get(name) {
                return Some(s.clone());
            }
        }
        None
    }

    fn declare(&mut self, name: &str, sym: Sym) {
        self.scopes
            .last_mut()
            .unwrap()
            .insert(name.to_string(), sym);
    }

    fn new_local(&mut self, name: &str, ty: HTy, array_len: u32, elem: Elem) -> LocalId {
        let id = LocalId(self.locals.len() as u32);
        self.locals.push(HLocal {
            name: name.to_string(),
            elem,
            ty,
            array_len,
        });
        self.declare(name, Sym::Local(id));
        id
    }

    fn local_ty(&self, id: LocalId) -> HTy {
        self.locals[id.0 as usize].ty
    }

    // ---- statements ----

    fn stmts(&mut self, stmts: &[Stmt], out: &mut Vec<HStmt>) -> Result<(), LangError> {
        self.scopes.push(HashMap::new());
        for s in stmts {
            self.stmt(s, out)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt, out: &mut Vec<HStmt>) -> Result<(), LangError> {
        match s {
            Stmt::Empty => Ok(()),
            Stmt::Block(v) => self.stmts(v, out),
            Stmt::Multi(v) => {
                for d in v {
                    self.stmt(d, out)?;
                }
                Ok(())
            }
            Stmt::Sync => {
                out.push(HStmt::Sync);
                Ok(())
            }
            Stmt::Break => {
                out.push(HStmt::Break);
                Ok(())
            }
            Stmt::Continue => {
                out.push(HStmt::Continue);
                Ok(())
            }
            Stmt::Return(None) => {
                out.push(HStmt::Return);
                Ok(())
            }
            Stmt::Return(Some(_)) => Err(serr(
                "kernels cannot return a value (device functions are inlined)",
            )),
            Stmt::Decl(d) => self.decl(d, out),
            Stmt::Expr(e) => self.expr_stmt(e, out),
            Stmt::If {
                cond,
                then_s,
                else_s,
            } => {
                let cond = self.condition(cond, out)?;
                let mut t = Vec::new();
                self.scopes.push(HashMap::new());
                self.stmt(then_s, &mut t)?;
                self.scopes.pop();
                let mut e = Vec::new();
                if let Some(es) = else_s {
                    self.scopes.push(HashMap::new());
                    self.stmt(es, &mut e)?;
                    self.scopes.pop();
                }
                out.push(HStmt::If {
                    cond,
                    then_s: t,
                    else_s: e,
                });
                Ok(())
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                unroll,
            } => {
                self.scopes.push(HashMap::new());
                let mut i = Vec::new();
                if let Some(s) = init {
                    self.stmt(s, &mut i)?;
                }
                // The loop condition/step cannot emit pre-statements (the
                // device-inline buffer), because they re-execute per
                // iteration; require them to be simple.
                let mut pre = Vec::new();
                let c = match cond {
                    Some(c) => Some(self.condition(c, &mut pre)?),
                    None => None,
                };
                let mut st = Vec::new();
                if let Some(s) = step {
                    self.expr_stmt(s, &mut st)?;
                }
                if !pre.is_empty() {
                    return Err(serr("loop conditions may not call device functions"));
                }
                let mut b = Vec::new();
                self.stmt(body, &mut b)?;
                self.scopes.pop();
                out.push(HStmt::For {
                    init: i,
                    cond: c,
                    step: st,
                    body: b,
                    unroll: *unroll,
                });
                Ok(())
            }
            Stmt::While { cond, body } => {
                let mut pre = Vec::new();
                let c = self.condition(cond, &mut pre)?;
                if !pre.is_empty() {
                    return Err(serr("loop conditions may not call device functions"));
                }
                let mut b = Vec::new();
                self.scopes.push(HashMap::new());
                self.stmt(body, &mut b)?;
                self.scopes.pop();
                out.push(HStmt::While { cond: c, body: b });
                Ok(())
            }
            Stmt::DoWhile { body, cond } => {
                let mut b = Vec::new();
                self.scopes.push(HashMap::new());
                self.stmt(body, &mut b)?;
                self.scopes.pop();
                let mut pre = Vec::new();
                let c = self.condition(cond, &mut pre)?;
                if !pre.is_empty() {
                    return Err(serr("loop conditions may not call device functions"));
                }
                out.push(HStmt::DoWhile { body: b, cond: c });
                Ok(())
            }
        }
    }

    fn decl(&mut self, d: &ast::Decl, out: &mut Vec<HStmt>) -> Result<(), LangError> {
        if d.shared {
            if d.init.is_some() {
                return Err(serr(format!(
                    "__shared__ {} cannot have an initializer",
                    d.name
                )));
            }
            let elem = lower_type(&d.ty)?
                .as_elem()
                .ok_or_else(|| serr("__shared__ arrays must have scalar elements"))?;
            let mut len: u64 = 1;
            for dim in &d.dims {
                let v = const_eval_ast(dim).ok_or_else(|| {
                    serr(format!(
                        "__shared__ {}: array size must be a compile-time constant \
                         (specialize the controlling parameter)",
                        d.name
                    ))
                })?;
                if v <= 0 {
                    return Err(serr(format!(
                        "__shared__ {}: non-positive dimension",
                        d.name
                    )));
                }
                len *= v as u64;
            }
            if d.dims.is_empty() {
                return Err(serr(format!("__shared__ {} must be an array", d.name)));
            }
            let id = SharedId(self.shared.len() as u32);
            self.shared.push(HShared {
                name: d.name.clone(),
                elem,
                len: len as u32,
            });
            // Record flattened row strides for multi-dim indexing.
            self.declare(&d.name, Sym::Shared(id));
            self.shared_dims.push(
                d.dims
                    .iter()
                    .map(|e| const_eval_ast(e).unwrap() as u32)
                    .collect(),
            );
            return Ok(());
        }
        let ty = lower_type(&d.ty)?;
        if !d.dims.is_empty() {
            // Per-thread local array.
            let elem = ty
                .as_elem()
                .ok_or_else(|| serr("local arrays must have scalar elements"))?;
            let mut len: u64 = 1;
            for dim in &d.dims {
                let v = const_eval_ast(dim).ok_or_else(|| {
                    serr(format!(
                        "{}: local array size must be a compile-time constant",
                        d.name
                    ))
                })?;
                if v <= 0 {
                    return Err(serr(format!("{}: non-positive dimension", d.name)));
                }
                len *= v as u64;
            }
            let id = self.new_local(&d.name, HTy::from_elem(elem), len as u32, elem);
            self.local_dims.insert(
                id,
                d.dims
                    .iter()
                    .map(|e| const_eval_ast(e).unwrap() as u32)
                    .collect(),
            );
            if d.init.is_some() {
                return Err(serr("array initializers are not supported"));
            }
            return Ok(());
        }
        let elem = ty.as_elem().unwrap_or(Elem::Int);
        let id = self.new_local(&d.name, ty, 0, elem);
        if let Some(init) = &d.init {
            let v = self.expr(init, out)?;
            let v = self.coerce(v, ty)?;
            out.push(HStmt::Assign {
                place: Place::Local(id),
                value: v,
            });
        }
        Ok(())
    }

    /// Check an expression used as a statement: assignments, inc/dec, or
    /// (void) calls.
    fn expr_stmt(&mut self, e: &Expr, out: &mut Vec<HStmt>) -> Result<(), LangError> {
        match e {
            Expr::Assign(op, lhs, rhs) => {
                let (place, pty) = self.place(lhs, out)?;
                let r = self.expr(rhs, out)?;
                let value = match op.binary() {
                    None => self.coerce(r, pty)?,
                    Some(bop) => {
                        let cur = self.load_of(&place, pty);
                        let (a, b, ty) = self.usual_conversions(cur, r)?;
                        let combined = self.binary_typed(bop, a, b, ty)?;
                        self.coerce(combined, pty)?
                    }
                };
                out.push(HStmt::Assign { place, value });
                Ok(())
            }
            Expr::Unary(
                op @ (UnaryOp::PreInc | UnaryOp::PreDec | UnaryOp::PostInc | UnaryOp::PostDec),
                inner,
            ) => {
                let (place, pty) = self.place(inner, out)?;
                let delta = if matches!(op, UnaryOp::PreInc | UnaryOp::PostInc) {
                    1
                } else {
                    -1
                };
                let cur = self.load_of(&place, pty);
                let one = match pty {
                    HTy::Float => HExpr::FloatLit(delta as f32),
                    _ => HExpr::IntLit {
                        value: delta,
                        ty: pty,
                    },
                };
                let value = if pty == HTy::Ptr(Elem::Int)
                    || pty == HTy::Ptr(Elem::UInt)
                    || pty == HTy::Ptr(Elem::Float)
                {
                    let HTy::Ptr(e) = pty else { unreachable!() };
                    HExpr::PtrAdd {
                        ptr: Box::new(cur),
                        offset: Box::new(HExpr::int(delta)),
                        elem: e,
                    }
                } else {
                    HExpr::Binary(HBinOp::Add, pty, Box::new(cur), Box::new(one))
                };
                out.push(HStmt::Assign { place, value });
                Ok(())
            }
            Expr::Call(..) => {
                // Only void built-ins would land here; we have none besides
                // __syncthreads which the parser handles. Evaluate for
                // side effects of device functions.
                let _ = self.expr(e, out)?;
                Ok(())
            }
            _ => Err(serr("expression statement has no effect")),
        }
    }

    /// Read the current value of a place (scalar locals read as
    /// `HExpr::Local`, which the unroller and folder pattern-match on).
    fn load_of(&self, place: &Place, ty: HTy) -> HExpr {
        match place {
            Place::Local(id) => HExpr::Local(*id, ty),
            other => HExpr::Load(other.clone(), ty),
        }
    }

    /// Resolve an lvalue expression.
    fn place(&mut self, e: &Expr, out: &mut Vec<HStmt>) -> Result<(Place, HTy), LangError> {
        match e {
            Expr::Ident(name) => match self.lookup(name) {
                Some(Sym::Local(id)) => {
                    let ty = self.local_ty(id);
                    if self.locals[id.0 as usize].array_len > 0 {
                        Err(serr(format!("{name} is an array, not a scalar lvalue")))
                    } else {
                        Ok((Place::Local(id), ty))
                    }
                }
                Some(Sym::Param(_)) => Err(serr(format!(
                    "cannot assign to kernel parameter {name} (copy it to a local)"
                ))),
                Some(_) => Err(serr(format!("{name} is not assignable"))),
                None => Err(serr(format!("unknown identifier {name}"))),
            },
            Expr::Index(base, idx) => self.index_place(base, idx, out),
            Expr::Unary(UnaryOp::Deref, inner) => {
                let p = self.expr(inner, out)?;
                match p.ty() {
                    HTy::Ptr(elem) => Ok((
                        Place::Deref {
                            ptr: Box::new(p),
                            elem,
                        },
                        HTy::from_elem(elem),
                    )),
                    t => Err(serr(format!("cannot dereference non-pointer type {t:?}"))),
                }
            }
            _ => Err(serr("expression is not an lvalue")),
        }
    }

    /// `base[idx]` as an lvalue, handling multi-dimensional arrays by
    /// flattening: `a[i][j]` ⇒ element `i*dim1 + j`.
    fn index_place(
        &mut self,
        base: &Expr,
        idx: &Expr,
        out: &mut Vec<HStmt>,
    ) -> Result<(Place, HTy), LangError> {
        // Collect the index chain innermost-last.
        let mut indices = vec![idx];
        let mut root = base;
        while let Expr::Index(b, i) = root {
            indices.push(i);
            root = b;
        }
        indices.reverse();

        // Root must be an identifier (array or pointer) or pointer-valued expr.
        if let Expr::Ident(name) = root {
            match self.lookup(name) {
                Some(Sym::Shared(id)) => {
                    let dims = self.shared_dims[id.0 as usize].clone();
                    let flat = self.flatten_index(&dims, &indices, out)?;
                    let elem = self.shared[id.0 as usize].elem;
                    return Ok((Place::SharedElem(id, Box::new(flat)), HTy::from_elem(elem)));
                }
                Some(Sym::Local(id)) if self.locals[id.0 as usize].array_len > 0 => {
                    let dims = self.local_dims[&id].clone();
                    let flat = self.flatten_index(&dims, &indices, out)?;
                    let elem = self.locals[id.0 as usize].elem;
                    return Ok((Place::LocalElem(id, Box::new(flat)), HTy::from_elem(elem)));
                }
                Some(Sym::Const(_id)) => {
                    if indices.len() != 1 {
                        // Constant arrays were flattened at declaration.
                        return Err(serr("constant arrays use a single flat index"));
                    }
                    return Err(serr(format!("cannot assign to __constant__ {name}")));
                }
                _ => {}
            }
        }
        // Pointer indexing: p[i] = *(p + i). Only single index.
        if indices.len() != 1 {
            return Err(serr(
                "multi-dimensional indexing requires an array variable",
            ));
        }
        let p = self.expr(root, out)?;
        let HTy::Ptr(elem) = p.ty() else {
            return Err(serr(format!("cannot index non-pointer type {:?}", p.ty())));
        };
        let i = self.expr(indices[0], out)?;
        let i = self.coerce_int(i)?;
        let ptr = HExpr::PtrAdd {
            ptr: Box::new(p),
            offset: Box::new(i),
            elem,
        };
        Ok((
            Place::Deref {
                ptr: Box::new(ptr),
                elem,
            },
            HTy::from_elem(elem),
        ))
    }

    fn flatten_index(
        &mut self,
        dims: &[u32],
        indices: &[&Expr],
        out: &mut Vec<HStmt>,
    ) -> Result<HExpr, LangError> {
        if indices.len() != dims.len() {
            return Err(serr(format!(
                "array expects {} indices, got {}",
                dims.len(),
                indices.len()
            )));
        }
        let mut flat: Option<HExpr> = None;
        for (k, idx) in indices.iter().enumerate() {
            let i = self.expr(idx, out)?;
            let i = self.coerce_int(i)?;
            flat = Some(match flat {
                None => i,
                Some(acc) => {
                    let scaled = HExpr::Binary(
                        HBinOp::Mul,
                        HTy::Int,
                        Box::new(acc),
                        Box::new(HExpr::int(dims[k] as i64)),
                    );
                    HExpr::Binary(HBinOp::Add, HTy::Int, Box::new(scaled), Box::new(i))
                }
            });
        }
        Ok(flat.unwrap_or_else(|| HExpr::int(0)))
    }

    // ---- expressions ----

    /// A condition: any scalar; non-Bool is compared against zero.
    fn condition(&mut self, e: &Expr, out: &mut Vec<HStmt>) -> Result<HExpr, LangError> {
        let v = self.expr(e, out)?;
        Ok(match v.ty() {
            HTy::Bool => v,
            HTy::Float => HExpr::Cmp(
                HCmp::Ne,
                HTy::Float,
                Box::new(v),
                Box::new(HExpr::FloatLit(0.0)),
            ),
            t @ (HTy::Int | HTy::UInt) => HExpr::Cmp(
                HCmp::Ne,
                t,
                Box::new(v),
                Box::new(HExpr::IntLit { value: 0, ty: t }),
            ),
            HTy::Ptr(_) => {
                return Err(serr("pointers cannot be used as conditions"));
            }
        })
    }

    fn coerce_int(&self, e: HExpr) -> Result<HExpr, LangError> {
        match e.ty() {
            HTy::Int | HTy::UInt => Ok(e),
            HTy::Bool => Ok(HExpr::Cast {
                to: HTy::Int,
                from: HTy::Bool,
                val: Box::new(e),
            }),
            t => Err(serr(format!("expected integer index, got {t:?}"))),
        }
    }

    /// Insert an implicit conversion to `target`.
    fn coerce(&self, e: HExpr, target: HTy) -> Result<HExpr, LangError> {
        let from = e.ty();
        if from == target {
            return Ok(e);
        }
        let ok = matches!(
            (from, target),
            (HTy::Int, HTy::UInt)
                | (HTy::UInt, HTy::Int)
                | (HTy::Int, HTy::Float)
                | (HTy::UInt, HTy::Float)
                | (HTy::Float, HTy::Int)
                | (HTy::Float, HTy::UInt)
                | (HTy::Bool, HTy::Int)
                | (HTy::Bool, HTy::UInt)
                | (HTy::Bool, HTy::Float)
                | (HTy::Ptr(_), HTy::Ptr(_))
                | (HTy::Int, HTy::Ptr(_))
                | (HTy::UInt, HTy::Ptr(_))
        );
        if !ok {
            return Err(serr(format!(
                "cannot implicitly convert {from:?} to {target:?}"
            )));
        }
        Ok(HExpr::Cast {
            to: target,
            from,
            val: Box::new(e),
        })
    }

    /// C usual arithmetic conversions (simplified to our three scalars).
    fn usual_conversions(&self, a: HExpr, b: HExpr) -> Result<(HExpr, HExpr, HTy), LangError> {
        let (ta, tb) = (a.ty(), b.ty());
        // Pointer arithmetic handled by the caller.
        let target = match (ta, tb) {
            (HTy::Float, _) | (_, HTy::Float) => HTy::Float,
            (HTy::UInt, _) | (_, HTy::UInt) => HTy::UInt,
            _ => HTy::Int,
        };
        Ok((self.coerce(a, target)?, self.coerce(b, target)?, target))
    }

    fn binary_typed(&self, op: BinaryOp, a: HExpr, b: HExpr, ty: HTy) -> Result<HExpr, LangError> {
        let h = match op {
            BinaryOp::Add => HBinOp::Add,
            BinaryOp::Sub => HBinOp::Sub,
            BinaryOp::Mul => HBinOp::Mul,
            BinaryOp::Div => HBinOp::Div,
            BinaryOp::Rem => HBinOp::Rem,
            BinaryOp::Shl => HBinOp::Shl,
            BinaryOp::Shr => HBinOp::Shr,
            BinaryOp::BitAnd => HBinOp::And,
            BinaryOp::BitOr => HBinOp::Or,
            BinaryOp::BitXor => HBinOp::Xor,
            _ => return Err(serr("not an arithmetic operator")),
        };
        if ty == HTy::Float
            && matches!(
                h,
                HBinOp::Rem | HBinOp::Shl | HBinOp::Shr | HBinOp::And | HBinOp::Or | HBinOp::Xor
            )
        {
            return Err(serr(format!("operator {op:?} requires integer operands")));
        }
        Ok(HExpr::Binary(h, ty, Box::new(a), Box::new(b)))
    }

    fn expr(&mut self, e: &Expr, out: &mut Vec<HStmt>) -> Result<HExpr, LangError> {
        match e {
            Expr::IntLit { value, unsigned } => Ok(HExpr::IntLit {
                value: *value,
                ty: if *unsigned { HTy::UInt } else { HTy::Int },
            }),
            Expr::FloatLit(v) => Ok(HExpr::FloatLit(*v)),
            Expr::Builtin(b, d) => Ok(HExpr::Builtin(*b, *d)),
            Expr::Ident(name) => match self.lookup(name) {
                Some(Sym::Local(id)) => {
                    let l = &self.locals[id.0 as usize];
                    if l.array_len > 0 {
                        Err(serr(format!("array {name} used without index")))
                    } else {
                        Ok(HExpr::Local(id, l.ty))
                    }
                }
                Some(Sym::Param(id)) => {
                    let ty = self.params[id.0 as usize].ty;
                    Ok(HExpr::Param(id, ty))
                }
                Some(Sym::Shared(_)) | Some(Sym::Const(_)) => {
                    Err(serr(format!("array {name} used without index")))
                }
                Some(Sym::Texture(_)) => Err(serr(format!(
                    "texture {name} can only be read via tex1Dfetch"
                ))),
                None => Err(serr(format!("unknown identifier {name}"))),
            },
            Expr::Index(base, idx) => {
                // Constant-memory reads are expression-only places.
                if let Expr::Ident(name) = base.as_ref() {
                    if let Some(Sym::Const(id)) = self.lookup(name) {
                        let i = self.expr(idx, out)?;
                        let i = self.coerce_int(i)?;
                        let elem = self.consts[id.0 as usize].elem;
                        return Ok(HExpr::ConstElem(id, Box::new(i), elem));
                    }
                }
                let (p, ty) = self.index_place(base, idx, out)?;
                Ok(HExpr::Load(p, ty))
            }
            Expr::Unary(UnaryOp::Deref, inner) => {
                let p = self.expr(inner, out)?;
                match p.ty() {
                    HTy::Ptr(elem) => Ok(HExpr::Load(
                        Place::Deref {
                            ptr: Box::new(p),
                            elem,
                        },
                        HTy::from_elem(elem),
                    )),
                    t => Err(serr(format!("cannot dereference {t:?}"))),
                }
            }
            Expr::Unary(UnaryOp::Neg, x) => {
                let v = self.expr(x, out)?;
                match v.ty() {
                    HTy::Float => Ok(HExpr::Unary(HUnOp::Neg, HTy::Float, Box::new(v))),
                    HTy::Int | HTy::UInt => Ok(HExpr::Unary(
                        HUnOp::Neg,
                        HTy::Int,
                        Box::new(self.coerce(v, HTy::Int)?),
                    )),
                    t => Err(serr(format!("cannot negate {t:?}"))),
                }
            }
            Expr::Unary(UnaryOp::BitNot, x) => {
                let v = self.expr(x, out)?;
                let t = v.ty();
                if !matches!(t, HTy::Int | HTy::UInt) {
                    return Err(serr("~ requires an integer operand"));
                }
                Ok(HExpr::Unary(HUnOp::BitNot, t, Box::new(v)))
            }
            Expr::Unary(UnaryOp::LogicalNot, x) => {
                let c = self.condition(x, out)?;
                Ok(HExpr::LogNot(Box::new(c)))
            }
            Expr::Unary(op, _) => Err(serr(format!(
                "operator {op:?} may only be used as a statement"
            ))),
            Expr::Binary(op, a, b) => {
                match op {
                    BinaryOp::LogicalAnd => {
                        let a = self.condition(a, out)?;
                        let b = self.condition(b, out)?;
                        return Ok(HExpr::LogAnd(Box::new(a), Box::new(b)));
                    }
                    BinaryOp::LogicalOr => {
                        let a = self.condition(a, out)?;
                        let b = self.condition(b, out)?;
                        return Ok(HExpr::LogOr(Box::new(a), Box::new(b)));
                    }
                    _ => {}
                }
                let va = self.expr(a, out)?;
                let vb = self.expr(b, out)?;
                // Pointer arithmetic: ptr ± int (comparisons are handled
                // by the comparison arm below).
                let is_cmp = matches!(
                    op,
                    BinaryOp::Lt
                        | BinaryOp::Le
                        | BinaryOp::Gt
                        | BinaryOp::Ge
                        | BinaryOp::Eq
                        | BinaryOp::Ne
                );
                if let (HTy::Ptr(elem), false) = (va.ty(), is_cmp) {
                    return match op {
                        BinaryOp::Add => Ok(HExpr::PtrAdd {
                            ptr: Box::new(va),
                            offset: Box::new(self.coerce_int(vb)?),
                            elem,
                        }),
                        BinaryOp::Sub => {
                            let neg = HExpr::Unary(
                                HUnOp::Neg,
                                HTy::Int,
                                Box::new(self.coerce(vb, HTy::Int)?),
                            );
                            Ok(HExpr::PtrAdd {
                                ptr: Box::new(va),
                                offset: Box::new(neg),
                                elem,
                            })
                        }
                        _ => Err(serr("only + and - are defined on pointers")),
                    };
                }
                if let (HTy::Ptr(elem), false) = (vb.ty(), is_cmp) {
                    if *op == BinaryOp::Add {
                        return Ok(HExpr::PtrAdd {
                            ptr: Box::new(vb),
                            offset: Box::new(self.coerce_int(va)?),
                            elem,
                        });
                    }
                    return Err(serr("invalid pointer operation"));
                }
                match op {
                    BinaryOp::Lt
                    | BinaryOp::Le
                    | BinaryOp::Gt
                    | BinaryOp::Ge
                    | BinaryOp::Eq
                    | BinaryOp::Ne => {
                        // Pointer comparisons compare the addresses.
                        if let (HTy::Ptr(e), HTy::Ptr(_)) = (va.ty(), vb.ty()) {
                            let c = match op {
                                BinaryOp::Lt => HCmp::Lt,
                                BinaryOp::Le => HCmp::Le,
                                BinaryOp::Gt => HCmp::Gt,
                                BinaryOp::Ge => HCmp::Ge,
                                BinaryOp::Eq => HCmp::Eq,
                                BinaryOp::Ne => HCmp::Ne,
                                _ => unreachable!(),
                            };
                            return Ok(HExpr::Cmp(c, HTy::Ptr(e), Box::new(va), Box::new(vb)));
                        }
                        let (a, b, ty) = self.usual_conversions(va, vb)?;
                        let c = match op {
                            BinaryOp::Lt => HCmp::Lt,
                            BinaryOp::Le => HCmp::Le,
                            BinaryOp::Gt => HCmp::Gt,
                            BinaryOp::Ge => HCmp::Ge,
                            BinaryOp::Eq => HCmp::Eq,
                            BinaryOp::Ne => HCmp::Ne,
                            _ => unreachable!(),
                        };
                        Ok(HExpr::Cmp(c, ty, Box::new(a), Box::new(b)))
                    }
                    BinaryOp::Shl | BinaryOp::Shr => {
                        // Shift result type follows the left operand.
                        let t = va.ty();
                        if !matches!(t, HTy::Int | HTy::UInt) {
                            return Err(serr("shift requires integer operands"));
                        }
                        let vb = self.coerce_int(vb)?;
                        self.binary_typed(*op, va, vb, t)
                    }
                    _ => {
                        let (a, b, ty) = self.usual_conversions(va, vb)?;
                        self.binary_typed(*op, a, b, ty)
                    }
                }
            }
            Expr::Cond(c, a, b) => {
                let c = self.condition(c, out)?;
                let va = self.expr(a, out)?;
                let vb = self.expr(b, out)?;
                let (a, b, ty) = self.usual_conversions(va, vb)?;
                Ok(HExpr::Cond(Box::new(c), Box::new(a), Box::new(b), ty))
            }
            Expr::Cast(t, x) => {
                let v = self.expr(x, out)?;
                let to = lower_type(t)?;
                self.coerce_cast(v, to)
            }
            Expr::Assign(..) => Err(serr("assignment used as a value; split the statement")),
            Expr::Call(name, args) => self.call(name, args, out),
        }
    }

    /// Explicit casts allow everything `coerce` allows plus ptr↔int.
    fn coerce_cast(&self, v: HExpr, to: HTy) -> Result<HExpr, LangError> {
        let from = v.ty();
        if from == to {
            return Ok(v);
        }
        Ok(HExpr::Cast {
            to,
            from,
            val: Box::new(v),
        })
    }

    fn call(
        &mut self,
        name: &str,
        args: &[Expr],
        out: &mut Vec<HStmt>,
    ) -> Result<HExpr, LangError> {
        // Texture fetch: the first argument names a texture reference.
        if name == "tex1Dfetch" {
            if args.len() != 2 {
                return Err(serr("tex1Dfetch expects (texref, index)"));
            }
            let Expr::Ident(tex_name) = &args[0] else {
                return Err(serr(
                    "tex1Dfetch's first argument must be a texture reference",
                ));
            };
            let Some(Sym::Texture(id)) = self.lookup(tex_name) else {
                return Err(serr(format!("{tex_name} is not a texture reference")));
            };
            let idx = self.expr(&args[1], out)?;
            let idx = self.coerce_int(idx)?;
            let elem = self.textures[id.0 as usize].elem;
            return Ok(HExpr::TexFetch(id, Box::new(idx), elem));
        }
        // Built-ins first.
        let builtin: Option<(BuiltinFn, usize)> = match name {
            "sqrtf" => Some((BuiltinFn::Sqrtf, 1)),
            "rsqrtf" => Some((BuiltinFn::Rsqrtf, 1)),
            "fabsf" => Some((BuiltinFn::Fabsf, 1)),
            "floorf" => Some((BuiltinFn::Floorf, 1)),
            "fminf" => Some((BuiltinFn::Fminf, 2)),
            "fmaxf" => Some((BuiltinFn::Fmaxf, 2)),
            "min" => Some((BuiltinFn::MinI, 2)),
            "max" => Some((BuiltinFn::MaxI, 2)),
            "umin" => Some((BuiltinFn::MinU, 2)),
            "umax" => Some((BuiltinFn::MaxU, 2)),
            "abs" => Some((BuiltinFn::AbsI, 1)),
            "__mul24" => Some((BuiltinFn::Mul24, 2)),
            "__umul24" => Some((BuiltinFn::UMul24, 2)),
            _ => None,
        };
        if let Some((f, arity)) = builtin {
            if args.len() != arity {
                return Err(serr(format!("{name} expects {arity} argument(s)")));
            }
            let mut vals = Vec::new();
            for a in args {
                vals.push(self.expr(a, out)?);
            }
            let (vals, ret) = match f {
                BuiltinFn::Sqrtf
                | BuiltinFn::Rsqrtf
                | BuiltinFn::Fabsf
                | BuiltinFn::Floorf
                | BuiltinFn::Fminf
                | BuiltinFn::Fmaxf => {
                    let vals: Result<Vec<_>, _> = vals
                        .into_iter()
                        .map(|v| self.coerce(v, HTy::Float))
                        .collect();
                    (vals?, HTy::Float)
                }
                BuiltinFn::MinI | BuiltinFn::MaxI | BuiltinFn::AbsI | BuiltinFn::Mul24 => {
                    let vals: Result<Vec<_>, _> =
                        vals.into_iter().map(|v| self.coerce(v, HTy::Int)).collect();
                    (vals?, HTy::Int)
                }
                BuiltinFn::MinU | BuiltinFn::MaxU | BuiltinFn::UMul24 => {
                    let vals: Result<Vec<_>, _> = vals
                        .into_iter()
                        .map(|v| self.coerce(v, HTy::UInt))
                        .collect();
                    (vals?, HTy::UInt)
                }
            };
            return Ok(HExpr::Call(f, vals, ret));
        }
        // Device-function inlining.
        let Some(def) = self.devices.get(name).copied() else {
            return Err(serr(format!("unknown function {name}")));
        };
        if self.inline_stack.iter().any(|n| n == name) {
            return Err(serr(format!("recursive device function {name}")));
        }
        if args.len() != def.params.len() {
            return Err(serr(format!(
                "{name} expects {} argument(s), got {}",
                def.params.len(),
                args.len()
            )));
        }
        // Bind arguments to fresh locals in a fresh scope.
        self.inline_stack.push(name.to_string());
        self.scopes.push(HashMap::new());
        for (p, a) in def.params.iter().zip(args) {
            let ty = lower_type(&p.ty)?;
            let v = self.expr(a, out)?;
            let v = self.coerce(v, ty)?;
            let elem = ty.as_elem().unwrap_or(Elem::Int);
            // Unique backing name to keep diagnostics readable.
            let id = self.new_local(&format!("{name}.{}", p.name), ty, 0, elem);
            // Rebind the *parameter name* in the inline scope.
            self.declare(&p.name, Sym::Local(id));
            out.push(HStmt::Assign {
                place: Place::Local(id),
                value: v,
            });
        }
        // Body: all statements except a trailing `return expr;`.
        let (last, rest) = def
            .body
            .split_last()
            .ok_or_else(|| serr(format!("device function {name} has an empty body")))?;
        for s in rest {
            if matches!(s, Stmt::Return(_)) {
                return Err(serr(format!(
                    "device function {name}: early returns are not supported"
                )));
            }
            self.stmt(s, out)?;
        }
        let result = match last {
            Stmt::Return(Some(e)) => {
                let v = self.expr(e, out)?;
                let ret = lower_type(&def.ret)?;
                self.coerce(v, ret)?
            }
            _ => {
                return Err(serr(format!(
                    "device function {name} must end with `return expr;`"
                )))
            }
        };
        self.scopes.pop();
        self.inline_stack.pop();
        Ok(result)
    }
}

// Extra per-context tables that need interior setup.
impl<'a> FnCtx<'a> {
    fn new(
        devices: &'a HashMap<String, &'a ast::FuncDef>,
        consts: &'a [HConst],
        textures: &'a [HTex],
    ) -> Self {
        FnCtx {
            devices,
            params: Vec::new(),
            locals: Vec::new(),
            shared: Vec::new(),
            consts,
            textures,
            scopes: vec![HashMap::new()],
            inline_stack: Vec::new(),
            shared_dims: Vec::new(),
            local_dims: HashMap::new(),
        }
    }
}

/// Type-check a translation unit, producing a [`hir::Program`].
pub fn check(tu: &TranslationUnit) -> Result<Program, LangError> {
    let mut consts = Vec::new();
    let mut const_ids: HashMap<String, ConstId> = HashMap::new();
    let mut textures = Vec::new();
    let mut tex_ids: HashMap<String, TexId> = HashMap::new();
    let mut devices: HashMap<String, &ast::FuncDef> = HashMap::new();
    let mut kernels_src = Vec::new();

    for item in &tu.items {
        match item {
            Item::Texture(t) => {
                let elem = lower_type(&t.elem)?
                    .as_elem()
                    .ok_or_else(|| serr("texture element must be scalar"))?;
                if tex_ids.contains_key(&t.name) {
                    return Err(serr(format!("duplicate texture reference {}", t.name)));
                }
                let id = TexId(textures.len() as u32);
                tex_ids.insert(t.name.clone(), id);
                textures.push(HTex {
                    name: t.name.clone(),
                    elem,
                });
            }
            Item::Constant(c) => {
                let elem = lower_type(&c.elem)?
                    .as_elem()
                    .ok_or_else(|| serr("__constant__ element must be scalar"))?;
                let mut len: u64 = 1;
                for d in &c.dims {
                    let v = const_eval_ast(d).ok_or_else(|| {
                        serr(format!(
                            "__constant__ {}: size must be a compile-time constant",
                            c.name
                        ))
                    })?;
                    if v <= 0 {
                        return Err(serr(format!("__constant__ {}: bad dimension", c.name)));
                    }
                    len *= v as u64;
                }
                if const_ids.contains_key(&c.name) {
                    return Err(serr(format!("duplicate __constant__ {}", c.name)));
                }
                let id = ConstId(consts.len() as u32);
                const_ids.insert(c.name.clone(), id);
                consts.push(HConst {
                    name: c.name.clone(),
                    elem,
                    len: len as u32,
                });
            }
            Item::Func(f) => match f.kind {
                FnKind::Device => {
                    devices.insert(f.name.clone(), f);
                }
                FnKind::Kernel => kernels_src.push(f),
            },
        }
    }

    let mut kernels = Vec::new();
    for f in kernels_src {
        if f.ret != TypeSpec::Void {
            return Err(serr(format!("kernel {} must return void", f.name)));
        }
        let mut ctx = FnCtx::new(&devices, &consts, &textures);
        // Constants and textures visible inside every kernel.
        for (name, id) in &const_ids {
            ctx.declare(name, Sym::Const(*id));
        }
        for (name, id) in &tex_ids {
            ctx.declare(name, Sym::Texture(*id));
        }
        for p in &f.params {
            let ty = lower_type(&p.ty)?;
            let id = ParamId(ctx.params.len() as u32);
            ctx.params.push(HParam {
                name: p.name.clone(),
                ty,
            });
            ctx.declare(&p.name, Sym::Param(id));
        }
        let mut body = Vec::new();
        ctx.stmts(&f.body, &mut body)?;
        kernels.push(HFunc {
            name: f.name.clone(),
            params: ctx.params,
            locals: ctx.locals,
            shared: ctx.shared,
            body,
        });
    }
    Ok(Program {
        kernels,
        consts,
        textures,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;
    use crate::preproc::preprocess;

    fn check_src(src: &str, defs: &[(&str, &str)]) -> Result<Program, LangError> {
        let defs: Vec<(String, String)> = defs
            .iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect();
        check(&parse(preprocess(lex(src).unwrap(), &defs).unwrap()).unwrap())
    }

    #[test]
    fn checks_mathtest_kernel() {
        let src = r#"
            __global__ void mathTest(int* in, int* out, int argA, int argB, int loopCount) {
                int acc = 0;
                const unsigned int stride = argA * argB;
                const unsigned int offset = blockIdx.x * blockDim.x + threadIdx.x;
                for (int i = 0; i < loopCount; i++) {
                    acc += *(in + offset + i * stride);
                }
                *(out + offset) = acc;
                return;
            }
        "#;
        let p = check_src(src, &[]).unwrap();
        assert_eq!(p.kernels.len(), 1);
        let k = &p.kernels[0];
        assert_eq!(k.params.len(), 5);
        assert_eq!(k.params[0].ty, HTy::Ptr(Elem::Int));
        // acc, stride, offset, i
        assert_eq!(k.locals.len(), 4);
    }

    #[test]
    fn shared_size_requires_constant() {
        let bad = "__global__ void k(int n) { __shared__ float t[n]; }";
        assert!(check_src(bad, &[]).is_err());
        let good = "__global__ void k(int n) { __shared__ float t[TILE]; t[0] = 1.0f; }";
        let p = check_src(good, &[("TILE", "16")]).unwrap();
        assert_eq!(p.kernels[0].shared[0].len, 16);
    }

    #[test]
    fn multi_dim_shared_flattens() {
        let src = r#"
            __global__ void k(float* o) {
                __shared__ float t[4][8];
                t[threadIdx.y][threadIdx.x] = 1.0f;
                __syncthreads();
                o[0] = t[0][0];
            }
        "#;
        let p = check_src(src, &[]).unwrap();
        assert_eq!(p.kernels[0].shared[0].len, 32);
        // The store index should be y*8 + x.
        let HStmt::Assign {
            place: Place::SharedElem(_, idx),
            ..
        } = &p.kernels[0].body[0]
        else {
            panic!()
        };
        assert!(matches!(idx.as_ref(), HExpr::Binary(HBinOp::Add, ..)));
    }

    #[test]
    fn local_array_registered() {
        let src = "__global__ void k(float* o) { float acc[4]; acc[0] = 1.0f; o[0] = acc[0]; }";
        let p = check_src(src, &[]).unwrap();
        let k = &p.kernels[0];
        assert_eq!(k.locals[0].array_len, 4);
    }

    #[test]
    fn constant_memory_read_only() {
        let src = r#"
            __constant__ float filt[8];
            __global__ void k(float* o) { o[0] = filt[3]; }
        "#;
        let p = check_src(src, &[]).unwrap();
        assert_eq!(p.consts[0].len, 8);
        let bad = r#"
            __constant__ float filt[8];
            __global__ void k(float* o) { filt[0] = 1.0f; o[0] = 0.0f; }
        "#;
        assert!(check_src(bad, &[]).is_err());
    }

    #[test]
    fn unknown_identifier_rejected() {
        assert!(check_src("__global__ void k(int* o) { o[0] = wat; }", &[]).is_err());
    }

    #[test]
    fn device_function_inlined() {
        let src = r#"
            __device__ float sq(float x) { return x * x; }
            __global__ void k(float* o) { o[0] = sq(3.0f) + sq(2.0f); }
        "#;
        let p = check_src(src, &[]).unwrap();
        let k = &p.kernels[0];
        // Two inlined calls → two bound-arg locals.
        assert_eq!(k.locals.len(), 2);
        assert_eq!(k.body.len(), 3); // two arg assignments + the store
    }

    #[test]
    fn recursive_device_function_rejected() {
        let src = r#"
            __device__ int f(int x) { return f(x); }
            __global__ void k(int* o) { o[0] = f(1); }
        "#;
        assert!(check_src(src, &[]).is_err());
    }

    #[test]
    fn usual_conversions_int_uint_float() {
        let src = r#"
            __global__ void k(float* o, int a, unsigned int b) {
                o[0] = a + b;     // int + uint -> uint -> float store
                o[1] = a + 1.5f;  // int + float -> float
            }
        "#;
        let p = check_src(src, &[]).unwrap();
        assert_eq!(p.kernels.len(), 1);
    }

    #[test]
    fn assignment_to_param_rejected() {
        assert!(check_src("__global__ void k(int* o, int a) { a = 3; o[0] = a; }", &[]).is_err());
    }

    #[test]
    fn pointer_arithmetic_and_cast() {
        let src = r#"
            __global__ void k(int* out) {
                int* p = (int*)PTR_IN;
                out[threadIdx.x] = *(p + threadIdx.x);
            }
        "#;
        let p = check_src(src, &[("PTR_IN", "0x200ca0200")]).unwrap();
        assert_eq!(p.kernels.len(), 1);
    }

    #[test]
    fn kernel_with_value_return_rejected() {
        assert!(check_src("__global__ void k(int* o) { return 3; }", &[]).is_err());
    }

    #[test]
    fn break_continue_in_loops() {
        let src = r#"
            __global__ void k(int* o, int n) {
                int s = 0;
                for (int i = 0; i < n; i++) {
                    if (i == 3) { continue; }
                    if (i > 7) { break; }
                    s += i;
                }
                o[0] = s;
            }
        "#;
        assert!(check_src(src, &[]).is_ok());
    }

    #[test]
    fn shift_result_follows_lhs_type() {
        let src = "__global__ void k(int* o, unsigned int u) { o[0] = (int)(u >> 2); }";
        assert!(check_src(src, &[]).is_ok());
    }
}
