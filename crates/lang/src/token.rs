//! Tokens and the shared front-end error type.

use std::fmt;

/// Punctuators and operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Punct {
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    PlusPlus,
    MinusMinus,
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    OrOr,
    Not,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Shl,
    Shr,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PercentAssign,
    AmpAssign,
    PipeAssign,
    CaretAssign,
    ShlAssign,
    ShrAssign,
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Dot,
    Question,
    Colon,
    Hash,
}

impl Punct {
    pub fn as_str(self) -> &'static str {
        use Punct::*;
        match self {
            Plus => "+",
            Minus => "-",
            Star => "*",
            Slash => "/",
            Percent => "%",
            PlusPlus => "++",
            MinusMinus => "--",
            EqEq => "==",
            NotEq => "!=",
            Lt => "<",
            Le => "<=",
            Gt => ">",
            Ge => ">=",
            AndAnd => "&&",
            OrOr => "||",
            Not => "!",
            Amp => "&",
            Pipe => "|",
            Caret => "^",
            Tilde => "~",
            Shl => "<<",
            Shr => ">>",
            Assign => "=",
            PlusAssign => "+=",
            MinusAssign => "-=",
            StarAssign => "*=",
            SlashAssign => "/=",
            PercentAssign => "%=",
            AmpAssign => "&=",
            PipeAssign => "|=",
            CaretAssign => "^=",
            ShlAssign => "<<=",
            ShrAssign => ">>=",
            LParen => "(",
            RParen => ")",
            LBrace => "{",
            RBrace => "}",
            LBracket => "[",
            RBracket => "]",
            Semi => ";",
            Comma => ",",
            Dot => ".",
            Question => "?",
            Colon => ":",
            Hash => "#",
        }
    }
}

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    Ident(String),
    /// Integer literal; `unsigned` reflects a `u`/`U` suffix or a value
    /// that only fits unsigned.
    Int {
        value: i64,
        unsigned: bool,
    },
    Float(f32),
    Punct(Punct),
}

impl Tok {
    pub fn ident(s: &str) -> Tok {
        Tok::Ident(s.to_string())
    }

    pub fn is_ident(&self, s: &str) -> bool {
        matches!(self, Tok::Ident(i) if i == s)
    }
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => f.write_str(s),
            Tok::Int { value, unsigned } => {
                write!(f, "{value}{}", if *unsigned { "u" } else { "" })
            }
            Tok::Float(v) => write!(f, "{v}f"),
            Tok::Punct(p) => f.write_str(p.as_str()),
        }
    }
}

/// A token with source position (1-based line/column).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
    pub col: u32,
    /// True if this token is the first on its (physical) line — used by the
    /// preprocessor to recognize directives.
    pub line_start: bool,
}

/// Front-end error: lexing, preprocessing, parsing, or semantic.
#[derive(Debug, Clone, PartialEq)]
pub struct LangError {
    pub stage: &'static str,
    pub line: u32,
    pub col: u32,
    pub message: String,
}

impl LangError {
    pub fn new(stage: &'static str, line: u32, col: u32, message: impl Into<String>) -> Self {
        LangError {
            stage,
            line,
            col,
            message: message.into(),
        }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} error at {}:{}: {}",
            self.stage, self.line, self.col, self.message
        )
    }
}

impl std::error::Error for LangError {}
