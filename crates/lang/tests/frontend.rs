//! Front-end integration tests: preprocessor/parser/sema interplay, error
//! resilience, and a lexer/parser crash-safety fuzz.

use ks_lang::{frontend, lexer, parser, preproc};
use proptest::prelude::*;

fn check(src: &str, defs: &[(&str, &str)]) -> Result<ks_lang::hir::Program, ks_lang::LangError> {
    let defs: Vec<(String, String)> = defs
        .iter()
        .map(|(a, b)| (a.to_string(), b.to_string()))
        .collect();
    frontend(src, &defs)
}

#[test]
fn nested_function_macros_with_conditionals() {
    let src = r#"
        #define HALF(x) ((x) / 2)
        #define CLAMPED(x, lo) (HALF(x) > (lo) ? HALF(x) : (lo))
        #if CLAMPED(THREADS, 8) >= 32
        #define RED_START 32
        #else
        #define RED_START CLAMPED(THREADS, 8)
        #endif
        __global__ void k(int* o) { o[0] = RED_START; }
    "#;
    // THREADS=128: HALF=64 ≥ 32 → RED_START = 32.
    let p = check(src, &[("THREADS", "128")]).unwrap();
    assert_eq!(p.kernels.len(), 1);
    // THREADS=20: HALF=10 → RED_START = 10.
    let p2 = check(src, &[("THREADS", "20")]).unwrap();
    assert_eq!(p2.kernels.len(), 1);
}

#[test]
fn cuda_style_guard_patterns() {
    // The exact Appendix-B pattern, all four toggles.
    let src = r#"
        #ifdef CT_COUNT
        #define COUNT CT_COUNT
        #else
        #define COUNT count
        #endif
        __global__ void k(int* o, int count) {
            int acc = 0;
            for (int i = 0; i < COUNT; i++) { acc += i; }
            o[0] = acc;
        }
    "#;
    assert!(check(src, &[]).is_ok());
    assert!(check(src, &[("CT_COUNT", "16")]).is_ok());
}

#[test]
fn multiline_conditionals_and_else_chains() {
    let src = r#"
        #if ARCH >= 300
        #define V 3
        #elif ARCH >= 200
        #define V 2
        #elif ARCH >= 100
        #define V 1
        #else
        #define V 0
        #endif
        __global__ void k(int* o) { o[0] = V; }
    "#;
    for (arch, _expect) in [("350", 3), ("200", 2), ("130", 1), ("50", 0)] {
        let p = check(src, &[("ARCH", arch)]).unwrap();
        assert_eq!(p.kernels.len(), 1, "ARCH={arch}");
    }
}

#[test]
fn device_functions_compose() {
    let src = r#"
        __device__ float lerp(float a, float b, float t) { return a + t * (b - a); }
        __device__ float smooth(float t) { return lerp(t * t, t, t); }
        __global__ void k(float* o, float t) { o[threadIdx.x] = smooth(t); }
    "#;
    let p = check(src, &[]).unwrap();
    // Inlining both levels: lerp's params bound inside smooth's body.
    assert!(p.kernels[0].locals.len() >= 4);
}

#[test]
fn errors_have_positions_and_stages() {
    let e = check("__global__ void k(int* o) { o[0] = 1 + ; }", &[]).unwrap_err();
    assert_eq!(e.stage, "parse");
    assert!(e.line >= 1);

    let e = check("#define A (\n__global__ void k(int* o) { o[0] = A; }", &[]).unwrap_err();
    assert_eq!(e.stage, "parse");

    let e = check("__global__ void k(int* o) { o[0] = zzz; }", &[]).unwrap_err();
    assert_eq!(e.stage, "sema");
    assert!(e.message.contains("zzz"));
}

#[test]
fn unsigned_literals_and_hex_pointers() {
    let src = r#"
        __global__ void k(float* o) {
            float* p = (float*)0x7f00000000;
            unsigned int big = 3000000000u;
            o[0] = (float)(big / 1000000000u);
            if (p != o) { o[1] = 1.0f; }
        }
    "#;
    assert!(check(src, &[]).is_ok());
}

#[test]
fn comma_declarations_scopes_and_shadowing() {
    let src = r#"
        __global__ void k(int* o) {
            int a = 1, b = 2;
            {
                int a = 10;
                b += a;
            }
            o[0] = a + b;
        }
    "#;
    let p = check(src, &[]).unwrap();
    // a, b, inner a
    assert_eq!(p.kernels[0].locals.len(), 3);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// The lexer+preprocessor+parser never panic on arbitrary input — they
    /// either produce a translation unit or a structured error.
    #[test]
    fn frontend_never_panics(src in "[ -~\n]{0,200}") {
        let _ = lexer::lex(&src)
            .and_then(|t| preproc::preprocess(t, &[]))
            .and_then(parser::parse);
    }

    /// Same for inputs salted with C-ish tokens to reach deeper paths.
    #[test]
    fn frontend_never_panics_cish(
        parts in prop::collection::vec(
            prop::sample::select(vec![
                "__global__", "void", "int", "float", "*", "(", ")", "{", "}",
                "[", "]", ";", "if", "for", "return", "#define", "#if",
                "#endif", "x", "y", "1", "2.5f", "+", "=", "<", "threadIdx",
                ".", ",", "__shared__", "#pragma", "unroll", "\n",
            ]),
            0..40,
        )
    ) {
        let src = parts.join(" ");
        let _ = lexer::lex(&src)
            .and_then(|t| preproc::preprocess(t, &[]))
            .and_then(parser::parse)
            .map(|tu| ks_lang::sema::check(&tu));
    }
}
