//! Seeded fuzz tests for the ks-lang front end.
//!
//! Three properties, each over deterministic splitmix64-driven inputs:
//!
//! 1. The preprocessor never panics on random `#if`/`#ifdef`/`#define`/
//!    macro-call nests — it returns `Ok` or a structured `LangError`.
//! 2. The lexer+parser never panic on random token soup.
//! 3. Grammar-generated programs survive the full round trip:
//!    `parse(pretty(parse(src))) == parse(src)` — and any random soup
//!    the parser *accepts* must also re-parse to the same AST after
//!    pretty-printing.

use ks_lang::ast::*;
use ks_lang::{lexer, parser, preproc, pretty};

/// Deterministic RNG (splitmix64) so every failure is reproducible
/// from the seed printed in the assertion message.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len())]
    }
}

fn frontend_no_panic(src: &str) -> Option<TranslationUnit> {
    let toks = lexer::lex(src).ok()?;
    let pp = preproc::preprocess(toks, &[]).ok()?;
    parser::parse(pp).ok()
}

// ---- 1. preprocessor directive fuzz ----

#[test]
fn preprocessor_never_panics_on_random_directives() {
    let fragments = [
        "#if",
        "#ifdef",
        "#ifndef",
        "#elif",
        "#else",
        "#endif",
        "#define",
        "#undef",
        "#pragma",
        "#error",
        "#",
        "defined",
        "defined(A)",
        "A",
        "B",
        "C(x)",
        "C(1, 2)",
        "0",
        "1",
        "42",
        "0x1F",
        "(",
        ")",
        "&&",
        "||",
        "!",
        "+",
        "-",
        "*",
        "/",
        "%",
        "<<",
        ">>",
        "<",
        ">",
        "==",
        "?",
        ":",
        "~",
        ",",
        "x",
        "y",
        "unroll",
        "\\",
    ];
    for seed in 0..400u64 {
        let mut rng = Rng(seed);
        let lines = 1 + rng.below(12);
        let mut src = String::new();
        for _ in 0..lines {
            let words = 1 + rng.below(6);
            for w in 0..words {
                if w > 0 {
                    src.push(' ');
                }
                let frag = rng.pick(&fragments);
                src.push_str(frag);
            }
            src.push('\n');
        }
        // Must not panic; Ok or Err are both acceptable.
        let _ = frontend_no_panic(&src);
    }
}

/// Directive nests that are *structurally* plausible: balanced-ish
/// conditional towers with macro definitions that reference each other,
/// driven deeper than the random soup above reaches.
#[test]
fn preprocessor_never_panics_on_macro_nests() {
    for seed in 0..200u64 {
        let mut rng = Rng(0xF00D ^ seed);
        let mut src = String::new();
        let depth = 1 + rng.below(6);
        for i in 0..depth {
            match rng.below(3) {
                0 => src.push_str(&format!("#if M{} + {}\n", rng.below(depth), i)),
                1 => src.push_str(&format!("#ifdef M{}\n", rng.below(depth))),
                _ => src.push_str(&format!("#ifndef M{}\n", rng.below(depth))),
            }
            match rng.below(3) {
                0 => src.push_str(&format!("#define M{} M{} + 1\n", i, rng.below(depth))),
                1 => src.push_str(&format!("#define M{}(a, b) ((a) * M{} - (b))\n", i, i)),
                _ => src.push_str(&format!("#define M{} {}\n", i, rng.below(100))),
            }
        }
        src.push_str(&format!("int x = M{};\n", rng.below(depth)));
        if rng.below(4) != 0 {
            // Usually close the tower; sometimes leave it unterminated
            // (must error, not panic).
            for _ in 0..depth {
                src.push_str("#endif\n");
            }
        }
        let _ = frontend_no_panic(&src);
    }
}

// ---- 2. parser token-soup fuzz ----

#[test]
fn parser_never_panics_on_token_soup() {
    let tokens = [
        "__global__",
        "__device__",
        "__shared__",
        "__constant__",
        "void",
        "int",
        "float",
        "unsigned",
        "const",
        "if",
        "else",
        "for",
        "while",
        "do",
        "return",
        "break",
        "continue",
        "texture",
        "__syncthreads",
        "threadIdx",
        "blockIdx",
        ".",
        "x",
        "y",
        "a",
        "b",
        "f",
        "0",
        "1",
        "42",
        "1.5f",
        "3e2",
        "(",
        ")",
        "{",
        "}",
        "[",
        "]",
        ";",
        ",",
        "=",
        "+",
        "-",
        "*",
        "/",
        "%",
        "<",
        ">",
        "<=",
        ">=",
        "==",
        "!=",
        "&&",
        "||",
        "&",
        "|",
        "^",
        "~",
        "!",
        "?",
        ":",
        "<<",
        ">>",
        "+=",
        "++",
        "--",
    ];
    for seed in 0..600u64 {
        let mut rng = Rng(0xBEEF ^ seed);
        let n = 1 + rng.below(40);
        let mut src = String::new();
        for i in 0..n {
            if i > 0 {
                src.push(' ');
            }
            let tok = rng.pick(&tokens);
            src.push_str(tok);
        }
        // Must not panic. If the soup happens to parse, it must survive
        // the pretty-print round trip too.
        if let Some(tu) = frontend_no_panic(&src) {
            let printed = pretty::print_unit(&tu);
            let tu2 = frontend_no_panic(&printed).unwrap_or_else(|| {
                panic!("seed {seed}: accepted program failed to reparse:\n{printed}")
            });
            assert_eq!(tu, tu2, "seed {seed}: AST changed after pretty-print");
        }
    }
}

// ---- 3. grammar-generated round trip ----

struct Gen {
    rng: Rng,
    vars: Vec<String>,
    next_var: usize,
}

impl Gen {
    fn fresh_var(&mut self) -> String {
        let name = format!("v{}", self.next_var);
        self.next_var += 1;
        self.vars.push(name.clone());
        name
    }

    fn scalar_ty(&mut self) -> TypeSpec {
        match self.rng.below(3) {
            0 => TypeSpec::Int,
            1 => TypeSpec::UInt,
            _ => TypeSpec::Float,
        }
    }

    fn any_ty(&mut self) -> TypeSpec {
        let t = self.scalar_ty();
        if self.rng.below(4) == 0 {
            t.ptr()
        } else {
            t
        }
    }

    fn expr(&mut self, depth: usize) -> Expr {
        if depth == 0 || self.rng.below(3) == 0 {
            return match self.rng.below(4) {
                0 => Expr::IntLit {
                    value: self.rng.below(1 << 20) as i64,
                    unsigned: self.rng.below(4) == 0,
                },
                1 => Expr::FloatLit(self.rng.below(4096) as f32 / 8.0),
                2 => {
                    let b = *self.rng.pick(&[
                        BuiltinVar::ThreadIdx,
                        BuiltinVar::BlockIdx,
                        BuiltinVar::BlockDim,
                        BuiltinVar::GridDim,
                    ]);
                    let d = *self.rng.pick(&[Dim3::X, Dim3::Y, Dim3::Z]);
                    Expr::Builtin(b, d)
                }
                _ => Expr::Ident(self.rng.pick(&self.vars).clone()),
            };
        }
        match self.rng.below(8) {
            0 => {
                let op = *self.rng.pick(&[
                    UnaryOp::Neg,
                    UnaryOp::LogicalNot,
                    UnaryOp::BitNot,
                    UnaryOp::PreInc,
                    UnaryOp::PostDec,
                ]);
                Expr::Unary(op, Box::new(self.expr(depth - 1)))
            }
            1 | 2 => {
                let op = *self.rng.pick(&[
                    BinaryOp::Add,
                    BinaryOp::Sub,
                    BinaryOp::Mul,
                    BinaryOp::Div,
                    BinaryOp::Rem,
                    BinaryOp::Shl,
                    BinaryOp::Shr,
                    BinaryOp::Lt,
                    BinaryOp::Le,
                    BinaryOp::Ge,
                    BinaryOp::Eq,
                    BinaryOp::Ne,
                    BinaryOp::BitAnd,
                    BinaryOp::BitXor,
                    BinaryOp::BitOr,
                    BinaryOp::LogicalAnd,
                    BinaryOp::LogicalOr,
                ]);
                Expr::Binary(
                    op,
                    Box::new(self.expr(depth - 1)),
                    Box::new(self.expr(depth - 1)),
                )
            }
            3 => Expr::Cond(
                Box::new(self.expr(depth - 1)),
                Box::new(self.expr(depth - 1)),
                Box::new(self.expr(depth - 1)),
            ),
            4 => Expr::Index(
                Box::new(Expr::Ident(self.rng.pick(&self.vars).clone())),
                Box::new(self.expr(depth - 1)),
            ),
            5 => {
                let n = self.rng.below(3);
                let args = (0..n).map(|_| self.expr(depth - 1)).collect();
                Expr::Call(format!("f{}", self.rng.below(4)), args)
            }
            6 => {
                let t = self.any_ty();
                Expr::Cast(t, Box::new(self.expr(depth - 1)))
            }
            _ => {
                let op = *self.rng.pick(&[
                    AssignOp::Assign,
                    AssignOp::Add,
                    AssignOp::Mul,
                    AssignOp::Shl,
                    AssignOp::Xor,
                ]);
                let lhs = if self.rng.below(2) == 0 {
                    Expr::Ident(self.rng.pick(&self.vars).clone())
                } else {
                    Expr::Index(
                        Box::new(Expr::Ident(self.rng.pick(&self.vars).clone())),
                        Box::new(self.expr(depth - 1)),
                    )
                };
                Expr::Assign(op, Box::new(lhs), Box::new(self.expr(depth - 1)))
            }
        }
    }

    fn block(&mut self, depth: usize) -> Stmt {
        let n = self.rng.below(4);
        Stmt::Block((0..n).map(|_| self.stmt(depth)).collect())
    }

    fn stmt(&mut self, depth: usize) -> Stmt {
        if depth == 0 {
            let lhs = Expr::Ident(self.rng.pick(&self.vars).clone());
            return Stmt::Expr(Expr::Assign(
                AssignOp::Assign,
                Box::new(lhs),
                Box::new(self.expr(1)),
            ));
        }
        match self.rng.below(10) {
            0 => {
                let name = self.fresh_var();
                let shared = self.rng.below(6) == 0;
                let dims = if shared {
                    vec![Expr::int(8 + self.rng.below(8) as i64)]
                } else {
                    vec![]
                };
                let init = if dims.is_empty() {
                    Some(self.expr(depth - 1))
                } else {
                    None
                };
                Stmt::Decl(Decl {
                    name,
                    ty: self.scalar_ty(),
                    dims,
                    init,
                    shared,
                    is_const: self.rng.below(8) == 0 && !shared,
                })
            }
            1 => {
                // `int a = …, b = …;` shares one base type.
                let t = self.scalar_ty();
                let n = 2 + self.rng.below(2);
                let decls = (0..n)
                    .map(|_| {
                        let name = self.fresh_var();
                        let init = Some(self.expr(1));
                        Stmt::Decl(Decl {
                            name,
                            ty: t.clone(),
                            dims: vec![],
                            init,
                            shared: false,
                            is_const: false,
                        })
                    })
                    .collect();
                Stmt::Multi(decls)
            }
            2 => Stmt::If {
                cond: self.expr(depth - 1),
                then_s: Box::new(self.block(depth - 1)),
                else_s: if self.rng.below(2) == 0 {
                    Some(Box::new(self.block(depth - 1)))
                } else {
                    None
                },
            },
            3 => {
                let iv = self.fresh_var();
                let init = Stmt::Decl(Decl {
                    name: iv.clone(),
                    ty: TypeSpec::Int,
                    dims: vec![],
                    init: Some(Expr::int(0)),
                    shared: false,
                    is_const: false,
                });
                let unroll = match self.rng.below(4) {
                    0 => Some(None),
                    1 => Some(Some(2 + self.rng.below(3) as u32 * 2)),
                    _ => None,
                };
                Stmt::For {
                    init: Some(Box::new(init)),
                    cond: Some(Expr::Binary(
                        BinaryOp::Lt,
                        Box::new(Expr::Ident(iv.clone())),
                        Box::new(Expr::int(4 + self.rng.below(12) as i64)),
                    )),
                    step: Some(Expr::Unary(UnaryOp::PostInc, Box::new(Expr::Ident(iv)))),
                    body: Box::new(self.block(depth - 1)),
                    unroll,
                }
            }
            4 => Stmt::While {
                cond: self.expr(depth - 1),
                body: Box::new(self.block(depth - 1)),
            },
            5 => Stmt::DoWhile {
                body: Box::new(self.block(depth - 1)),
                cond: self.expr(depth - 1),
            },
            6 => Stmt::Sync,
            7 => Stmt::Empty,
            8 => self.block(depth - 1),
            _ => Stmt::Expr(self.expr(depth - 1)),
        }
    }

    fn unit(&mut self) -> TranslationUnit {
        let mut items = Vec::new();
        if self.rng.below(3) == 0 {
            items.push(Item::Constant(ConstantDecl {
                name: "ctab".into(),
                elem: TypeSpec::Float,
                dims: vec![Expr::int(32)],
            }));
        }
        if self.rng.below(4) == 0 {
            items.push(Item::Texture(TextureDecl {
                name: "tex0".into(),
                elem: TypeSpec::Float,
            }));
        }
        let nparams = 1 + self.rng.below(3);
        let params: Vec<FnParam> = (0..nparams)
            .map(|_| FnParam {
                name: self.fresh_var(),
                ty: self.any_ty(),
            })
            .collect();
        let nstmts = 1 + self.rng.below(5);
        let body = (0..nstmts).map(|_| self.stmt(3)).collect();
        items.push(Item::Func(FuncDef {
            kind: if self.rng.below(8) == 0 {
                FnKind::Device
            } else {
                FnKind::Kernel
            },
            name: "kmain".into(),
            ret: if self.rng.below(8) == 0 {
                TypeSpec::Float
            } else {
                TypeSpec::Void
            },
            params,
            body,
        }));
        TranslationUnit { items }
    }
}

#[test]
fn generated_programs_roundtrip_through_pretty_printer() {
    for seed in 0..300u64 {
        let mut g = Gen {
            rng: Rng(0x5EED ^ seed),
            vars: vec![],
            next_var: 0,
        };
        // Seed the scope so expressions always have an ident to grab.
        g.fresh_var();
        let tu = g.unit();
        let printed = pretty::print_unit(&tu);
        let toks = lexer::lex(&printed)
            .unwrap_or_else(|e| panic!("seed {seed}: lex failed: {e}\n{printed}"));
        let pp = preproc::preprocess(toks, &[])
            .unwrap_or_else(|e| panic!("seed {seed}: preprocess failed: {e}\n{printed}"));
        let tu2 = parser::parse(pp)
            .unwrap_or_else(|e| panic!("seed {seed}: parse failed: {e}\n{printed}"));
        assert_eq!(tu, tu2, "seed {seed}: AST changed:\n{printed}");
    }
}
