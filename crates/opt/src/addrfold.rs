//! Base+offset address folding.
//!
//! `add r2, r1, 16` followed by `ld [r2]` becomes `ld [r1+16]` when `r2`
//! has no other use — producing the base-plus-immediate-offset access
//! chains characteristic of unrolled specialized kernels (Appendix D).

use ks_ir::{BinOp, Function, Inst, Operand, Ty, VReg};
use std::collections::HashMap;

/// Returns the number of addresses folded.
pub fn run(f: &mut Function) -> usize {
    // Count uses of every register (including terminator predicates).
    let mut uses = vec![0u32; f.num_vregs()];
    for b in &f.blocks {
        for i in &b.insts {
            i.for_each_use(|r| uses[r.0 as usize] += 1);
        }
        if let Some(p) = b.term.use_reg() {
            uses[p.0 as usize] += 1;
        }
    }
    // Single-def adds of the form dst = base + imm (pointer or integer).
    let mut defs = vec![0u32; f.num_vregs()];
    let mut add_of: HashMap<VReg, (VReg, i64)> = HashMap::new();
    for b in &f.blocks {
        for i in &b.insts {
            if let Some(d) = i.def() {
                defs[d.0 as usize] += 1;
            }
            if let Inst::Bin {
                op: BinOp::Add,
                ty,
                dst,
                a,
                b,
            } = i
            {
                if matches!(ty, Ty::Ptr(_) | Ty::S32 | Ty::U32) {
                    match (a, b) {
                        (Operand::Reg(r), Operand::ImmI(c))
                        | (Operand::ImmI(c), Operand::Reg(r)) => {
                            add_of.insert(*dst, (*r, *c));
                        }
                        _ => {}
                    }
                }
            }
        }
    }

    let mut folded = 0;
    for b in &mut f.blocks {
        for i in &mut b.insts {
            let addr = match i {
                Inst::Ld { addr, .. } | Inst::St { addr, .. } => addr,
                _ => continue,
            };
            if let Some(base) = addr.base {
                // Only fold defs that are singular and adds of reg+imm.
                if defs[base.0 as usize] == 1 {
                    if let Some(&(src, c)) = add_of.get(&base) {
                        // The add's operand must itself be single-def (or a
                        // function-invariant like a param load) to be safe
                        // across blocks; single-def is what lowering emits.
                        if defs[src.0 as usize] == 1 {
                            addr.base = Some(src);
                            addr.offset += c;
                            folded += 1;
                        }
                    }
                }
            }
        }
    }
    folded
}

#[cfg(test)]
mod tests {
    use super::*;
    use ks_ir::*;

    #[test]
    fn folds_add_into_load_offset() {
        let mut f = Function {
            name: "t".into(),
            params: vec![],
            blocks: vec![],
            vreg_types: vec![],
            shared: vec![],
            local_bytes: 0,
        };
        let base = f.new_vreg(Ty::Ptr(Space::Global));
        let sum = f.new_vreg(Ty::Ptr(Space::Global));
        let val = f.new_vreg(Ty::F32);
        f.blocks.push(BasicBlock {
            id: BlockId(0),
            insts: vec![
                Inst::Special {
                    dst: base,
                    reg: SpecialReg::TidX,
                },
                Inst::Bin {
                    op: BinOp::Add,
                    ty: Ty::Ptr(Space::Global),
                    dst: sum,
                    a: base.into(),
                    b: Operand::ImmI(84),
                },
                Inst::Ld {
                    space: Space::Global,
                    ty: Ty::F32,
                    dst: val,
                    addr: Address::reg(sum),
                },
            ],
            term: Terminator::Ret,
        });
        assert_eq!(run(&mut f), 1);
        match &f.blocks[0].insts[2] {
            Inst::Ld { addr, .. } => {
                assert_eq!(addr.base, Some(base));
                assert_eq!(addr.offset, 84);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn multi_def_base_not_folded() {
        let mut f = Function {
            name: "t".into(),
            params: vec![],
            blocks: vec![],
            vreg_types: vec![],
            shared: vec![],
            local_bytes: 0,
        };
        let a = f.new_vreg(Ty::Ptr(Space::Global));
        let v = f.new_vreg(Ty::F32);
        f.blocks.push(BasicBlock {
            id: BlockId(0),
            insts: vec![
                Inst::Mov {
                    ty: Ty::Ptr(Space::Global),
                    dst: a,
                    src: Operand::ImmI(0x100),
                },
                Inst::Bin {
                    op: BinOp::Add,
                    ty: Ty::Ptr(Space::Global),
                    dst: a,
                    a: a.into(),
                    b: Operand::ImmI(4),
                },
                Inst::Ld {
                    space: Space::Global,
                    ty: Ty::F32,
                    dst: v,
                    addr: Address::reg(a),
                },
            ],
            term: Terminator::Ret,
        });
        assert_eq!(run(&mut f), 0, "self-updating pointer must not fold");
    }
}
