//! IR constant folding + propagation + copy propagation.
//!
//! Strategy: virtual registers produced by the lowering are almost all
//! single-definition temporaries, so a cheap global analysis suffices —
//! compute def counts, then for every single-def register whose definition
//! is `mov reg, imm` (or an all-immediate computation) replace its uses
//! with the immediate. Copy propagation handles single-def `mov a, b`
//! where `b` is also single-def.

use crate::eval::{cmp_int, cvt_imm, eval_bin, eval_bin_f};
use ks_ir::{BinOp, Function, Inst, Operand, Ty, UnOp, VReg};
use std::collections::HashMap;

/// Count definitions of every vreg.
fn def_counts(f: &Function) -> Vec<u32> {
    let mut counts = vec![0u32; f.num_vregs()];
    for b in &f.blocks {
        for i in &b.insts {
            if let Some(d) = i.def() {
                counts[d.0 as usize] += 1;
            }
        }
    }
    counts
}

/// One round of folding; returns the number of instructions rewritten.
pub fn run(f: &mut Function) -> usize {
    let counts = def_counts(f);
    // Known constants: single-def registers whose def produced an immediate.
    let mut known: HashMap<VReg, Operand> = HashMap::new();
    // Copies: single-def `mov a, b` with single-def b.
    let mut copies: HashMap<VReg, VReg> = HashMap::new();

    for b in &f.blocks {
        for i in &b.insts {
            let Some(d) = i.def() else { continue };
            if counts[d.0 as usize] != 1 {
                continue;
            }
            match i {
                Inst::Mov {
                    src: Operand::ImmI(v),
                    ..
                } => {
                    known.insert(d, Operand::ImmI(*v));
                }
                Inst::Mov {
                    src: Operand::ImmF(v),
                    ..
                } => {
                    known.insert(d, Operand::ImmF(*v));
                }
                Inst::Mov {
                    src: Operand::Reg(s),
                    ..
                } if counts[s.0 as usize] == 1 => {
                    copies.insert(d, *s);
                }
                Inst::Bin {
                    op,
                    ty,
                    a: Operand::ImmI(x),
                    b: Operand::ImmI(y),
                    ..
                } => {
                    if let Some(v) = eval_bin(*op, *ty, *x, *y) {
                        known.insert(d, Operand::ImmI(v));
                    }
                }
                Inst::Bin {
                    op,
                    ty: Ty::F32,
                    a: Operand::ImmF(x),
                    b: Operand::ImmF(y),
                    ..
                } => {
                    if let Some(v) = eval_bin_f(*op, *x, *y) {
                        known.insert(d, Operand::ImmF(v));
                    }
                }
                Inst::Setp {
                    cmp,
                    ty,
                    a: Operand::ImmI(x),
                    b: Operand::ImmI(y),
                    ..
                } => {
                    let r = if *ty == Ty::U32 {
                        cmp_int(*cmp, (*x as u32) as i64, (*y as u32) as i64)
                    } else {
                        cmp_int(*cmp, (*x as i32) as i64, (*y as i32) as i64)
                    };
                    // Predicates have no immediates; record as ImmI for
                    // terminator simplification only.
                    known.insert(d, Operand::ImmI(i64::from(r)));
                }
                _ => {}
            }
        }
    }
    // Resolve copy chains into `known` or a final register.
    let resolve = |mut r: VReg| -> Operand {
        let mut hops = 0;
        while let Some(&s) = copies.get(&r) {
            r = s;
            hops += 1;
            if hops > 64 {
                break;
            }
        }
        known.get(&r).copied().unwrap_or(Operand::Reg(r))
    };

    let mut changed = 0;
    let pred_types: Vec<Ty> = f.vreg_types.clone();
    for b in &mut f.blocks {
        for i in &mut b.insts {
            // Skip rewriting uses of predicates with ImmI (predicates have
            // no immediate form); resolve() may return one for setp dsts.
            let before = i.clone();
            i.map_uses(&mut |r| {
                if pred_types[r.0 as usize] == Ty::Pred {
                    return Operand::Reg(r);
                }
                resolve(r)
            });
            if *i != before {
                changed += 1;
            }
        }
        // Simplify conditional branches on known predicates.
        if let ks_ir::Terminator::CondBr {
            pred,
            negate,
            then_t,
            else_t,
        } = b.term
        {
            if let Some(Operand::ImmI(v)) = known.get(&pred) {
                let taken = (*v != 0) ^ negate;
                b.term = ks_ir::Terminator::Br {
                    target: if taken { then_t } else { else_t },
                };
                changed += 1;
            }
        }
    }

    // Simplify instructions whose operands are now immediates (fold binop →
    // mov), and algebraic identities.
    for b in &mut f.blocks {
        for i in &mut b.insts {
            let replacement = match &*i {
                Inst::Bin {
                    op,
                    ty,
                    dst,
                    a: Operand::ImmI(x),
                    b: Operand::ImmI(y),
                } => eval_bin(*op, *ty, *x, *y).map(|v| Inst::Mov {
                    ty: *ty,
                    dst: *dst,
                    src: Operand::ImmI(v),
                }),
                Inst::Bin {
                    op,
                    ty: Ty::F32,
                    dst,
                    a: Operand::ImmF(x),
                    b: Operand::ImmF(y),
                } => eval_bin_f(*op, *x, *y).map(|v| Inst::Mov {
                    ty: Ty::F32,
                    dst: *dst,
                    src: Operand::ImmF(v),
                }),
                // x + 0, x * 1, x - 0, x << 0, x >> 0 → mov
                Inst::Bin {
                    op: BinOp::Add | BinOp::Sub | BinOp::Shl | BinOp::Shr,
                    ty,
                    dst,
                    a,
                    b: Operand::ImmI(0),
                } => Some(Inst::Mov {
                    ty: *ty,
                    dst: *dst,
                    src: *a,
                }),
                Inst::Bin {
                    op: BinOp::Add,
                    ty,
                    dst,
                    a: Operand::ImmI(0),
                    b,
                } => Some(Inst::Mov {
                    ty: *ty,
                    dst: *dst,
                    src: *b,
                }),
                Inst::Bin {
                    op: BinOp::Mul,
                    ty,
                    dst,
                    a,
                    b: Operand::ImmI(1),
                } => Some(Inst::Mov {
                    ty: *ty,
                    dst: *dst,
                    src: *a,
                }),
                Inst::Bin {
                    op: BinOp::Mul,
                    ty,
                    dst,
                    a: Operand::ImmI(1),
                    b,
                } => Some(Inst::Mov {
                    ty: *ty,
                    dst: *dst,
                    src: *b,
                }),
                Inst::Un {
                    op: UnOp::Neg,
                    ty,
                    dst,
                    a: Operand::ImmI(x),
                } => Some(Inst::Mov {
                    ty: *ty,
                    dst: *dst,
                    src: Operand::ImmI(((*x as i32).wrapping_neg()) as i64),
                }),
                Inst::Un {
                    op: UnOp::Neg,
                    ty: Ty::F32,
                    dst,
                    a: Operand::ImmF(x),
                } => Some(Inst::Mov {
                    ty: Ty::F32,
                    dst: *dst,
                    src: Operand::ImmF(-x),
                }),
                Inst::Un {
                    op,
                    ty: Ty::F32,
                    dst,
                    a: Operand::ImmF(x),
                } => {
                    let v = match op {
                        UnOp::Abs => Some(x.abs()),
                        UnOp::Sqrt => Some(x.sqrt()),
                        UnOp::Rsqrt => Some(1.0 / x.sqrt()),
                        UnOp::Floor => Some(x.floor()),
                        _ => None,
                    };
                    v.map(|v| Inst::Mov {
                        ty: Ty::F32,
                        dst: *dst,
                        src: Operand::ImmF(v),
                    })
                }
                Inst::Cvt {
                    dst_ty,
                    src_ty,
                    dst,
                    src: Operand::ImmI(x),
                } => cvt_imm(*dst_ty, *src_ty, Operand::ImmI(*x)).map(|v| Inst::Mov {
                    ty: *dst_ty,
                    dst: *dst,
                    src: v,
                }),
                Inst::Cvt {
                    dst_ty,
                    src_ty,
                    dst,
                    src: Operand::ImmF(x),
                } => cvt_imm(*dst_ty, *src_ty, Operand::ImmF(*x)).map(|v| Inst::Mov {
                    ty: *dst_ty,
                    dst: *dst,
                    src: v,
                }),
                _ => None,
            };
            if let Some(r) = replacement {
                if *i != r {
                    *i = r;
                    changed += 1;
                }
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use ks_ir::*;

    fn one_block(f: &mut Function, insts: Vec<Inst>) {
        f.blocks.push(BasicBlock {
            id: BlockId(0),
            insts,
            term: Terminator::Ret,
        });
    }

    fn mk() -> Function {
        Function {
            name: "t".into(),
            params: vec![],
            blocks: vec![],
            vreg_types: vec![],
            shared: vec![],
            local_bytes: 0,
        }
    }

    #[test]
    fn propagates_immediate_through_mov() {
        let mut f = mk();
        let a = f.new_vreg(Ty::S32);
        let b = f.new_vreg(Ty::S32);
        one_block(
            &mut f,
            vec![
                Inst::Mov {
                    ty: Ty::S32,
                    dst: a,
                    src: Operand::ImmI(21),
                },
                Inst::Bin {
                    op: BinOp::Mul,
                    ty: Ty::S32,
                    dst: b,
                    a: a.into(),
                    b: Operand::ImmI(2),
                },
            ],
        );
        while run(&mut f) > 0 {}
        // b's def must now be a mov of 42.
        assert!(f.blocks[0]
            .insts
            .iter()
            .any(|i| matches!(i, Inst::Mov { dst, src: Operand::ImmI(42), .. } if *dst == b)));
    }

    #[test]
    fn known_predicate_kills_branch() {
        let mut f = mk();
        let p = f.new_vreg(Ty::Pred);
        f.blocks.push(BasicBlock {
            id: BlockId(0),
            insts: vec![Inst::Setp {
                cmp: CmpOp::Lt,
                ty: Ty::S32,
                dst: p,
                a: Operand::ImmI(1),
                b: Operand::ImmI(2),
            }],
            term: Terminator::CondBr {
                pred: p,
                negate: false,
                then_t: BlockId(1),
                else_t: BlockId(2),
            },
        });
        f.blocks.push(BasicBlock {
            id: BlockId(1),
            insts: vec![],
            term: Terminator::Ret,
        });
        f.blocks.push(BasicBlock {
            id: BlockId(2),
            insts: vec![],
            term: Terminator::Ret,
        });
        run(&mut f);
        assert_eq!(f.blocks[0].term, Terminator::Br { target: BlockId(1) });
    }

    #[test]
    fn multi_def_registers_not_propagated() {
        let mut f = mk();
        let a = f.new_vreg(Ty::S32);
        let b = f.new_vreg(Ty::S32);
        one_block(
            &mut f,
            vec![
                Inst::Mov {
                    ty: Ty::S32,
                    dst: a,
                    src: Operand::ImmI(1),
                },
                Inst::Mov {
                    ty: Ty::S32,
                    dst: a,
                    src: Operand::ImmI(2),
                },
                Inst::Bin {
                    op: BinOp::Add,
                    ty: Ty::S32,
                    dst: b,
                    a: a.into(),
                    b: a.into(),
                },
            ],
        );
        run(&mut f);
        // The add must still reference the register, not a folded constant.
        assert!(f.blocks[0].insts.iter().any(|i| matches!(
            i,
            Inst::Bin {
                a: Operand::Reg(_),
                ..
            }
        )));
    }

    #[test]
    fn float_and_cvt_folding() {
        let mut f = mk();
        let a = f.new_vreg(Ty::F32);
        let b = f.new_vreg(Ty::S32);
        one_block(
            &mut f,
            vec![
                Inst::Bin {
                    op: BinOp::Mul,
                    ty: Ty::F32,
                    dst: a,
                    a: Operand::ImmF(2.5),
                    b: Operand::ImmF(4.0),
                },
                Inst::Cvt {
                    dst_ty: Ty::S32,
                    src_ty: Ty::F32,
                    dst: b,
                    src: Operand::ImmF(3.7),
                },
            ],
        );
        run(&mut f);
        assert!(f.blocks[0]
            .insts
            .iter()
            .any(|i| matches!(i, Inst::Mov { src: Operand::ImmF(v), .. } if *v == 10.0)));
        assert!(f.blocks[0].insts.iter().any(|i| matches!(
            i,
            Inst::Mov {
                src: Operand::ImmI(3),
                ..
            }
        )));
    }
}
