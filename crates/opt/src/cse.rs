//! Local common-subexpression elimination (per-basic-block value
//! numbering). Recomputed address arithmetic — ubiquitous in unrolled
//! specialized kernels and in rolled loops alike — collapses to a single
//! computation. Loads participate too, invalidated by stores/barriers to
//! the same state space.

use ks_ir::{Function, Inst, Operand, Space, VReg};
use std::collections::HashMap;

/// A hashable key describing a pure computation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Key {
    Bin(ks_ir::BinOp, ks_ir::Ty, OpKey, OpKey),
    Un(ks_ir::UnOp, ks_ir::Ty, OpKey),
    Mad(ks_ir::Ty, OpKey, OpKey, OpKey),
    Setp(ks_ir::CmpOp, ks_ir::Ty, OpKey, OpKey),
    Selp(ks_ir::Ty, OpKey, OpKey, VReg),
    Cvt(ks_ir::Ty, ks_ir::Ty, OpKey),
    Special(ks_ir::SpecialReg),
    Ld(Space, ks_ir::Ty, Option<VReg>, i64),
    Tex(u32, ks_ir::Ty, OpKey),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum OpKey {
    Reg(VReg),
    ImmI(i64),
    /// Float immediates keyed by bit pattern.
    ImmF(u32),
}

fn op_key(o: &Operand) -> OpKey {
    match o {
        Operand::Reg(r) => OpKey::Reg(*r),
        Operand::ImmI(v) => OpKey::ImmI(*v),
        Operand::ImmF(v) => OpKey::ImmF(v.to_bits()),
    }
}

fn key_of(i: &Inst) -> Option<Key> {
    Some(match i {
        Inst::Bin { op, ty, a, b, .. } => Key::Bin(*op, *ty, op_key(a), op_key(b)),
        Inst::Un { op, ty, a, .. } => Key::Un(*op, *ty, op_key(a)),
        Inst::Mad { ty, a, b, c, .. } => Key::Mad(*ty, op_key(a), op_key(b), op_key(c)),
        Inst::Setp { cmp, ty, a, b, .. } => Key::Setp(*cmp, *ty, op_key(a), op_key(b)),
        Inst::Selp { ty, a, b, pred, .. } => Key::Selp(*ty, op_key(a), op_key(b), *pred),
        Inst::Cvt {
            dst_ty,
            src_ty,
            src,
            ..
        } => Key::Cvt(*dst_ty, *src_ty, op_key(src)),
        Inst::Special { reg, .. } => Key::Special(*reg),
        Inst::Ld {
            space, ty, addr, ..
        } => Key::Ld(*space, *ty, addr.base, addr.offset),
        Inst::Tex { ty, tex, idx, .. } => Key::Tex(*tex, *ty, op_key(idx)),
        _ => return None,
    })
}

fn key_uses(k: &Key, mut f: impl FnMut(VReg)) {
    let mut op = |o: &OpKey| {
        if let OpKey::Reg(r) = o {
            f(*r)
        }
    };
    match k {
        Key::Bin(_, _, a, b) | Key::Setp(_, _, a, b) => {
            op(a);
            op(b);
        }
        Key::Un(_, _, a) | Key::Cvt(_, _, a) => op(a),
        Key::Mad(_, a, b, c) => {
            op(a);
            op(b);
            op(c);
        }
        Key::Selp(_, a, b, p) => {
            op(a);
            op(b);
            f(*p);
        }
        Key::Special(_) => {}
        Key::Ld(_, _, base, _) => {
            if let Some(b) = base {
                f(*b)
            }
        }
        Key::Tex(_, _, i) => op(i),
    }
}

/// Maximum distance (in instructions) across which a value is reused.
/// Unbounded reuse would stretch live ranges across whole unrolled bodies
/// and explode register pressure — real compilers trade recomputation for
/// registers exactly like this.
const REUSE_WINDOW: usize = 24;

/// One CSE pass; returns the number of instructions replaced by copies.
pub fn run(f: &mut Function) -> usize {
    let mut replaced = 0;
    for b in &mut f.blocks {
        // value key -> (register holding it, instruction position defined)
        let mut avail: HashMap<Key, (VReg, usize)> = HashMap::new();
        for (pos, i) in b.insts.iter_mut().enumerate() {
            // Invalidate loads when memory may change.
            match i {
                Inst::St { space, .. } => {
                    let s = *space;
                    avail.retain(|k, _| {
                        // Texture fetches read global memory: a global
                        // store may alias them (the simulator is
                        // coherent, unlike real texture caches).
                        !(matches!(k, Key::Ld(sp, ..) if *sp == s)
                            || (s == Space::Global && matches!(k, Key::Tex(..))))
                    });
                }
                Inst::Bar => {
                    // A barrier publishes other threads' shared *and*
                    // global (and thus texture-visible) writes.
                    avail.retain(|k, _| {
                        !matches!(k, Key::Ld(Space::Shared | Space::Global, ..) | Key::Tex(..))
                    });
                }
                _ => {}
            }
            let key = key_of(i);
            let def = i.def();
            if let (Some(key), Some(dst)) = (key, def) {
                match avail.get(&key) {
                    Some(&(prev, at)) if pos - at <= REUSE_WINDOW => {
                        let ty = f.vreg_types[dst.0 as usize];
                        *i = Inst::Mov {
                            ty,
                            dst,
                            src: Operand::Reg(prev),
                        };
                        replaced += 1;
                    }
                    _ => {
                        avail.insert(key, (dst, pos));
                    }
                }
            }
            // Redefinition kills every expression that used the old value,
            // and any expression currently cached in this register.
            if let Some(dst) = i.def() {
                avail.retain(|k, (v, _)| {
                    if *v == dst {
                        // keep only if this very instruction produced it
                        key_of(i).as_ref() == Some(k)
                    } else {
                        let mut uses_dst = false;
                        key_uses(k, |r| uses_dst |= r == dst);
                        !uses_dst
                    }
                });
            }
        }
    }
    replaced
}

#[cfg(test)]
mod tests {
    use super::*;
    use ks_ir::*;

    fn mk(insts: Vec<Inst>, tys: Vec<Ty>) -> Function {
        Function {
            name: "t".into(),
            params: vec![],
            blocks: vec![BasicBlock {
                id: BlockId(0),
                insts,
                term: Terminator::Ret,
            }],
            vreg_types: tys,
            shared: vec![],
            local_bytes: 0,
        }
    }

    #[test]
    fn duplicate_arithmetic_collapses() {
        // r1 = r0*4; r2 = r0*4  →  r2 = mov r1
        let f_insts = vec![
            Inst::Bin {
                op: BinOp::Mul,
                ty: Ty::S32,
                dst: VReg(1),
                a: VReg(0).into(),
                b: Operand::ImmI(4),
            },
            Inst::Bin {
                op: BinOp::Mul,
                ty: Ty::S32,
                dst: VReg(2),
                a: VReg(0).into(),
                b: Operand::ImmI(4),
            },
        ];
        let mut f = mk(f_insts, vec![Ty::S32; 3]);
        assert_eq!(run(&mut f), 1);
        assert!(matches!(
            f.blocks[0].insts[1],
            Inst::Mov {
                src: Operand::Reg(VReg(1)),
                ..
            }
        ));
    }

    #[test]
    fn redefinition_invalidates() {
        // r1 = r0+1; r0 = 9; r2 = r0+1  → r2 must NOT reuse r1.
        let insts = vec![
            Inst::Bin {
                op: BinOp::Add,
                ty: Ty::S32,
                dst: VReg(1),
                a: VReg(0).into(),
                b: Operand::ImmI(1),
            },
            Inst::Mov {
                ty: Ty::S32,
                dst: VReg(0),
                src: Operand::ImmI(9),
            },
            Inst::Bin {
                op: BinOp::Add,
                ty: Ty::S32,
                dst: VReg(2),
                a: VReg(0).into(),
                b: Operand::ImmI(1),
            },
        ];
        let mut f = mk(insts, vec![Ty::S32; 3]);
        assert_eq!(run(&mut f), 0);
    }

    #[test]
    fn loads_cse_until_store() {
        let addr = Address::reg(VReg(0));
        let insts = vec![
            Inst::Ld {
                space: Space::Global,
                ty: Ty::F32,
                dst: VReg(1),
                addr,
            },
            Inst::Ld {
                space: Space::Global,
                ty: Ty::F32,
                dst: VReg(2),
                addr,
            },
            Inst::St {
                space: Space::Global,
                ty: Ty::F32,
                addr,
                src: Operand::ImmF(0.0),
            },
            Inst::Ld {
                space: Space::Global,
                ty: Ty::F32,
                dst: VReg(3),
                addr,
            },
        ];
        let mut f = mk(
            insts,
            vec![Ty::Ptr(Space::Global), Ty::F32, Ty::F32, Ty::F32],
        );
        assert_eq!(run(&mut f), 1, "only the pre-store reload may CSE");
        assert!(matches!(f.blocks[0].insts[1], Inst::Mov { .. }));
        assert!(matches!(f.blocks[0].insts[3], Inst::Ld { .. }));
    }

    #[test]
    fn shared_loads_invalidate_at_barrier() {
        let addr = Address::abs(0);
        let insts = vec![
            Inst::Ld {
                space: Space::Shared,
                ty: Ty::F32,
                dst: VReg(0),
                addr,
            },
            Inst::Bar,
            Inst::Ld {
                space: Space::Shared,
                ty: Ty::F32,
                dst: VReg(1),
                addr,
            },
        ];
        let mut f = mk(insts, vec![Ty::F32, Ty::F32]);
        assert_eq!(run(&mut f), 0, "barrier publishes other threads' writes");
    }

    #[test]
    fn special_registers_cse() {
        let insts = vec![
            Inst::Special {
                dst: VReg(0),
                reg: SpecialReg::TidX,
            },
            Inst::Special {
                dst: VReg(1),
                reg: SpecialReg::TidX,
            },
        ];
        let mut f = mk(insts, vec![Ty::U32, Ty::U32]);
        assert_eq!(run(&mut f), 1);
    }
}
