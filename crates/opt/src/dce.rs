//! Dead-code elimination. Removes instructions whose results are never
//! used and which have no side effects; iterates so chains die completely.
//! In a fully specialized kernel this is the pass that deletes the
//! parameter-space loads and special-register reads that constant
//! propagation made redundant.

use ks_ir::Function;

/// Remove dead instructions; returns how many were removed in total.
pub fn run(f: &mut Function) -> usize {
    let mut removed_total = 0;
    loop {
        let mut used = vec![false; f.num_vregs()];
        for b in &f.blocks {
            for i in &b.insts {
                i.for_each_use(|r| used[r.0 as usize] = true);
            }
            if let Some(p) = b.term.use_reg() {
                used[p.0 as usize] = true;
            }
        }
        let mut removed = 0;
        for b in &mut f.blocks {
            b.insts.retain(|i| {
                if i.has_side_effect() {
                    return true;
                }
                match i.def() {
                    Some(d) if !used[d.0 as usize] => {
                        removed += 1;
                        false
                    }
                    _ => true,
                }
            });
        }
        removed_total += removed;
        if removed == 0 {
            break;
        }
    }
    removed_total
}

#[cfg(test)]
mod tests {
    use super::*;
    use ks_ir::*;

    #[test]
    fn removes_dead_chain_but_keeps_stores_and_barriers() {
        let mut f = Function {
            name: "t".into(),
            params: vec![],
            blocks: vec![],
            vreg_types: vec![],
            shared: vec![],
            local_bytes: 0,
        };
        let a = f.new_vreg(Ty::S32);
        let b = f.new_vreg(Ty::S32);
        let live = f.new_vreg(Ty::F32);
        f.blocks.push(BasicBlock {
            id: BlockId(0),
            insts: vec![
                // dead chain: a -> b -> nothing
                Inst::Mov {
                    ty: Ty::S32,
                    dst: a,
                    src: Operand::ImmI(1),
                },
                Inst::Bin {
                    op: BinOp::Add,
                    ty: Ty::S32,
                    dst: b,
                    a: a.into(),
                    b: Operand::ImmI(1),
                },
                // live value feeding a store
                Inst::Mov {
                    ty: Ty::F32,
                    dst: live,
                    src: Operand::ImmF(2.0),
                },
                Inst::Bar,
                Inst::St {
                    space: Space::Global,
                    ty: Ty::F32,
                    addr: Address::abs(0),
                    src: live.into(),
                },
            ],
            term: Terminator::Ret,
        });
        let removed = run(&mut f);
        assert_eq!(removed, 2);
        assert_eq!(f.blocks[0].insts.len(), 3);
        assert!(f.blocks[0].insts.iter().any(|i| matches!(i, Inst::Bar)));
        assert!(f.blocks[0]
            .insts
            .iter()
            .any(|i| matches!(i, Inst::St { .. })));
    }

    #[test]
    fn keeps_branch_predicate() {
        let mut f = Function {
            name: "t".into(),
            params: vec![],
            blocks: vec![],
            vreg_types: vec![],
            shared: vec![],
            local_bytes: 0,
        };
        let p = f.new_vreg(Ty::Pred);
        f.blocks.push(BasicBlock {
            id: BlockId(0),
            insts: vec![Inst::Setp {
                cmp: CmpOp::Lt,
                ty: Ty::S32,
                dst: p,
                a: Operand::ImmI(0),
                b: Operand::ImmI(1),
            }],
            term: Terminator::CondBr {
                pred: p,
                negate: false,
                then_t: BlockId(1),
                else_t: BlockId(1),
            },
        });
        f.blocks.push(BasicBlock {
            id: BlockId(1),
            insts: vec![],
            term: Terminator::Ret,
        });
        assert_eq!(run(&mut f), 0);
    }
}
