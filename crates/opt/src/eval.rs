//! Shared concrete-evaluation semantics for IR arithmetic.
//!
//! This module is the single source of truth for what every IR operation
//! computes on constants. Both the constant-folding pass ([`crate::constfold`])
//! and the ks-verify symbolic evaluator fold through these functions, so the
//! optimizer and its validator can never disagree about arithmetic: a
//! semantics bug here is at least *consistent* and therefore cannot produce
//! false translation-validation diffs.
//!
//! Integer values are carried as `i64` but normalized to their 32-bit type
//! (sign- or zero-extended) exactly the way [`crate::constfold`] always did;
//! pointer arithmetic is full 64-bit.

use ks_ir::{BinOp, CmpOp, Operand, Ty, UnOp};

/// Evaluate an integer/pointer binary op. `None` means "not foldable"
/// (division by zero, float-only op, unsupported pointer op).
pub fn eval_bin(op: BinOp, ty: Ty, a: i64, b: i64) -> Option<i64> {
    if ty == Ty::U32 {
        let (x, y) = (a as u32, b as u32);
        let r: u32 = match op {
            BinOp::Add => x.wrapping_add(y),
            BinOp::Sub => x.wrapping_sub(y),
            BinOp::Mul => x.wrapping_mul(y),
            BinOp::Mul24 => (x & 0xFF_FFFF).wrapping_mul(y & 0xFF_FFFF),
            BinOp::Div => x.checked_div(y)?,
            BinOp::Rem => x.checked_rem(y)?,
            BinOp::Min => x.min(y),
            BinOp::Max => x.max(y),
            BinOp::And => x & y,
            BinOp::Or => x | y,
            BinOp::Xor => x ^ y,
            BinOp::Shl => x.wrapping_shl(y & 31),
            BinOp::Shr => x.wrapping_shr(y & 31),
        };
        Some(r as i64)
    } else if ty == Ty::S32 {
        let (x, y) = (a as i32, b as i32);
        let r: i32 = match op {
            BinOp::Add => x.wrapping_add(y),
            BinOp::Sub => x.wrapping_sub(y),
            BinOp::Mul => x.wrapping_mul(y),
            BinOp::Mul24 => ((x & 0xFF_FFFF) as i64).wrapping_mul((y & 0xFF_FFFF) as i64) as i32,
            BinOp::Div => {
                if y == 0 {
                    return None;
                }
                x.wrapping_div(y)
            }
            BinOp::Rem => {
                if y == 0 {
                    return None;
                }
                x.wrapping_rem(y)
            }
            BinOp::Min => x.min(y),
            BinOp::Max => x.max(y),
            BinOp::And => x & y,
            BinOp::Or => x | y,
            BinOp::Xor => x ^ y,
            BinOp::Shl => x.wrapping_shl(y as u32 & 31),
            BinOp::Shr => x.wrapping_shr(y as u32 & 31),
        };
        Some(r as i64)
    } else if matches!(ty, Ty::Ptr(_)) {
        // 64-bit pointer arithmetic.
        Some(match op {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            _ => return None,
        })
    } else {
        None
    }
}

/// Evaluate an f32 binary op. Only the ops the simulator implements as
/// single IEEE operations fold; everything else is `None`.
pub fn eval_bin_f(op: BinOp, a: f32, b: f32) -> Option<f32> {
    Some(match op {
        BinOp::Add => a + b,
        BinOp::Sub => a - b,
        BinOp::Mul => a * b,
        BinOp::Div => a / b,
        BinOp::Min => a.min(b),
        BinOp::Max => a.max(b),
        _ => return None,
    })
}

/// Evaluate an integer comparison after both operands were normalized to
/// the comparison type's value range (use [`norm_int`] first).
pub fn cmp_int(c: CmpOp, a: i64, b: i64) -> bool {
    match c {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
    }
}

/// Evaluate an integer `setp`, handling the signed/unsigned distinction the
/// same way the constant folder does.
pub fn eval_cmp(c: CmpOp, ty: Ty, a: i64, b: i64) -> bool {
    if ty == Ty::U32 {
        cmp_int(c, (a as u32) as i64, (b as u32) as i64)
    } else {
        cmp_int(c, (a as i32) as i64, (b as i32) as i64)
    }
}

/// Evaluate an f32 comparison.
pub fn eval_cmp_f(c: CmpOp, a: f32, b: f32) -> bool {
    match c {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
    }
}

/// Conversion of an immediate between types. `None` means the combination
/// is not foldable (int↔int cvt never appears: lowering reinterprets).
pub fn cvt_imm(dst_ty: Ty, src_ty: Ty, src: Operand) -> Option<Operand> {
    Some(match (dst_ty, src_ty, src) {
        (Ty::F32, Ty::S32, Operand::ImmI(v)) => Operand::ImmF(v as i32 as f32),
        (Ty::F32, Ty::U32, Operand::ImmI(v)) => Operand::ImmF(v as u32 as f32),
        (Ty::S32, Ty::F32, Operand::ImmF(v)) => Operand::ImmI(v as i32 as i64),
        (Ty::U32, Ty::F32, Operand::ImmF(v)) => Operand::ImmI(v as u32 as i64),
        (Ty::Ptr(_), Ty::S32 | Ty::U32, Operand::ImmI(v)) => Operand::ImmI(v),
        (Ty::S32 | Ty::U32, Ty::Ptr(_), Operand::ImmI(v)) => Operand::ImmI(v as u32 as i64),
        _ => return None,
    })
}

/// Evaluate an integer unary op (only `neg` exists on integers).
pub fn eval_un(op: UnOp, _ty: Ty, a: i64) -> Option<i64> {
    match op {
        UnOp::Neg => Some(((a as i32).wrapping_neg()) as i64),
        _ => None,
    }
}

/// Evaluate an f32 unary op.
pub fn eval_un_f(op: UnOp, a: f32) -> Option<f32> {
    Some(match op {
        UnOp::Neg => -a,
        UnOp::Abs => a.abs(),
        UnOp::Sqrt => a.sqrt(),
        UnOp::Rsqrt => 1.0 / a.sqrt(),
        UnOp::Floor => a.floor(),
        UnOp::Not => return None,
    })
}

/// Normalize an `i64` immediate to the canonical value of its type: s32
/// values are sign-extended, u32 values zero-extended, pointers untouched.
/// Two immediates with the same normalized value are bit-identical in the
/// simulator.
pub fn norm_int(ty: Ty, v: i64) -> i64 {
    match ty {
        Ty::S32 => (v as i32) as i64,
        Ty::U32 => (v as u32) as i64,
        _ => v,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsigned_vs_signed_division() {
        assert_eq!(eval_bin(BinOp::Div, Ty::S32, -7, 2), Some(-3));
        assert_eq!(
            eval_bin(BinOp::Div, Ty::U32, (-7i32) as i64, 2),
            Some(2147483644)
        );
        assert_eq!(eval_bin(BinOp::Div, Ty::S32, 1, 0), None);
    }

    #[test]
    fn mul24_masks_operands() {
        assert_eq!(
            eval_bin(BinOp::Mul24, Ty::U32, 0x100_0001, 3),
            Some(3),
            "high bits beyond 24 are ignored"
        );
    }

    #[test]
    fn shifts_mask_the_count() {
        assert_eq!(eval_bin(BinOp::Shl, Ty::U32, 1, 33), Some(2));
        assert_eq!(eval_bin(BinOp::Shr, Ty::S32, -8, 1), Some(-4));
    }

    #[test]
    fn cmp_respects_signedness() {
        assert!(eval_cmp(CmpOp::Lt, Ty::S32, -1, 0));
        assert!(!eval_cmp(CmpOp::Lt, Ty::U32, -1i64, 0));
    }

    #[test]
    fn cvt_ptr_truncates_to_32() {
        assert_eq!(
            cvt_imm(
                Ty::U32,
                Ty::Ptr(ks_ir::Space::Global),
                Operand::ImmI(0x1_0000_0004)
            ),
            Some(Operand::ImmI(4))
        );
    }

    #[test]
    fn norm_int_round_trips() {
        assert_eq!(norm_int(Ty::S32, 0xFFFF_FFFF), -1);
        assert_eq!(norm_int(Ty::U32, -1), 0xFFFF_FFFF);
        assert_eq!(norm_int(Ty::Ptr(ks_ir::Space::Global), -1), -1);
    }
}
