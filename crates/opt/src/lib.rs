//! # ks-opt — IR-level optimization passes
//!
//! These run after lowering and model the CUDA-C→PTX optimizations the
//! dissertation names (§2.4): constant folding/propagation, strength
//! reduction of power-of-two multiplies/divides/modulo, base+offset address
//! folding (the unrolled access pattern of Appendix D), copy propagation,
//! and dead-code elimination (which is what removes the param-space loads
//! of fully specialized kernels).

pub mod addrfold;
pub mod constfold;
pub mod cse;
pub mod dce;
pub mod eval;
pub mod strength;

use ks_ir::Function;

/// Statistics describing what a pipeline run changed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    pub insts_before: usize,
    pub insts_after: usize,
    pub folded: usize,
    pub strength_reduced: usize,
    pub addresses_folded: usize,
    pub cse_replaced: usize,
    pub dead_removed: usize,
}

/// Per-pass toggles, for ablation studies (everything on by default).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OptConfig {
    pub constfold: bool,
    pub strength: bool,
    pub addrfold: bool,
    pub cse: bool,
    pub dce: bool,
}

impl Default for OptConfig {
    fn default() -> Self {
        OptConfig {
            constfold: true,
            strength: true,
            addrfold: true,
            cse: true,
            dce: true,
        }
    }
}

impl OptConfig {
    /// Everything off (a "-O0" backend).
    pub fn none() -> OptConfig {
        OptConfig {
            constfold: false,
            strength: false,
            addrfold: false,
            cse: false,
            dce: false,
        }
    }
}

/// Run the standard pass pipeline to fixpoint.
pub fn optimize(f: &mut Function) -> OptStats {
    optimize_with(f, &OptConfig::default())
}

/// Run the pipeline with per-pass toggles.
pub fn optimize_with(f: &mut Function, cfg: &OptConfig) -> OptStats {
    optimize_with_observer(f, cfg, &mut |_, _| {})
}

/// Run the pipeline with per-pass toggles, invoking `obs(pass_name, f)`
/// after every pass application that changed the function. This is the
/// hook the ks-core sanitizer uses to verify intermediate IR with pass
/// attribution.
pub fn optimize_with_observer(
    f: &mut Function,
    cfg: &OptConfig,
    obs: &mut dyn FnMut(&'static str, &Function),
) -> OptStats {
    let mut stats = OptStats {
        insts_before: f.static_inst_count(),
        ..Default::default()
    };
    loop {
        let mut changed = 0;
        if cfg.constfold {
            let c = constfold::run(f);
            if c > 0 {
                obs("constfold", f);
            }
            stats.folded += c;
            changed += c;
        }
        if cfg.strength {
            let s = strength::run(f);
            if s > 0 {
                obs("strength", f);
            }
            stats.strength_reduced += s;
            changed += s;
        }
        if cfg.addrfold {
            let a = addrfold::run(f);
            if a > 0 {
                obs("addrfold", f);
            }
            stats.addresses_folded += a;
            changed += a;
        }
        if cfg.cse {
            let c = cse::run(f);
            if c > 0 {
                obs("cse", f);
            }
            stats.cse_replaced += c;
            changed += c;
        }
        if cfg.dce {
            let d = dce::run(f);
            if d > 0 {
                obs("dce", f);
            }
            stats.dead_removed += d;
            changed += d;
        }
        if changed == 0 {
            break;
        }
    }
    stats.insts_after = f.static_inst_count();
    debug_assert!(
        ks_ir::verify_function(f).is_empty(),
        "pass pipeline broke the IR"
    );
    stats
}

/// Optimize every function in a module.
pub fn optimize_module(m: &mut ks_ir::Module) -> Vec<OptStats> {
    m.functions.iter_mut().map(optimize).collect()
}

/// Optimize every function in a module with per-pass toggles.
pub fn optimize_module_with(m: &mut ks_ir::Module, cfg: &OptConfig) -> Vec<OptStats> {
    m.functions
        .iter_mut()
        .map(|f| optimize_with(f, cfg))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ks_ir::*;

    /// Build: r0=tid; r1 = r0*8; r2 = r1+16; st [r2], 1.0; plus a dead
    /// param load. After the pipeline: shl, st with folded offset, no dead
    /// load.
    #[test]
    fn pipeline_composes() {
        let mut f = Function {
            name: "k".into(),
            params: vec![KernelParam {
                name: "n".into(),
                ty: Ty::S32,
                offset: 0,
            }],
            blocks: vec![],
            vreg_types: vec![],
            shared: vec![],
            local_bytes: 0,
        };
        let r0 = f.new_vreg(Ty::U32);
        let r1 = f.new_vreg(Ty::U32);
        let r2 = f.new_vreg(Ty::Ptr(Space::Global));
        let dead = f.new_vreg(Ty::S32);
        f.blocks.push(BasicBlock {
            id: BlockId(0),
            insts: vec![
                Inst::Special {
                    dst: r0,
                    reg: SpecialReg::TidX,
                },
                Inst::Ld {
                    space: Space::Param,
                    ty: Ty::S32,
                    dst: dead,
                    addr: Address::abs(0),
                },
                Inst::Bin {
                    op: BinOp::Mul,
                    ty: Ty::U32,
                    dst: r1,
                    a: r0.into(),
                    b: Operand::ImmI(8),
                },
                Inst::Bin {
                    op: BinOp::Add,
                    ty: Ty::Ptr(Space::Global),
                    dst: r2,
                    a: r1.into(),
                    b: Operand::ImmI(16),
                },
                Inst::St {
                    space: Space::Global,
                    ty: Ty::F32,
                    addr: Address::reg(r2),
                    src: Operand::ImmF(1.0),
                },
            ],
            term: Terminator::Ret,
        });
        let stats = optimize(&mut f);
        assert!(stats.strength_reduced >= 1, "mul by 8 must become shl");
        assert!(
            stats.addresses_folded >= 1,
            "add 16 must fold into the store address"
        );
        assert!(stats.dead_removed >= 1, "dead param load must go");
        let insts = &f.blocks[0].insts;
        assert!(insts.iter().any(|i| matches!(
            i,
            Inst::Bin {
                op: BinOp::Shl,
                b: Operand::ImmI(3),
                ..
            }
        )));
        assert!(insts.iter().any(|i| matches!(
            i,
            Inst::St {
                addr: Address {
                    base: Some(_),
                    offset: 16
                },
                ..
            }
        )));
        assert!(!insts.iter().any(|i| matches!(
            i,
            Inst::Ld {
                space: Space::Param,
                ..
            }
        )));
        assert!(ks_ir::verify_function(&f).is_empty());
    }
}
