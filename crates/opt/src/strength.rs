//! Strength reduction: power-of-two multiply/divide/modulo → shifts and
//! masks. The dissertation calls this out explicitly: "the compiler must
//! know when scalars are powers of two to strength reduce division or
//! modulus (two relatively expensive operations on NVIDIA GPUs) to bit-wise
//! operations" (§2.4). That knowledge exists only when the operand was
//! specialized to a constant.

use ks_ir::{BinOp, Function, Inst, Operand, Ty};

fn pow2_exp(v: i64) -> Option<i64> {
    if v > 0 && (v & (v - 1)) == 0 {
        Some(v.trailing_zeros() as i64)
    } else {
        None
    }
}

/// One pass over the function; returns the number of reductions applied.
pub fn run(f: &mut Function) -> usize {
    let mut changed = 0;
    for b in &mut f.blocks {
        for i in &mut b.insts {
            let new = match &*i {
                // x * 2^k → x << k (valid for s32/u32 low-32 result).
                Inst::Bin {
                    op: BinOp::Mul,
                    ty: ty @ (Ty::S32 | Ty::U32),
                    dst,
                    a,
                    b: Operand::ImmI(v),
                } => pow2_exp(*v).map(|k| Inst::Bin {
                    op: BinOp::Shl,
                    ty: *ty,
                    dst: *dst,
                    a: *a,
                    b: Operand::ImmI(k),
                }),
                Inst::Bin {
                    op: BinOp::Mul,
                    ty: ty @ (Ty::S32 | Ty::U32),
                    dst,
                    a: Operand::ImmI(v),
                    b,
                } => pow2_exp(*v).map(|k| Inst::Bin {
                    op: BinOp::Shl,
                    ty: *ty,
                    dst: *dst,
                    a: *b,
                    b: Operand::ImmI(k),
                }),
                // Unsigned x / 2^k → x >> k.
                Inst::Bin {
                    op: BinOp::Div,
                    ty: Ty::U32,
                    dst,
                    a,
                    b: Operand::ImmI(v),
                } => pow2_exp(*v).map(|k| Inst::Bin {
                    op: BinOp::Shr,
                    ty: Ty::U32,
                    dst: *dst,
                    a: *a,
                    b: Operand::ImmI(k),
                }),
                // Unsigned x % 2^k → x & (2^k - 1).
                Inst::Bin {
                    op: BinOp::Rem,
                    ty: Ty::U32,
                    dst,
                    a,
                    b: Operand::ImmI(v),
                } => pow2_exp(*v).map(|_| Inst::Bin {
                    op: BinOp::And,
                    ty: Ty::U32,
                    dst: *dst,
                    a: *a,
                    b: Operand::ImmI(*v - 1),
                }),
                _ => None,
            };
            if let Some(n) = new {
                *i = n;
                changed += 1;
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use ks_ir::*;

    fn func_with(insts: Vec<Inst>, tys: Vec<Ty>) -> Function {
        Function {
            name: "t".into(),
            params: vec![],
            blocks: vec![BasicBlock {
                id: BlockId(0),
                insts,
                term: Terminator::Ret,
            }],
            vreg_types: tys,
            shared: vec![],
            local_bytes: 0,
        }
    }

    #[test]
    fn mul_pow2_becomes_shift() {
        let mut f = func_with(
            vec![Inst::Bin {
                op: BinOp::Mul,
                ty: Ty::S32,
                dst: VReg(0),
                a: Operand::Reg(VReg(1)),
                b: Operand::ImmI(128),
            }],
            vec![Ty::S32, Ty::S32],
        );
        assert_eq!(run(&mut f), 1);
        assert!(matches!(
            f.blocks[0].insts[0],
            Inst::Bin {
                op: BinOp::Shl,
                b: Operand::ImmI(7),
                ..
            }
        ));
    }

    #[test]
    fn unsigned_div_and_rem() {
        let mut f = func_with(
            vec![
                Inst::Bin {
                    op: BinOp::Div,
                    ty: Ty::U32,
                    dst: VReg(0),
                    a: Operand::Reg(VReg(1)),
                    b: Operand::ImmI(32),
                },
                Inst::Bin {
                    op: BinOp::Rem,
                    ty: Ty::U32,
                    dst: VReg(0),
                    a: Operand::Reg(VReg(1)),
                    b: Operand::ImmI(32),
                },
            ],
            vec![Ty::U32, Ty::U32],
        );
        assert_eq!(run(&mut f), 2);
        assert!(matches!(
            f.blocks[0].insts[0],
            Inst::Bin {
                op: BinOp::Shr,
                b: Operand::ImmI(5),
                ..
            }
        ));
        assert!(matches!(
            f.blocks[0].insts[1],
            Inst::Bin {
                op: BinOp::And,
                b: Operand::ImmI(31),
                ..
            }
        ));
    }

    #[test]
    fn signed_div_not_reduced() {
        // -7 / 2 == -3 but -7 >> 1 == -4: must not reduce signed division.
        let mut f = func_with(
            vec![Inst::Bin {
                op: BinOp::Div,
                ty: Ty::S32,
                dst: VReg(0),
                a: Operand::Reg(VReg(1)),
                b: Operand::ImmI(2),
            }],
            vec![Ty::S32, Ty::S32],
        );
        assert_eq!(run(&mut f), 0);
    }

    #[test]
    fn non_pow2_not_reduced() {
        let mut f = func_with(
            vec![Inst::Bin {
                op: BinOp::Mul,
                ty: Ty::U32,
                dst: VReg(0),
                a: Operand::Reg(VReg(1)),
                b: Operand::ImmI(48),
            }],
            vec![Ty::U32, Ty::U32],
        );
        assert_eq!(run(&mut f), 0);
    }

    #[test]
    fn dynamic_operand_not_reduced() {
        // The whole point: without specialization the divisor is a register
        // and the expensive div stays.
        let mut f = func_with(
            vec![Inst::Bin {
                op: BinOp::Div,
                ty: Ty::U32,
                dst: VReg(0),
                a: Operand::Reg(VReg(1)),
                b: Operand::Reg(VReg(2)),
            }],
            vec![Ty::U32, Ty::U32, Ty::U32],
        );
        assert_eq!(run(&mut f), 0);
    }
}
