//! GPU device models.
//!
//! Two presets mirror the dissertation's testbed (§6.1.1): a Tesla C1060
//! (compute capability 1.3, the GT200 generation) and a Tesla C2070
//! (compute capability 2.0, Fermi). Architectural parameters follow
//! Tables 2.1 and 2.2 of the dissertation plus the published board specs.

use ks_ir::{BinOp, Inst, Space, Ty, UnOp};

/// Static description of a simulated CUDA-capable GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceConfig {
    pub name: String,
    pub cc_major: u32,
    pub cc_minor: u32,
    /// Streaming multiprocessors.
    pub sm_count: u32,
    /// Shader clock in GHz.
    pub clock_ghz: f64,
    /// Scalar cores per SM (8 on CC 1.x, 32 on CC 2.0).
    pub cores_per_sm: u32,
    pub warp_size: u32,
    pub max_threads_per_block: u32,
    /// 32-bit registers per SM (Table 2.2: 64 KB ⇒ 16 K regs on CC 1.3,
    /// 128 KB ⇒ 32 K regs on CC 2.x).
    pub regs_per_sm: u32,
    /// Register allocation granularity (regs are allocated in these units).
    pub reg_alloc_unit: u32,
    /// Shared memory per SM in bytes.
    pub shared_per_sm: u32,
    /// Shared-memory allocation granularity in bytes.
    pub shared_alloc_unit: u32,
    pub shared_banks: u32,
    pub max_warps_per_sm: u32,
    pub max_blocks_per_sm: u32,
    /// Warp schedulers per SM (1 on CC 1.x, 2 on Fermi).
    pub schedulers_per_sm: u32,
    /// Global-memory latency in core cycles.
    pub mem_latency: u64,
    /// Aggregate off-chip bandwidth in GB/s.
    pub mem_bw_gbps: f64,
    /// Memory transaction segment size in bytes (64 on CC 1.3 per
    /// half-warp; 128-byte cache lines per warp on CC 2.x).
    pub mem_segment: u64,
    /// Whether global accesses are evaluated per half-warp (CC 1.x) or per
    /// full warp (CC 2.x).
    pub half_warp_coalescing: bool,
    /// 32-bit integer multiply is slow and `__mul24` fast (CC 1.x); the
    /// relation inverts on CC 2.x (§2.4).
    pub fast_mul24: bool,
    /// Constant memory size in bytes (64 KB on all CUDA GPUs).
    pub const_bytes: u32,
}

impl DeviceConfig {
    /// Tesla C1060: 30 SMs × 8 cores, 1.296 GHz, CC 1.3.
    pub fn tesla_c1060() -> DeviceConfig {
        DeviceConfig {
            name: "Tesla C1060".into(),
            cc_major: 1,
            cc_minor: 3,
            sm_count: 30,
            clock_ghz: 1.296,
            cores_per_sm: 8,
            warp_size: 32,
            max_threads_per_block: 512,
            regs_per_sm: 16 * 1024,
            reg_alloc_unit: 512,
            shared_per_sm: 16 * 1024,
            shared_alloc_unit: 512,
            shared_banks: 16,
            max_warps_per_sm: 32,
            max_blocks_per_sm: 8,
            schedulers_per_sm: 1,
            mem_latency: 520,
            mem_bw_gbps: 102.0,
            mem_segment: 64,
            half_warp_coalescing: true,
            fast_mul24: true,
            const_bytes: 64 * 1024,
        }
    }

    /// Tesla C2070: 14 SMs × 32 cores, 1.15 GHz, CC 2.0 (Fermi).
    pub fn tesla_c2070() -> DeviceConfig {
        DeviceConfig {
            name: "Tesla C2070".into(),
            cc_major: 2,
            cc_minor: 0,
            sm_count: 14,
            clock_ghz: 1.15,
            cores_per_sm: 32,
            warp_size: 32,
            max_threads_per_block: 1024,
            regs_per_sm: 32 * 1024,
            reg_alloc_unit: 64,
            shared_per_sm: 48 * 1024,
            shared_alloc_unit: 128,
            shared_banks: 32,
            max_warps_per_sm: 48,
            max_blocks_per_sm: 8,
            schedulers_per_sm: 2,
            mem_latency: 440,
            mem_bw_gbps: 144.0,
            mem_segment: 128,
            half_warp_coalescing: false,
            fast_mul24: false,
            const_bytes: 64 * 1024,
        }
    }

    /// Both presets, in the order the dissertation reports them.
    pub fn presets() -> Vec<DeviceConfig> {
        vec![DeviceConfig::tesla_c1060(), DeviceConfig::tesla_c2070()]
    }

    /// Cycles the scheduler is occupied issuing one instruction for a full
    /// warp (per scheduler).
    pub fn issue_cycles(&self, inst: &Inst) -> u64 {
        let base = (self.warp_size / self.cores_per_sm / self.schedulers_per_sm).max(1) as u64;
        let mult = match inst {
            Inst::Bin { op, ty, .. } => match (op, ty) {
                // 32-bit integer multiply: multi-instruction on CC 1.x.
                (BinOp::Mul, Ty::S32 | Ty::U32) if self.cc_major == 1 => 4,
                (BinOp::Mul24, _) if !self.fast_mul24 => 4, // emulated on Fermi
                (BinOp::Div | BinOp::Rem, Ty::S32 | Ty::U32) => 16,
                (BinOp::Div, Ty::F32) => 8,
                _ => 1,
            },
            Inst::Un {
                op: UnOp::Sqrt | UnOp::Rsqrt,
                ..
            } => 8,
            _ => 1,
        };
        base * mult
    }

    /// Result latency (producer → consumer) in cycles.
    pub fn dep_latency(&self, inst: &Inst) -> u64 {
        let alu = if self.cc_major == 1 { 24 } else { 18 };
        match inst {
            Inst::Ld { space, .. } => match space {
                Space::Global => self.mem_latency,
                // Non-scalarized local arrays live in local memory: raw
                // DRAM latency on CC 1.x; Fermi's L1 caches spills (§2.4's
                // changed memory hierarchy), so the round trip is cheaper
                // but still far from a register.
                Space::Local => {
                    if self.cc_major == 1 {
                        self.mem_latency
                    } else {
                        2 * alu + 4
                    }
                }
                Space::Shared => {
                    if self.cc_major == 1 {
                        alu
                    } else {
                        // Fermi shared throughput dropped relative to the
                        // register file (§2.4).
                        alu + 12
                    }
                }
                Space::Const => 8, // constant cache hit
                Space::Param => 8, // param space is cached like const
            },
            Inst::Bin { op, ty, .. } => match (op, ty) {
                (BinOp::Div | BinOp::Rem, Ty::S32 | Ty::U32) => 4 * alu,
                (BinOp::Div, Ty::F32) => 2 * alu,
                _ => alu,
            },
            Inst::Un {
                op: UnOp::Sqrt | UnOp::Rsqrt,
                ..
            } => 2 * alu,
            // Texture fetches are cached but still long-latency.
            Inst::Tex { .. } => self.mem_latency * 3 / 4,
            _ => alu,
        }
    }

    /// Off-chip bytes one SM can move per core cycle (bandwidth share).
    pub fn bytes_per_cycle_per_sm(&self) -> f64 {
        self.mem_bw_gbps * 1e9 / (self.clock_ghz * 1e9) / self.sm_count as f64
    }

    /// Theoretical single-precision FLOPS peak (MAD = 2 flops/core/cycle).
    pub fn peak_gflops(&self) -> f64 {
        self.sm_count as f64 * self.cores_per_sm as f64 * self.clock_ghz * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ks_ir::{Address, Operand, VReg};

    #[test]
    fn preset_sanity() {
        let c1060 = DeviceConfig::tesla_c1060();
        let c2070 = DeviceConfig::tesla_c2070();
        assert_eq!(c1060.regs_per_sm, 16384);
        assert_eq!(c2070.regs_per_sm, 32768);
        assert_eq!(c1060.max_threads_per_block, 512);
        assert_eq!(c2070.max_threads_per_block, 1024);
        assert!(c2070.peak_gflops() > c1060.peak_gflops());
        // C1060: 30*8*1.296*2 ≈ 622 GFLOPS; C2070: 14*32*1.15*2 ≈ 1030.
        assert!((c1060.peak_gflops() - 622.0).abs() < 1.0);
        assert!((c2070.peak_gflops() - 1030.4).abs() < 1.0);
    }

    #[test]
    fn mul24_throughput_inversion() {
        // §2.4: the relative throughput of `*` and `__mul24` inverted
        // between CC 1.3 and CC 2.0.
        let c1060 = DeviceConfig::tesla_c1060();
        let c2070 = DeviceConfig::tesla_c2070();
        let mul = Inst::Bin {
            op: BinOp::Mul,
            ty: Ty::S32,
            dst: VReg(0),
            a: Operand::ImmI(1),
            b: Operand::ImmI(1),
        };
        let mul24 = Inst::Bin {
            op: BinOp::Mul24,
            ty: Ty::S32,
            dst: VReg(0),
            a: Operand::ImmI(1),
            b: Operand::ImmI(1),
        };
        assert!(c1060.issue_cycles(&mul) > c1060.issue_cycles(&mul24));
        assert!(c2070.issue_cycles(&mul) < c2070.issue_cycles(&mul24));
    }

    #[test]
    fn local_memory_is_slow() {
        let d = DeviceConfig::tesla_c1060();
        let local = Inst::Ld {
            space: Space::Local,
            ty: Ty::F32,
            dst: VReg(0),
            addr: Address::abs(0),
        };
        let shared = Inst::Ld {
            space: Space::Shared,
            ty: Ty::F32,
            dst: VReg(0),
            addr: Address::abs(0),
        };
        assert!(d.dep_latency(&local) > 10 * d.dep_latency(&shared));
    }

    #[test]
    fn division_expensive() {
        let d = DeviceConfig::tesla_c2070();
        let div = Inst::Bin {
            op: BinOp::Div,
            ty: Ty::U32,
            dst: VReg(0),
            a: Operand::ImmI(1),
            b: Operand::ImmI(1),
        };
        let add = Inst::Bin {
            op: BinOp::Add,
            ty: Ty::U32,
            dst: VReg(0),
            a: Operand::ImmI(1),
            b: Operand::ImmI(1),
        };
        assert!(d.issue_cycles(&div) >= 8 * d.issue_cycles(&add));
    }
}
