//! Event-driven SM scheduler — the higher-fidelity timing mode.
//!
//! Where the default (hybrid) model times each warp in isolation and
//! assembles SM time analytically, this mode co-schedules every warp of an
//! SM's *resident block set* at instruction granularity: a greedy
//! event loop always advances the warp with the earliest clock, issue
//! ports (one per warp scheduler) serialize concurrent issue, and
//! barriers synchronize per block. Latency hiding across warps and blocks
//! therefore emerges from the schedule instead of from a max() formula.

use crate::device::DeviceConfig;
use crate::interp::{
    warp_step, BlockCtx, BlockState, ExecStats, GlobalView, SimError, StepOutcome, Warp,
};
use ks_ir::cfg::{ipdoms, Cfg};
use ks_ir::{BlockId, Function};

/// Result of simulating one SM round.
#[derive(Debug, Clone)]
pub struct SmRound {
    /// Cycles until the last resident warp retires.
    pub cycles: u64,
    /// Aggregated stats over the resident set.
    pub stats: ExecStats,
}

struct ResidentBlock {
    warps: Vec<Warp>,
    shared: Vec<u8>,
    bstate: BlockState,
    block_idx: (u32, u32, u32),
}

/// Execute a resident set of blocks on one SM, event-driven.
#[allow(clippy::too_many_arguments)]
pub fn run_sm_round(
    dev: &DeviceConfig,
    func: &Function,
    global: GlobalView,
    const_mem: &[u8],
    params: &[u8],
    block_dim: (u32, u32, u32),
    grid_dim: (u32, u32, u32),
    block_indices: &[(u32, u32, u32)],
    dynamic_shared: u32,
    tex_bindings: &[u64],
) -> Result<SmRound, SimError> {
    let cfg = Cfg::build(func);
    let pdom: Vec<Option<BlockId>> = ipdoms(func, &cfg);
    let threads = block_dim.0 * block_dim.1 * block_dim.2;
    let warp_count = threads.div_ceil(32);
    let nv = func.num_vregs();
    let shared_bytes = (func.shared_bytes() + dynamic_shared) as usize;

    let mut blocks: Vec<ResidentBlock> = block_indices
        .iter()
        .map(|&bi| ResidentBlock {
            warps: (0..warp_count)
                .map(|w| {
                    let base = w * 32;
                    Warp::new(base, (threads - base).min(32), nv, func.local_bytes, true)
                })
                .collect(),
            shared: vec![0u8; shared_bytes],
            bstate: BlockState::new(),
            block_idx: bi,
        })
        .collect();

    // One issue port per warp scheduler.
    let mut ports = vec![0u64; dev.schedulers_per_sm as usize];

    loop {
        // Find the runnable warp with the smallest clock.
        let mut pick: Option<(usize, usize, u64)> = None;
        for (bi, b) in blocks.iter().enumerate() {
            for (wi, w) in b.warps.iter().enumerate() {
                if !w.done && !w.at_barrier && pick.is_none_or(|(_, _, c)| w.clock < c) {
                    pick = Some((bi, wi, w.clock));
                }
            }
        }
        let Some((bi, wi, _)) = pick else {
            // No runnable warp: either everything is done, or some blocks
            // wait at barriers.
            let mut any_released = false;
            for b in blocks.iter_mut() {
                let alive = b.warps.iter().filter(|w| !w.done).count();
                let waiting = b.warps.iter().filter(|w| w.at_barrier).count();
                if alive > 0 && waiting == alive {
                    const BARRIER_COST: u64 = 40;
                    let release = b
                        .warps
                        .iter()
                        .filter(|w| w.at_barrier)
                        .map(|w| w.clock)
                        .max()
                        .unwrap();
                    for w in b.warps.iter_mut().filter(|w| w.at_barrier) {
                        w.at_barrier = false;
                        w.clock = w.clock.max(release) + BARRIER_COST;
                    }
                    any_released = true;
                }
            }
            if any_released {
                continue;
            }
            break; // all done
        };

        // Issue-port contention: the warp cannot issue before some port is
        // free.
        let port_i = ports
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            .map(|(i, _)| i)
            .unwrap();
        {
            let b = &mut blocks[bi];
            let w = &mut b.warps[wi];
            w.clock = w.clock.max(ports[port_i]);
            let ctx = BlockCtx {
                dev,
                func,
                global,
                const_mem,
                params,
                block_dim,
                grid_dim,
                block_idx: b.block_idx,
                dynamic_shared,
                timing: true,
                trace: false,
                tex_bindings,
                racecheck: false,
                strict_barriers: false,
            };
            match warp_step(&ctx, w, &pdom, &mut b.shared, &mut b.bstate)? {
                StepOutcome::Continue | StepOutcome::Barrier | StepOutcome::Done => (),
            };
            let (t_issue, issue) = w.last_issue;
            ports[port_i] = ports[port_i].max(t_issue) + issue.max(1);
        }
    }

    let mut stats = ExecStats::default();
    let mut cycles = 0u64;
    for b in &blocks {
        for w in &b.warps {
            stats.accumulate(&w.stats);
            cycles = cycles.max(w.clock);
        }
    }
    Ok(SmRound { cycles, stats })
}
