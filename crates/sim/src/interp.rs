//! Functional SIMT interpreter with integrated scoreboard timing.
//!
//! Warps execute in lockstep using the classic post-dominator
//! reconvergence stack (the same mechanism real NVIDIA hardware and
//! GPGPU-Sim use): a divergent branch pushes per-path frames whose masks
//! partition the warp; a frame pops when it reaches its reconvergence
//! block (the branch's immediate post-dominator).
//!
//! Timing is collected per warp with a register scoreboard: each virtual
//! register carries a ready-time, so independent instructions issue
//! back-to-back (ILP — this is what makes register blocking pay off) while
//! dependent chains stall for the producer's latency.

// Lockstep lane loops index fixed 32-wide arrays by lane id on purpose;
// iterator adapters would obscure the SIMT structure.
#![allow(clippy::needless_range_loop)]

use crate::device::DeviceConfig;
use crate::mem::{bank_conflict_degree, coalesce_transactions, GLOBAL_BASE};
use ks_ir::cfg::{ipdoms, Cfg};
use ks_ir::{
    Address, BinOp, BlockId, CmpOp, Function, Inst, Operand, Space, SpecialReg, Terminator, Ty,
    UnOp,
};

/// A simulation trap (the analogue of a CUDA launch error).
#[derive(Debug, Clone, PartialEq)]
pub struct SimError(pub String);

impl SimError {
    /// True for errors a launch retry may clear — currently the
    /// injected device faults `ks_fault` marks `(transient, …)`.
    /// Genuine simulation traps (bad kernels, OOB accesses) are
    /// deterministic and never transient.
    pub fn is_transient(&self) -> bool {
        self.0.contains("(transient")
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "simulation trap: {}", self.0)
    }
}

impl std::error::Error for SimError {}

/// Unsafe shared view of global memory, allowing data-race-free thread
/// blocks to execute in parallel (mirroring real GPU semantics: racy
/// kernels are undefined behaviour there too).
#[derive(Clone, Copy)]
pub struct GlobalView {
    base: *mut u8,
    len: usize,
}

unsafe impl Send for GlobalView {}
unsafe impl Sync for GlobalView {}

impl GlobalView {
    /// Create from an exclusive borrow; the borrow guarantees no host-side
    /// aliasing while kernels run.
    pub fn new(data: &mut [u8]) -> GlobalView {
        GlobalView {
            base: data.as_mut_ptr(),
            len: data.len(),
        }
    }

    #[inline]
    fn check(&self, addr: u64) -> Result<usize, SimError> {
        if addr < GLOBAL_BASE {
            return Err(SimError(format!("global access below heap at {addr:#x}")));
        }
        let off = (addr - GLOBAL_BASE) as usize;
        if off + 4 > self.len {
            return Err(SimError(format!(
                "global access out of bounds at {addr:#x}"
            )));
        }
        if !addr.is_multiple_of(4) {
            return Err(SimError(format!("misaligned global access at {addr:#x}")));
        }
        Ok(off)
    }

    #[inline]
    fn read_u32(&self, addr: u64) -> Result<u32, SimError> {
        let off = self.check(addr)?;
        // SAFETY: bounds checked above; concurrent access requires the
        // kernel itself to be data-race-free (GPU contract).
        unsafe {
            let p = self.base.add(off) as *const u32;
            Ok(p.read_unaligned())
        }
    }

    #[inline]
    fn write_u32(&self, addr: u64, v: u32) -> Result<(), SimError> {
        let off = self.check(addr)?;
        unsafe {
            let p = self.base.add(off) as *mut u32;
            p.write_unaligned(v);
        }
        Ok(())
    }
}

/// Dynamic-instruction statistics for a block (or aggregated launch).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExecStats {
    pub dyn_insts: u64,
    pub alu: u64,
    pub mul: u64,
    pub div_sqrt: u64,
    pub global_loads: u64,
    pub global_stores: u64,
    pub global_transactions: u64,
    pub global_bytes: u64,
    pub shared_accesses: u64,
    pub bank_conflict_extra: u64,
    pub local_accesses: u64,
    pub const_loads: u64,
    pub param_loads: u64,
    pub branches: u64,
    pub divergent_branches: u64,
    pub barriers: u64,
    /// Scheduler-busy cycles summed over warps.
    pub issue_cycles: u64,
    /// Critical-path cycles: max over warps of the scoreboard clock.
    pub isolated_cycles: u64,
    /// Device address of the first global store this block executed
    /// (0 = none; the global heap starts above 0, so 0 is free as a
    /// sentinel). With `last_store_addr`, this gives a launch two
    /// known-written output words — where an injected silent bit flip
    /// can land without ever touching an input-only buffer.
    pub first_store_addr: u64,
    /// Device address of the most recent global store (0 = none).
    pub last_store_addr: u64,
}

impl ExecStats {
    pub fn accumulate(&mut self, o: &ExecStats) {
        self.dyn_insts += o.dyn_insts;
        self.alu += o.alu;
        self.mul += o.mul;
        self.div_sqrt += o.div_sqrt;
        self.global_loads += o.global_loads;
        self.global_stores += o.global_stores;
        self.global_transactions += o.global_transactions;
        self.global_bytes += o.global_bytes;
        self.shared_accesses += o.shared_accesses;
        self.bank_conflict_extra += o.bank_conflict_extra;
        self.local_accesses += o.local_accesses;
        self.const_loads += o.const_loads;
        self.param_loads += o.param_loads;
        self.branches += o.branches;
        self.divergent_branches += o.divergent_branches;
        self.barriers += o.barriers;
        self.issue_cycles += o.issue_cycles;
        self.isolated_cycles = self.isolated_cycles.max(o.isolated_cycles);
        if self.first_store_addr == 0 {
            self.first_store_addr = o.first_store_addr;
        }
        if o.last_store_addr != 0 {
            self.last_store_addr = o.last_store_addr;
        }
    }
}

/// A reconvergence-stack frame.
#[derive(Debug, Clone)]
struct Frame {
    block: BlockId,
    inst: usize,
    reconv: Option<BlockId>,
    mask: u32,
}

/// Why a warp stopped executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WarpStop {
    Done,
    Barrier,
}

/// Outcome of a single-instruction step (event-driven scheduling).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StepOutcome {
    Continue,
    Barrier,
    Done,
}

pub(crate) struct Warp {
    /// First linear thread id covered by this warp.
    base_tid: u32,
    regs: Vec<u64>,
    stack: Vec<Frame>,
    pub(crate) done: bool,
    pub(crate) at_barrier: bool,
    pub(crate) clock: u64,
    reg_ready: Vec<u64>,
    /// Earliest time a load from each space can observe prior stores
    /// (store-to-load forwarding; conservative, all-addresses-alias).
    /// Indexed by [global, shared, local].
    store_ready: [u64; 3],
    pub(crate) stats: ExecStats,
    local: Vec<u8>,
    /// (issue time, issue cycles) of the most recent instruction — used by
    /// the event scheduler's issue-port model.
    pub(crate) last_issue: (u64, u64),
}

impl Warp {
    pub(crate) fn new(
        base_tid: u32,
        lanes: u32,
        nv: usize,
        local_bytes: u32,
        timing: bool,
    ) -> Warp {
        let full_mask = if lanes == 32 {
            u32::MAX
        } else {
            (1u32 << lanes) - 1
        };
        Warp {
            base_tid,
            regs: vec![0u64; nv * 32],
            stack: vec![Frame {
                block: BlockId(0),
                inst: 0,
                reconv: None,
                mask: full_mask,
            }],
            done: false,
            at_barrier: false,
            clock: 0,
            reg_ready: vec![0u64; if timing { nv } else { 0 }],
            store_ready: [0; 3],
            stats: ExecStats::default(),
            local: vec![0u8; (local_bytes as usize) * 32],
            last_issue: (0, 0),
        }
    }
}

/// Everything needed to run one thread block.
pub struct BlockCtx<'a> {
    pub dev: &'a DeviceConfig,
    pub func: &'a Function,
    pub global: GlobalView,
    pub const_mem: &'a [u8],
    pub params: &'a [u8],
    /// Device base address bound to each module texture reference
    /// (indexed by `Inst::Tex.tex`).
    pub tex_bindings: &'a [u64],
    pub block_dim: (u32, u32, u32),
    pub grid_dim: (u32, u32, u32),
    pub block_idx: (u32, u32, u32),
    pub dynamic_shared: u32,
    /// Collect scoreboard timing (slightly slower).
    pub timing: bool,
    /// Print a per-instruction issue trace for warp 0 (debugging).
    pub trace: bool,
    /// Track per-word shared-memory access sets between barriers and fail
    /// on cross-warp hazards (`LaunchOptions::racecheck`).
    pub racecheck: bool,
    /// Reject barriers that only part of the block reaches — threads that
    /// returned while others wait — instead of releasing the stragglers
    /// (`LaunchOptions::strict_barriers`).
    pub strict_barriers: bool,
}

fn sext32(v: u32) -> u64 {
    v as i32 as i64 as u64
}

/// Execute one thread block to completion. Returns aggregated stats.
pub fn run_block(ctx: &BlockCtx<'_>) -> Result<ExecStats, SimError> {
    let f = ctx.func;
    let cfg = Cfg::build(f);
    let pdom = ipdoms(f, &cfg);
    run_block_with(ctx, &cfg, &pdom)
}

/// Execute one block with precomputed CFG analyses (hot path for launches).
pub struct BlockState {
    seen_lines: std::collections::HashSet<u64>,
    /// Shared-memory race tracker, present when the launch asked for
    /// racecheck instrumentation.
    pub(crate) shmem: Option<crate::racecheck::ShmemTracker>,
}

impl BlockState {
    pub fn new() -> BlockState {
        BlockState {
            seen_lines: std::collections::HashSet::new(),
            shmem: None,
        }
    }

    pub fn for_ctx(ctx: &BlockCtx<'_>) -> BlockState {
        BlockState {
            seen_lines: std::collections::HashSet::new(),
            shmem: ctx.racecheck.then(crate::racecheck::ShmemTracker::new),
        }
    }
}

impl Default for BlockState {
    fn default() -> Self {
        BlockState::new()
    }
}

/// Execute one block with precomputed CFG analyses (hot path for launches).
pub fn run_block_with(
    ctx: &BlockCtx<'_>,
    _cfg: &Cfg,
    pdom: &[Option<BlockId>],
) -> Result<ExecStats, SimError> {
    let f = ctx.func;
    let (bx, by, bz) = ctx.block_dim;
    let threads = bx * by * bz;
    if threads == 0 {
        return Err(SimError("empty thread block".into()));
    }
    if threads > ctx.dev.max_threads_per_block {
        return Err(SimError(format!(
            "block of {threads} threads exceeds device limit {}",
            ctx.dev.max_threads_per_block
        )));
    }
    let nv = f.num_vregs();
    let shared_bytes = f.shared_bytes() + ctx.dynamic_shared;
    let mut shared = vec![0u8; shared_bytes as usize];

    let mut bstate = BlockState::for_ctx(ctx);
    let warp_count = threads.div_ceil(32);
    let mut warps: Vec<Warp> = (0..warp_count)
        .map(|w| {
            let base_tid = w * 32;
            let lanes = (threads - base_tid).min(32);
            Warp::new(base_tid, lanes, nv, f.local_bytes, ctx.timing)
        })
        .collect();

    // Round-robin warps between barriers.
    loop {
        let mut all_done = true;
        let mut any_progress = false;
        for w in warps.iter_mut() {
            if w.done || w.at_barrier {
                all_done &= w.done;
                continue;
            }
            all_done = false;
            any_progress = true;
            match exec_warp(ctx, w, pdom, &mut shared, &mut bstate)? {
                WarpStop::Done => w.done = true,
                WarpStop::Barrier => w.at_barrier = true,
            }
        }
        if all_done {
            break;
        }
        if !any_progress {
            // Everyone alive is at a barrier: release it. Beyond syncing
            // the clocks, a barrier costs a drain/notify latency on real
            // hardware (~tens of cycles).
            if ctx.strict_barriers && warps.iter().any(|w| w.done) {
                let waiting = warps.iter().filter(|w| w.at_barrier).count();
                let exited = warps.iter().filter(|w| w.done).count();
                return Err(SimError(format!(
                    "divergent barrier: {exited} warp(s) returned while {waiting} \
                     warp(s) wait at __syncthreads() — on hardware the block hangs"
                )));
            }
            // A full barrier orders all shared-memory accesses before it.
            if let Some(tr) = bstate.shmem.as_mut() {
                tr.barrier();
            }
            const BARRIER_COST: u64 = 40;
            let release_clock = warps
                .iter()
                .filter(|w| w.at_barrier)
                .map(|w| w.clock)
                .max()
                .unwrap_or(0);
            let mut any = false;
            for w in warps.iter_mut() {
                if w.at_barrier {
                    w.at_barrier = false;
                    w.clock =
                        w.clock.max(release_clock) + if ctx.timing { BARRIER_COST } else { 0 };
                    any = true;
                }
            }
            if !any {
                return Err(SimError("scheduler deadlock (barrier mismatch)".into()));
            }
        }
    }

    let mut total = ExecStats::default();
    for w in &warps {
        total.accumulate(&w.stats);
    }
    Ok(total)
}

/// Execute a warp until it finishes or reaches a barrier.
fn exec_warp(
    ctx: &BlockCtx<'_>,
    w: &mut Warp,
    pdom: &[Option<BlockId>],
    shared: &mut [u8],
    bstate: &mut BlockState,
) -> Result<WarpStop, SimError> {
    let mut steps: u64 = 0;
    const STEP_LIMIT: u64 = 2_000_000_000;
    loop {
        steps += 1;
        if steps > STEP_LIMIT {
            return Err(SimError("kernel exceeded dynamic instruction limit".into()));
        }
        match warp_step(ctx, w, pdom, shared, bstate)? {
            StepOutcome::Continue => {}
            StepOutcome::Barrier => return Ok(WarpStop::Barrier),
            StepOutcome::Done => return Ok(WarpStop::Done),
        }
    }
}

/// Execute at most one instruction (or one terminator / reconvergence pop)
/// of a warp. The event scheduler interleaves warps at this granularity.
pub(crate) fn warp_step(
    ctx: &BlockCtx<'_>,
    w: &mut Warp,
    pdom: &[Option<BlockId>],
    shared: &mut [u8],
    bstate: &mut BlockState,
) -> Result<StepOutcome, SimError> {
    let f = ctx.func;
    // Pop any frames already sitting at their reconvergence point, then
    // execute exactly one instruction or terminator.
    loop {
        let Some(frame) = w.stack.last() else {
            w.done = true;
            return Ok(StepOutcome::Done);
        };
        // Pop frames that reached their reconvergence point.
        if frame.inst == 0 && Some(frame.block) == frame.reconv {
            w.stack.pop();
            continue;
        }
        let (block, inst_idx, mask) = (frame.block, frame.inst, frame.mask);
        let bb = f.block(block);
        if inst_idx < bb.insts.len() {
            let inst = &bb.insts[inst_idx];
            w.stack.last_mut().unwrap().inst += 1;
            if let Inst::Bar = inst {
                w.stats.barriers += 1;
                w.stats.dyn_insts += 1;
                if ctx.timing {
                    // Pipeline bubble while the warp parks at the barrier.
                    w.clock += 8;
                    w.stats.issue_cycles += 8;
                }
                if w.stack.len() > 1 {
                    return Err(SimError("__syncthreads() in divergent control flow".into()));
                }
                w.at_barrier = true;
                return Ok(StepOutcome::Barrier);
            }
            exec_inst(ctx, w, inst, mask, shared, bstate)?;
            return Ok(StepOutcome::Continue);
        }
        // Terminator.
        w.stack.last_mut().unwrap().inst = usize::MAX; // consumed; reset on branch
        match &bb.term {
            Terminator::Ret => {
                if w.stack.len() > 1 {
                    return Err(SimError(
                        "divergent return (should reconverge first)".into(),
                    ));
                }
                if ctx.timing {
                    w.stats.isolated_cycles = w.clock;
                }
                w.done = true;
                return Ok(StepOutcome::Done);
            }
            Terminator::Br { target } => {
                w.stats.branches += 1;
                w.stats.dyn_insts += 1;
                if ctx.timing {
                    w.last_issue = (w.clock, 1);
                    w.clock += 1;
                }
                let fr = w.stack.last_mut().unwrap();
                fr.block = *target;
                fr.inst = 0;
                return Ok(StepOutcome::Continue);
            }
            Terminator::CondBr {
                pred,
                negate,
                then_t,
                else_t,
            } => {
                w.stats.branches += 1;
                w.stats.dyn_insts += 1;
                if ctx.timing {
                    let ready = w.reg_ready[pred.0 as usize];
                    let t = w.clock.max(ready);
                    w.last_issue = (t, 1);
                    w.clock = t + 1;
                }
                let mut taken = 0u32;
                for lane in 0..32 {
                    if mask & (1 << lane) != 0 {
                        let v = w.regs[pred.0 as usize * 32 + lane] != 0;
                        if v ^ negate {
                            taken |= 1 << lane;
                        }
                    }
                }
                let not_taken = mask & !taken;
                let fr = w.stack.last_mut().unwrap();
                if not_taken == 0 {
                    fr.block = *then_t;
                    fr.inst = 0;
                } else if taken == 0 {
                    fr.block = *else_t;
                    fr.inst = 0;
                } else {
                    // Divergence: current frame becomes the reconvergence
                    // continuation; push else then then (then runs first).
                    w.stats.divergent_branches += 1;
                    let reconv = pdom[block.0 as usize];
                    let Some(r) = reconv else {
                        return Err(SimError(format!(
                            "divergent branch in {} without a reconvergence point",
                            block
                        )));
                    };
                    fr.block = r;
                    fr.inst = 0;
                    let parent_reconv = fr.reconv;
                    // If the reconvergence point of the parent equals r the
                    // parent frame will pop right after.
                    let _ = parent_reconv;
                    w.stack.push(Frame {
                        block: *else_t,
                        inst: 0,
                        reconv: Some(r),
                        mask: not_taken,
                    });
                    w.stack.push(Frame {
                        block: *then_t,
                        inst: 0,
                        reconv: Some(r),
                        mask: taken,
                    });
                }
                return Ok(StepOutcome::Continue);
            }
        }
    }
}

#[inline]
fn operand_bits(w: &Warp, o: &Operand, lane: usize) -> u64 {
    match o {
        Operand::Reg(r) => w.regs[r.0 as usize * 32 + lane],
        Operand::ImmI(v) => *v as u64,
        Operand::ImmF(v) => v.to_bits() as u64,
    }
}

#[inline]
fn src_ready(w: &Warp, o: &Operand) -> u64 {
    match o {
        Operand::Reg(r) => w.reg_ready[r.0 as usize],
        _ => 0,
    }
}

fn exec_inst(
    ctx: &BlockCtx<'_>,
    w: &mut Warp,
    inst: &Inst,
    mask: u32,
    shared: &mut [u8],
    bstate: &mut BlockState,
) -> Result<(), SimError> {
    w.stats.dyn_insts += 1;
    // ---- timing: issue + dependencies ----
    let mut issue_extra: u64 = 0; // bank-conflict replays
    let mut latency_extra: u64 = 0; // uncoalesced serialization
    let pre_clock = w.clock;
    if ctx.timing {
        let mut ready = w.clock;
        inst.for_each_use(|r| {
            ready = ready.max(w.reg_ready[r.0 as usize]);
        });
        // Store-to-load forwarding: a load cannot complete before earlier
        // stores to the same space are visible. This is what makes
        // run-time-evaluated register blocking (accumulators spilled to
        // local memory) pay the full memory round-trip per update.
        if let Inst::Ld { space, .. } = inst {
            let idx = match space {
                Space::Global => Some(0),
                Space::Shared => Some(1),
                Space::Local => Some(2),
                _ => None,
            };
            if let Some(i) = idx {
                ready = ready.max(w.store_ready[i]);
            }
        }
        w.clock = ready;
    }

    // ---- functional execution ----
    match inst {
        Inst::Mov { dst, src, .. } => {
            for lane in 0..32 {
                if mask & (1 << lane) != 0 {
                    w.regs[dst.0 as usize * 32 + lane] = operand_bits(w, src, lane);
                }
            }
            w.stats.alu += 1;
        }
        Inst::Special { dst, reg } => {
            let (bxd, byd, _bzd) = ctx.block_dim;
            let (gx, gy, gz) = ctx.grid_dim;
            let (cx, cy, cz) = ctx.block_idx;
            for lane in 0..32 {
                if mask & (1 << lane) != 0 {
                    let tid = w.base_tid + lane as u32;
                    let tx = tid % bxd;
                    let ty = (tid / bxd) % byd;
                    let tz = tid / (bxd * byd);
                    let v = match reg {
                        SpecialReg::TidX => tx,
                        SpecialReg::TidY => ty,
                        SpecialReg::TidZ => tz,
                        SpecialReg::CtaIdX => cx,
                        SpecialReg::CtaIdY => cy,
                        SpecialReg::CtaIdZ => cz,
                        SpecialReg::NtidX => bxd,
                        SpecialReg::NtidY => byd,
                        SpecialReg::NtidZ => ctx.block_dim.2,
                        SpecialReg::NctaIdX => gx,
                        SpecialReg::NctaIdY => gy,
                        SpecialReg::NctaIdZ => gz,
                    };
                    w.regs[dst.0 as usize * 32 + lane] = v as u64;
                }
            }
            w.stats.alu += 1;
        }
        Inst::Bin { op, ty, dst, a, b } => {
            for lane in 0..32 {
                if mask & (1 << lane) != 0 {
                    let x = operand_bits(w, a, lane);
                    let y = operand_bits(w, b, lane);
                    let r = eval_bin(*op, *ty, x, y)?;
                    w.regs[dst.0 as usize * 32 + lane] = r;
                }
            }
            match (op, ty) {
                (BinOp::Div | BinOp::Rem, _) => w.stats.div_sqrt += 1,
                (BinOp::Mul | BinOp::Mul24, _) => w.stats.mul += 1,
                _ => w.stats.alu += 1,
            }
        }
        Inst::Un { op, ty, dst, a } => {
            for lane in 0..32 {
                if mask & (1 << lane) != 0 {
                    let x = operand_bits(w, a, lane);
                    let r = eval_un(*op, *ty, x);
                    w.regs[dst.0 as usize * 32 + lane] = r;
                }
            }
            match op {
                UnOp::Sqrt | UnOp::Rsqrt => w.stats.div_sqrt += 1,
                _ => w.stats.alu += 1,
            }
        }
        Inst::Mad { ty, dst, a, b, c } => {
            for lane in 0..32 {
                if mask & (1 << lane) != 0 {
                    let x = operand_bits(w, a, lane);
                    let y = operand_bits(w, b, lane);
                    let z = operand_bits(w, c, lane);
                    let xy = eval_bin(BinOp::Mul, *ty, x, y)?;
                    let r = eval_bin(BinOp::Add, *ty, xy, z)?;
                    w.regs[dst.0 as usize * 32 + lane] = r;
                }
            }
            w.stats.mul += 1;
        }
        Inst::Setp { cmp, ty, dst, a, b } => {
            for lane in 0..32 {
                if mask & (1 << lane) != 0 {
                    let x = operand_bits(w, a, lane);
                    let y = operand_bits(w, b, lane);
                    let r = eval_cmp(*cmp, *ty, x, y);
                    w.regs[dst.0 as usize * 32 + lane] = u64::from(r);
                }
            }
            w.stats.alu += 1;
        }
        Inst::Selp {
            dst, a, b, pred, ..
        } => {
            for lane in 0..32 {
                if mask & (1 << lane) != 0 {
                    let p = w.regs[pred.0 as usize * 32 + lane] != 0;
                    let v = if p {
                        operand_bits(w, a, lane)
                    } else {
                        operand_bits(w, b, lane)
                    };
                    w.regs[dst.0 as usize * 32 + lane] = v;
                }
            }
            w.stats.alu += 1;
        }
        Inst::Cvt {
            dst_ty,
            src_ty,
            dst,
            src,
        } => {
            for lane in 0..32 {
                if mask & (1 << lane) != 0 {
                    let x = operand_bits(w, src, lane);
                    w.regs[dst.0 as usize * 32 + lane] = eval_cvt(*dst_ty, *src_ty, x);
                }
            }
            w.stats.alu += 1;
        }
        Inst::Ld {
            space,
            ty,
            dst,
            addr,
        } => {
            let addrs = lane_addresses(w, addr, mask);
            match space {
                Space::Global => {
                    let t = coalesce_transactions(ctx.dev, &addrs, mask) as u64;
                    w.stats.global_loads += 1;
                    w.stats.global_transactions += t;
                    // DRAM bandwidth is charged once per line per block;
                    // re-reads hit the read cache (texture / L1).
                    let mut fresh = 0u64;
                    for lane in 0..32 {
                        if mask & (1 << lane) != 0 {
                            let line = addrs[lane] / ctx.dev.mem_segment;
                            if bstate.seen_lines.insert(line) {
                                fresh += 1;
                            }
                        }
                    }
                    w.stats.global_bytes += fresh * ctx.dev.mem_segment;
                    latency_extra = t.saturating_sub(1) * 24;
                    for lane in 0..32 {
                        if mask & (1 << lane) != 0 {
                            let v = ctx.global.read_u32(addrs[lane])?;
                            w.regs[dst.0 as usize * 32 + lane] = load_extend(*ty, v);
                        }
                    }
                }
                Space::Shared => {
                    let d = bank_conflict_degree(ctx.dev, &addrs, mask) as u64;
                    w.stats.shared_accesses += 1;
                    w.stats.bank_conflict_extra += d - 1;
                    issue_extra = d - 1;
                    for lane in 0..32 {
                        if mask & (1 << lane) != 0 {
                            if let Some(tr) = bstate.shmem.as_mut() {
                                if let Some(h) = tr.read(w.base_tid / 32, addrs[lane] & !3) {
                                    return Err(SimError(format!("racecheck: {h}")));
                                }
                            }
                            let v = read_buf(shared, addrs[lane], "shared")?;
                            w.regs[dst.0 as usize * 32 + lane] = load_extend(*ty, v);
                        }
                    }
                }
                Space::Local => {
                    w.stats.local_accesses += 1;
                    let lb = ctx.func.local_bytes as u64;
                    charge_local_traffic(ctx, w, bstate, &addrs, mask, lb);
                    for lane in 0..32 {
                        if mask & (1 << lane) != 0 {
                            let a = addrs[lane] + lane as u64 * lb;
                            let v = read_buf(&w.local, a, "local")?;
                            w.regs[dst.0 as usize * 32 + lane] = load_extend(*ty, v);
                        }
                    }
                }
                Space::Const => {
                    w.stats.const_loads += 1;
                    // The constant cache broadcasts one address per cycle:
                    // lanes reading distinct addresses serialize.
                    let mut distinct: Vec<u64> = Vec::with_capacity(4);
                    for lane in 0..32 {
                        if mask & (1 << lane) != 0 {
                            let a = addrs[lane];
                            if !distinct.contains(&a) {
                                distinct.push(a);
                            }
                            let v = read_buf(ctx.const_mem, a, "const")?;
                            w.regs[dst.0 as usize * 32 + lane] = load_extend(*ty, v);
                        }
                    }
                    issue_extra = (distinct.len() as u64).saturating_sub(1);
                }
                Space::Param => {
                    w.stats.param_loads += 1;
                    for lane in 0..32 {
                        if mask & (1 << lane) != 0 {
                            let a = addrs[lane];
                            let v: u64 =
                                if *ty == Ty::Ptr(Space::Global) || matches!(ty, Ty::Ptr(_)) {
                                    read_buf64(ctx.params, a)?
                                } else {
                                    load_extend(*ty, read_buf(ctx.params, a, "param")?)
                                };
                            w.regs[dst.0 as usize * 32 + lane] = v;
                        }
                    }
                }
            }
        }
        Inst::St {
            space,
            ty,
            addr,
            src,
        } => {
            let addrs = lane_addresses(w, addr, mask);
            match space {
                Space::Global => {
                    let t = coalesce_transactions(ctx.dev, &addrs, mask) as u64;
                    w.stats.global_stores += 1;
                    w.stats.global_transactions += t;
                    w.stats.global_bytes += t * ctx.dev.mem_segment;
                    for lane in 0..32 {
                        if mask & (1 << lane) != 0 {
                            let v = store_bits(*ty, operand_bits(w, src, lane));
                            ctx.global.write_u32(addrs[lane], v)?;
                            if w.stats.first_store_addr == 0 {
                                w.stats.first_store_addr = addrs[lane];
                            }
                            w.stats.last_store_addr = addrs[lane];
                        }
                    }
                }
                Space::Shared => {
                    let d = bank_conflict_degree(ctx.dev, &addrs, mask) as u64;
                    w.stats.shared_accesses += 1;
                    w.stats.bank_conflict_extra += d - 1;
                    issue_extra = d - 1;
                    for lane in 0..32 {
                        if mask & (1 << lane) != 0 {
                            if let Some(tr) = bstate.shmem.as_mut() {
                                if let Some(h) = tr.write(w.base_tid / 32, addrs[lane] & !3) {
                                    return Err(SimError(format!("racecheck: {h}")));
                                }
                            }
                            let v = store_bits(*ty, operand_bits(w, src, lane));
                            write_buf(shared, addrs[lane], v, "shared")?;
                        }
                    }
                }
                Space::Local => {
                    w.stats.local_accesses += 1;
                    let lb = ctx.func.local_bytes as u64;
                    charge_local_traffic(ctx, w, bstate, &addrs, mask, lb);
                    for lane in 0..32 {
                        if mask & (1 << lane) != 0 {
                            let a = addrs[lane] + lane as u64 * lb;
                            let v = store_bits(*ty, operand_bits(w, src, lane));
                            write_buf(&mut w.local, a, v, "local")?;
                        }
                    }
                }
                Space::Const | Space::Param => {
                    return Err(SimError("store to read-only space".into()));
                }
            }
        }
        Inst::Tex { ty, dst, tex, idx } => {
            let base = *ctx
                .tex_bindings
                .get(*tex as usize)
                .ok_or_else(|| SimError(format!("texture {tex} not bound")))?;
            if base == 0 {
                return Err(SimError(format!("texture {tex} not bound")));
            }
            // Element addresses per lane; fetches run through the texture
            // cache (the per-block reuse set) like any cached global read.
            let mut addrs = [0u64; 32];
            for lane in 0..32 {
                if mask & (1 << lane) != 0 {
                    let i = operand_bits(w, idx, lane) as u32 as i32;
                    if i < 0 {
                        return Err(SimError("negative texture index".into()));
                    }
                    addrs[lane] = base + i as u64 * 4;
                }
            }
            let t = coalesce_transactions(ctx.dev, &addrs, mask) as u64;
            w.stats.global_loads += 1;
            w.stats.global_transactions += t;
            let mut fresh = 0u64;
            for lane in 0..32 {
                if mask & (1 << lane) != 0 {
                    let line = addrs[lane] / ctx.dev.mem_segment;
                    if bstate.seen_lines.insert(line) {
                        fresh += 1;
                    }
                }
            }
            w.stats.global_bytes += fresh * ctx.dev.mem_segment;
            latency_extra = t.saturating_sub(1) * 24;
            for lane in 0..32 {
                if mask & (1 << lane) != 0 {
                    let v = ctx.global.read_u32(addrs[lane])?;
                    w.regs[dst.0 as usize * 32 + lane] = load_extend(*ty, v);
                }
            }
        }
        Inst::Bar => unreachable!("handled by the warp loop"),
    }

    // ---- timing: charge issue + set destination ready time ----
    if ctx.timing {
        let issue = ctx.dev.issue_cycles(inst) * (1 + issue_extra);
        let t_issue = w.clock;
        w.last_issue = (t_issue, issue);
        if ctx.trace && w.base_tid == 0 {
            eprintln!(
                "[trace] t={:6} stall={:5} {}",
                t_issue,
                t_issue.saturating_sub(pre_clock),
                ks_ir::printer::print_inst(inst)
            );
        }
        w.clock = t_issue + issue;
        w.stats.issue_cycles += issue;
        if let Some(d) = inst.def() {
            let lat = ctx.dev.dep_latency(inst) + latency_extra;
            w.reg_ready[d.0 as usize] = t_issue + lat;
        }
        if let Inst::St {
            space,
            ty,
            addr,
            src,
        } = inst
        {
            // A later load sees this store once it completes; forward
            // latency mirrors a load from the same space.
            let probe = Inst::Ld {
                space: *space,
                ty: *ty,
                dst: ks_ir::VReg(0),
                addr: *addr,
            };
            let lat = ctx.dev.dep_latency(&probe);
            let idx = match space {
                Space::Global => Some(0),
                Space::Shared => Some(1),
                Space::Local => Some(2),
                _ => None,
            };
            if let Some(i) = idx {
                w.store_ready[i] = w.store_ready[i].max(t_issue + lat);
            }
            let _ = src;
        }
        // Stores must have source operands ready (already folded into
        // w.clock by the dependency max at entry).
        let _ = src_ready;
        w.stats.isolated_cycles = w.stats.isolated_cycles.max(w.clock);
    }
    Ok(())
}

/// Local memory lives in DRAM. A warp access to the same local offset is
/// hardware-interleaved into one or two segments' worth of traffic. On
/// CC 1.x there is no cache in front of it; Fermi's L1 absorbs re-touches
/// (modeled with the per-block reuse set, namespaced away from global
/// lines).
fn charge_local_traffic(
    ctx: &BlockCtx<'_>,
    w: &mut Warp,
    bstate: &mut BlockState,
    addrs: &[u64; 32],
    mask: u32,
    lane_stride: u64,
) {
    const LOCAL_NS: u64 = 1 << 60;
    let lanes = mask.count_ones() as u64;
    if lanes == 0 {
        return;
    }
    // Interleaved layout: a full-warp access to one 4-byte slot moves
    // lanes*4 bytes of DRAM traffic.
    let bytes = lanes * 4;
    let segs = bytes.div_ceil(ctx.dev.mem_segment).max(1);
    if ctx.dev.cc_major >= 2 {
        // L1-cached: first touch per (warp, offset-line) only.
        let line = LOCAL_NS
            + (w.base_tid as u64) * (1 << 40)
            + (addrs.iter().max().copied().unwrap_or(0) + lane_stride) / ctx.dev.mem_segment;
        if bstate.seen_lines.insert(line) {
            w.stats.global_bytes += segs * ctx.dev.mem_segment;
            w.stats.global_transactions += segs;
        }
    } else {
        w.stats.global_bytes += segs * ctx.dev.mem_segment;
        w.stats.global_transactions += segs;
    }
}

#[inline]
fn lane_addresses(w: &Warp, addr: &Address, mask: u32) -> [u64; 32] {
    let mut out = [0u64; 32];
    match addr.base {
        None => {
            for v in out.iter_mut() {
                *v = addr.offset as u64;
            }
        }
        Some(base) => {
            for lane in 0..32 {
                if mask & (1 << lane) != 0 {
                    out[lane] =
                        w.regs[base.0 as usize * 32 + lane].wrapping_add(addr.offset as u64);
                }
            }
        }
    }
    out
}

#[inline]
fn read_buf(buf: &[u8], addr: u64, space: &'static str) -> Result<u32, SimError> {
    let a = addr as usize;
    if a + 4 > buf.len() || !addr.is_multiple_of(4) {
        return Err(SimError(format!(
            "bad {space} access at {addr:#x} (len {})",
            buf.len()
        )));
    }
    Ok(u32::from_le_bytes(buf[a..a + 4].try_into().unwrap()))
}

#[inline]
fn read_buf64(buf: &[u8], addr: u64) -> Result<u64, SimError> {
    let a = addr as usize;
    if a + 8 > buf.len() {
        return Err(SimError(format!("bad param access at {addr:#x}")));
    }
    Ok(u64::from_le_bytes(buf[a..a + 8].try_into().unwrap()))
}

#[inline]
fn write_buf(buf: &mut [u8], addr: u64, v: u32, space: &'static str) -> Result<(), SimError> {
    let a = addr as usize;
    if a + 4 > buf.len() || !addr.is_multiple_of(4) {
        return Err(SimError(format!(
            "bad {space} access at {addr:#x} (len {})",
            buf.len()
        )));
    }
    buf[a..a + 4].copy_from_slice(&v.to_le_bytes());
    Ok(())
}

/// Zero/sign-extend a loaded 32-bit value into the 64-bit register slot.
#[inline]
fn load_extend(ty: Ty, v: u32) -> u64 {
    match ty {
        Ty::S32 => sext32(v),
        _ => v as u64,
    }
}

/// Truncate a register value to its stored 32-bit form.
#[inline]
fn store_bits(_ty: Ty, v: u64) -> u32 {
    v as u32
}

fn eval_bin(op: BinOp, ty: Ty, x: u64, y: u64) -> Result<u64, SimError> {
    Ok(match ty {
        Ty::F32 => {
            let a = f32::from_bits(x as u32);
            let b = f32::from_bits(y as u32);
            let r = match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => a / b,
                BinOp::Min => a.min(b),
                BinOp::Max => a.max(b),
                _ => return Err(SimError(format!("float op {op:?} unsupported"))),
            };
            r.to_bits() as u64
        }
        Ty::U32 => {
            let (a, b) = (x as u32, y as u32);
            let r = match op {
                BinOp::Add => a.wrapping_add(b),
                BinOp::Sub => a.wrapping_sub(b),
                BinOp::Mul => a.wrapping_mul(b),
                BinOp::Mul24 => (a & 0xFF_FFFF).wrapping_mul(b & 0xFF_FFFF),
                BinOp::Div => a
                    .checked_div(b)
                    .ok_or(SimError("division by zero".into()))?,
                BinOp::Rem => a
                    .checked_rem(b)
                    .ok_or(SimError("remainder by zero".into()))?,
                BinOp::Min => a.min(b),
                BinOp::Max => a.max(b),
                BinOp::And => a & b,
                BinOp::Or => a | b,
                BinOp::Xor => a ^ b,
                BinOp::Shl => a.wrapping_shl(b & 31),
                BinOp::Shr => a.wrapping_shr(b & 31),
            };
            r as u64
        }
        Ty::S32 => {
            let (a, b) = (x as u32 as i32, y as u32 as i32);
            let r: i32 = match op {
                BinOp::Add => a.wrapping_add(b),
                BinOp::Sub => a.wrapping_sub(b),
                BinOp::Mul => a.wrapping_mul(b),
                BinOp::Mul24 => {
                    (((a as u32) & 0xFF_FFFF).wrapping_mul((b as u32) & 0xFF_FFFF)) as i32
                }
                BinOp::Div => {
                    if b == 0 {
                        return Err(SimError("division by zero".into()));
                    }
                    a.wrapping_div(b)
                }
                BinOp::Rem => {
                    if b == 0 {
                        return Err(SimError("remainder by zero".into()));
                    }
                    a.wrapping_rem(b)
                }
                BinOp::Min => a.min(b),
                BinOp::Max => a.max(b),
                BinOp::And => a & b,
                BinOp::Or => a | b,
                BinOp::Xor => a ^ b,
                BinOp::Shl => a.wrapping_shl(b as u32 & 31),
                BinOp::Shr => a.wrapping_shr(b as u32 & 31),
            };
            sext32(r as u32)
        }
        Ty::Ptr(_) => match op {
            BinOp::Add => x.wrapping_add(sext_operand(y)),
            BinOp::Sub => x.wrapping_sub(sext_operand(y)),
            _ => return Err(SimError(format!("pointer op {op:?} unsupported"))),
        },
        Ty::Pred => {
            let (a, b) = (x != 0, y != 0);
            let r = match op {
                BinOp::And => a && b,
                BinOp::Or => a || b,
                BinOp::Xor => a ^ b,
                _ => return Err(SimError("arithmetic on predicate".into())),
            };
            u64::from(r)
        }
    })
}

/// A 32-bit register value added to a pointer is sign-extended; a full
/// 64-bit immediate passes through.
#[inline]
fn sext_operand(v: u64) -> u64 {
    if v <= u32::MAX as u64 {
        sext32(v as u32)
    } else {
        v
    }
}

fn eval_un(op: UnOp, ty: Ty, x: u64) -> u64 {
    match ty {
        Ty::F32 => {
            let a = f32::from_bits(x as u32);
            let r = match op {
                UnOp::Neg => -a,
                UnOp::Abs => a.abs(),
                UnOp::Sqrt => a.sqrt(),
                UnOp::Rsqrt => 1.0 / a.sqrt(),
                UnOp::Floor => a.floor(),
                UnOp::Not => f32::from_bits(!(x as u32)),
            };
            r.to_bits() as u64
        }
        Ty::Pred => match op {
            UnOp::Not => u64::from(x == 0),
            _ => 0,
        },
        _ => {
            let a = x as u32 as i32;
            let r: i32 = match op {
                UnOp::Neg => a.wrapping_neg(),
                UnOp::Not => !a,
                UnOp::Abs => a.wrapping_abs(),
                UnOp::Sqrt | UnOp::Rsqrt | UnOp::Floor => a,
            };
            if ty == Ty::S32 {
                sext32(r as u32)
            } else {
                (r as u32) as u64
            }
        }
    }
}

fn eval_cmp(cmp: CmpOp, ty: Ty, x: u64, y: u64) -> bool {
    match ty {
        Ty::F32 => {
            let (a, b) = (f32::from_bits(x as u32), f32::from_bits(y as u32));
            match cmp {
                CmpOp::Eq => a == b,
                CmpOp::Ne => a != b,
                CmpOp::Lt => a < b,
                CmpOp::Le => a <= b,
                CmpOp::Gt => a > b,
                CmpOp::Ge => a >= b,
            }
        }
        Ty::U32 => {
            let (a, b) = (x as u32, y as u32);
            match cmp {
                CmpOp::Eq => a == b,
                CmpOp::Ne => a != b,
                CmpOp::Lt => a < b,
                CmpOp::Le => a <= b,
                CmpOp::Gt => a > b,
                CmpOp::Ge => a >= b,
            }
        }
        Ty::Ptr(_) => match cmp {
            CmpOp::Eq => x == y,
            CmpOp::Ne => x != y,
            CmpOp::Lt => x < y,
            CmpOp::Le => x <= y,
            CmpOp::Gt => x > y,
            CmpOp::Ge => x >= y,
        },
        _ => {
            let (a, b) = (x as u32 as i32, y as u32 as i32);
            match cmp {
                CmpOp::Eq => a == b,
                CmpOp::Ne => a != b,
                CmpOp::Lt => a < b,
                CmpOp::Le => a <= b,
                CmpOp::Gt => a > b,
                CmpOp::Ge => a >= b,
            }
        }
    }
}

fn eval_cvt(dst: Ty, src: Ty, x: u64) -> u64 {
    match (src, dst) {
        (Ty::S32, Ty::F32) => ((x as u32 as i32) as f32).to_bits() as u64,
        (Ty::U32, Ty::F32) => ((x as u32) as f32).to_bits() as u64,
        (Ty::F32, Ty::S32) => sext32((f32::from_bits(x as u32) as i32) as u32),
        (Ty::F32, Ty::U32) => (f32::from_bits(x as u32) as u32) as u64,
        (Ty::S32, Ty::Ptr(_)) => sext32(x as u32),
        (Ty::U32, Ty::Ptr(_)) => (x as u32) as u64,
        (Ty::Ptr(_), Ty::S32) => sext32(x as u32),
        (Ty::Ptr(_), Ty::U32) => (x as u32) as u64,
        _ => x,
    }
}
