//! Kernel launch orchestration: grid iteration, parameter marshalling,
//! functional execution of every block (rayon-parallel, mirroring block
//! independence on real GPUs), block-sampled timing collection, and the
//! SM-level throughput model that turns per-warp scoreboard data into a
//! simulated kernel time.

use crate::device::DeviceConfig;
use crate::interp::{run_block_with, BlockCtx, ExecStats, GlobalView, SimError};
use crate::occupancy::{occupancy, Limiter, Occupancy};
use crate::regalloc::{allocate, RegAlloc};
use ks_ir::cfg::{ipdoms, Cfg};
use ks_ir::{Function, Module, Space, Ty};
use rayon::prelude::*;

/// A kernel launch argument.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KArg {
    I32(i32),
    U32(u32),
    F32(f32),
    /// Device pointer (from `GlobalMem::alloc`).
    Ptr(u64),
}

/// Grid/block geometry for a launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchDims {
    pub grid: (u32, u32, u32),
    pub block: (u32, u32, u32),
    /// Dynamically allocated shared memory per block, in bytes.
    pub dynamic_shared: u32,
}

impl LaunchDims {
    pub fn linear(grid: u32, block: u32) -> LaunchDims {
        LaunchDims {
            grid: (grid, 1, 1),
            block: (block, 1, 1),
            dynamic_shared: 0,
        }
    }

    pub fn grid_blocks(&self) -> u64 {
        self.grid.0 as u64 * self.grid.1 as u64 * self.grid.2 as u64
    }

    pub fn block_threads(&self) -> u32 {
        self.block.0 * self.block.1 * self.block.2
    }
}

/// How a launch executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchOptions {
    /// Functionally execute *every* block (writes all outputs). When
    /// false, only the timing sample runs — use for perf sweeps whose
    /// outputs are not inspected.
    pub functional: bool,
    /// Number of blocks to interpret with scoreboard timing (spread over
    /// the grid; block-homogeneous kernels need only a few).
    pub timing_sample_blocks: u32,
    /// Use the event-driven SM scheduler (`ks_sim::event`) for the round
    /// time instead of the analytic assembly — higher fidelity, slower.
    pub event_timing: bool,
    /// Instrument shared memory with per-word access-set tracking between
    /// barriers; cross-warp hazards fail the launch (a dynamic analogue of
    /// the ks-analysis KSA001 racecheck).
    pub racecheck: bool,
    /// Diagnose barriers that only part of the block reaches (some threads
    /// returned, others wait) as errors instead of releasing the waiters.
    pub strict_barriers: bool,
}

impl Default for LaunchOptions {
    fn default() -> Self {
        LaunchOptions {
            functional: true,
            timing_sample_blocks: 8,
            event_timing: false,
            racecheck: false,
            strict_barriers: false,
        }
    }
}

/// Everything the simulator reports about one launch.
#[derive(Debug, Clone)]
pub struct LaunchReport {
    pub kernel: String,
    pub device: String,
    /// Simulated execution time in milliseconds.
    pub time_ms: f64,
    pub cycles: u64,
    pub occupancy: Occupancy,
    pub regs_per_thread: u32,
    pub pred_regs: u32,
    pub shared_per_block: u32,
    pub local_bytes_per_thread: u32,
    pub static_insts: usize,
    /// Aggregated (scaled-to-full-grid) execution statistics.
    pub stats: ExecStats,
    /// What bounded the SM round time.
    pub bound: Bound,
}

/// The binding resource in the SM timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    Compute,
    Memory,
    Latency,
}

/// The device-side mutable state a launch runs against.
pub struct DeviceState {
    pub dev: DeviceConfig,
    pub global: crate::mem::GlobalMem,
    pub const_mem: Vec<u8>,
    /// Texture-reference bindings by name (`cudaBindTexture`).
    pub tex_bindings: std::collections::HashMap<String, u64>,
}

impl DeviceState {
    /// A device with the given heap size.
    pub fn new(dev: DeviceConfig, heap_bytes: u64) -> DeviceState {
        let const_bytes = dev.const_bytes as usize;
        DeviceState {
            dev,
            global: crate::mem::GlobalMem::new(heap_bytes),
            const_mem: vec![0; const_bytes],
            tex_bindings: std::collections::HashMap::new(),
        }
    }

    /// Bind a texture reference to a device address (`cudaBindTexture`).
    pub fn bind_texture(&mut self, name: &str, addr: u64) {
        self.tex_bindings.insert(name.to_string(), addr);
    }

    /// Write into a module's constant symbol.
    pub fn set_const(&mut self, m: &Module, name: &str, data: &[u8]) -> Result<(), SimError> {
        let c = m
            .const_decl(name)
            .ok_or_else(|| SimError(format!("no __constant__ named {name}")))?;
        if data.len() as u32 > c.size_bytes {
            return Err(SimError(format!(
                "constant {name} holds {} bytes, got {}",
                c.size_bytes,
                data.len()
            )));
        }
        let off = c.offset as usize;
        self.const_mem[off..off + data.len()].copy_from_slice(data);
        Ok(())
    }
}

/// Serialize launch arguments into the kernel's param space layout.
fn marshal_params(f: &Function, args: &[KArg]) -> Result<Vec<u8>, SimError> {
    if args.len() != f.params.len() {
        return Err(SimError(format!(
            "kernel {} expects {} arguments, got {}",
            f.name,
            f.params.len(),
            args.len()
        )));
    }
    let mut buf = vec![0u8; f.param_bytes() as usize];
    for (p, a) in f.params.iter().zip(args) {
        let off = p.offset as usize;
        match (p.ty, a) {
            (Ty::S32, KArg::I32(v)) => buf[off..off + 4].copy_from_slice(&v.to_le_bytes()),
            (Ty::U32, KArg::U32(v)) => buf[off..off + 4].copy_from_slice(&v.to_le_bytes()),
            (Ty::S32, KArg::U32(v)) => buf[off..off + 4].copy_from_slice(&v.to_le_bytes()),
            (Ty::U32, KArg::I32(v)) => buf[off..off + 4].copy_from_slice(&v.to_le_bytes()),
            (Ty::F32, KArg::F32(v)) => buf[off..off + 4].copy_from_slice(&v.to_le_bytes()),
            (Ty::Ptr(Space::Global), KArg::Ptr(v)) => {
                buf[off..off + 8].copy_from_slice(&v.to_le_bytes())
            }
            (ty, a) => {
                return Err(SimError(format!(
                    "argument {} type mismatch: param is {ty}, arg is {a:?}",
                    p.name
                )))
            }
        }
    }
    Ok(buf)
}

fn block_index(linear: u64, grid: (u32, u32, u32)) -> (u32, u32, u32) {
    let gx = grid.0 as u64;
    let gy = grid.1 as u64;
    (
        (linear % gx) as u32,
        ((linear / gx) % gy) as u32,
        (linear / (gx * gy)) as u32,
    )
}

/// Pre-resolved ks-trace registry handles for launch accounting. The
/// counters mirror the `ExecStats` fields of every successful launch's
/// report, so exported totals can be reconciled against per-launch
/// stats exactly.
struct TraceMetrics {
    launches: ks_trace::Counter,
    dyn_insts: ks_trace::Counter,
    global_bytes: ks_trace::Counter,
    divergent_branches: ks_trace::Counter,
    barriers: ks_trace::Counter,
    time_us: ks_trace::Histogram,
    occupancy: ks_trace::Gauge,
}

fn trace_metrics() -> &'static TraceMetrics {
    static HANDLES: std::sync::OnceLock<TraceMetrics> = std::sync::OnceLock::new();
    HANDLES.get_or_init(|| {
        let r = ks_trace::registry();
        TraceMetrics {
            launches: r.counter(ks_trace::names::SIM_LAUNCHES),
            dyn_insts: r.counter(ks_trace::names::SIM_DYN_INSTS),
            global_bytes: r.counter(ks_trace::names::SIM_GLOBAL_BYTES),
            divergent_branches: r.counter(ks_trace::names::SIM_DIVERGENT_BRANCHES),
            barriers: r.counter(ks_trace::names::SIM_BARRIERS),
            time_us: r.histogram(ks_trace::names::SIM_TIME_US),
            occupancy: r.gauge(ks_trace::names::SIM_OCCUPANCY),
        }
    })
}

/// Launch a kernel on the simulated device.
pub fn launch(
    state: &mut DeviceState,
    module: &Module,
    kernel: &str,
    dims: LaunchDims,
    args: &[KArg],
    opts: LaunchOptions,
) -> Result<LaunchReport, SimError> {
    launch_keyed(state, module, kernel, dims, args, opts, 0, "")
}

/// [`launch`], with the bound binary identified by its specialization
/// cache key and rendered `-D` command line so an active
/// [`ks_fault::FaultPlan`] can scope launch faults to one exact variant
/// (`Target::Key` / `Target::Define`). Key 0 and an empty `-D` line
/// mean "unidentified" and match only un-keyed selectors.
#[allow(clippy::too_many_arguments)]
pub fn launch_keyed(
    state: &mut DeviceState,
    module: &Module,
    kernel: &str,
    dims: LaunchDims,
    args: &[KArg],
    opts: LaunchOptions,
    key: u64,
    defines: &str,
) -> Result<LaunchReport, SimError> {
    let _span = ks_trace::span_fields("launch", || {
        vec![
            ("kernel".to_string(), kernel.to_string()),
            ("device".to_string(), state.dev.name.clone()),
            ("blocks".to_string(), dims.grid_blocks().to_string()),
        ]
    });
    // Injected device faults fire before any device state is touched,
    // so a faulted launch is always safe to retry. A SilentFlip is the
    // exception: the launch must *succeed* and corrupt an output
    // afterwards, so it is held until the kernel completes.
    let mut pending_flip = None;
    if let Some(plan) = ks_fault::active() {
        if let Some(fault) = plan.check_device_keyed(kernel, key, defines) {
            if fault.kind == ks_fault::FaultKind::SilentFlip {
                pending_flip = Some(fault);
            } else {
                ks_trace::registry()
                    .counter(ks_trace::names::SIM_FAULTS_INJECTED)
                    .inc();
                return Err(SimError(fault.message()));
            }
        }
    }
    let report = launch_inner(state, module, kernel, dims, args, opts)?;
    if let Some(fault) = pending_flip {
        if apply_silent_flip(state, &report, fault.entropy) {
            ks_trace::registry()
                .counter(ks_trace::names::SIM_SILENT_FLIPS)
                .inc();
        }
    }
    let m = trace_metrics();
    m.launches.inc();
    m.dyn_insts.add(report.stats.dyn_insts);
    m.global_bytes.add(report.stats.global_bytes);
    m.divergent_branches.add(report.stats.divergent_branches);
    m.barriers.add(report.stats.barriers);
    m.time_us.record((report.time_ms * 1e3) as u64);
    m.occupancy.set(report.occupancy.occupancy);
    Ok(report)
}

/// Apply an injected [`ks_fault::FaultKind::SilentFlip`]: XOR one bit
/// of a word the kernel verifiably stored to, chosen from the fault's
/// deterministic entropy stream. Targeting recorded store addresses —
/// never a guessed extent — guarantees the corruption lands in an
/// *output* buffer, so a witness re-run on the same inputs can expose
/// it; an input-side flip would corrupt the witness identically and be
/// undetectable by construction. Returns whether a bit was flipped
/// (false when the kernel stored nothing; the caller only counts real
/// corruptions). Errors are swallowed: the whole point is that the
/// launch still reports success.
fn apply_silent_flip(state: &mut DeviceState, report: &LaunchReport, entropy: u64) -> bool {
    let first = report.stats.first_store_addr;
    let last = report.stats.last_store_addr;
    if first == 0 {
        return false;
    }
    let addr = if entropy & 1 == 0 { first } else { last };
    let bit = ((entropy >> 1) % 32) as u32;
    match state.global.read_u32(addr) {
        Ok(word) => state.global.write_u32(addr, word ^ (1u32 << bit)).is_ok(),
        Err(_) => false,
    }
}

fn launch_inner(
    state: &mut DeviceState,
    module: &Module,
    kernel: &str,
    dims: LaunchDims,
    args: &[KArg],
    opts: LaunchOptions,
) -> Result<LaunchReport, SimError> {
    let f = module
        .function(kernel)
        .ok_or_else(|| SimError(format!("kernel {kernel} not found in module")))?;
    let params = marshal_params(f, args)?;
    let ra: RegAlloc = allocate(f);
    let shared_per_block = f.shared_bytes() + dims.dynamic_shared;
    let occ = occupancy(
        &state.dev,
        dims.block_threads(),
        ra.gpr_count.max(2), // architectural baseline registers
        shared_per_block,
    );
    if occ.limiter == Limiter::Infeasible {
        return Err(SimError(format!(
            "launch infeasible on {}: {} threads, {} regs/thread, {} B shared",
            state.dev.name,
            dims.block_threads(),
            ra.gpr_count,
            shared_per_block
        )));
    }
    let nblocks = dims.grid_blocks();
    if nblocks == 0 {
        return Err(SimError("empty grid".into()));
    }

    let cfg = Cfg::build(f);
    let pdom = ipdoms(f, &cfg);
    let dev = state.dev.clone();
    let const_mem = state.const_mem.clone();
    // Resolve texture bindings in module order (0 = unbound → trap on use).
    let tex_bindings: Vec<u64> = module
        .textures
        .iter()
        .map(|name| state.tex_bindings.get(name).copied().unwrap_or(0))
        .collect();
    let view = GlobalView::new(state.global.raw_mut());

    // --- timing sample ---
    let sample_n = (opts.timing_sample_blocks as u64).min(nblocks).max(1);
    let stride = nblocks / sample_n;
    let sample_ids: Vec<u64> = (0..sample_n).map(|i| i * stride).collect();
    let mut sample_stats = ExecStats::default();
    let mut per_block_samples: Vec<ExecStats> = Vec::with_capacity(sample_ids.len());
    for &b in &sample_ids {
        let ctx = BlockCtx {
            dev: &dev,
            func: f,
            global: view,
            const_mem: &const_mem,
            params: &params,
            block_dim: dims.block,
            grid_dim: dims.grid,
            block_idx: block_index(b, dims.grid),
            dynamic_shared: dims.dynamic_shared,
            timing: true,
            trace: std::env::var("KS_SIM_TRACE").is_ok(),
            tex_bindings: &tex_bindings,
            racecheck: opts.racecheck,
            strict_barriers: opts.strict_barriers,
        };
        let s = run_block_with(&ctx, &cfg, &pdom)?;
        per_block_samples.push(s);
        sample_stats.accumulate(&s);
    }

    // --- functional execution of the remaining blocks (parallel) ---
    if opts.functional {
        let rest: Vec<u64> = (0..nblocks).filter(|b| !sample_ids.contains(b)).collect();
        rest.par_iter().try_for_each(|&b| {
            let ctx = BlockCtx {
                dev: &dev,
                func: f,
                global: view,
                const_mem: &const_mem,
                params: &params,
                block_dim: dims.block,
                grid_dim: dims.grid,
                block_idx: block_index(b, dims.grid),
                dynamic_shared: dims.dynamic_shared,
                timing: false,
                trace: false,
                tex_bindings: &tex_bindings,
                racecheck: opts.racecheck,
                strict_barriers: opts.strict_barriers,
            };
            run_block_with(&ctx, &cfg, &pdom).map(|_| ())
        })?;
    }

    // --- SM-level timing model ---
    // Average per-block figures from the sample.
    let n = per_block_samples.len() as f64;
    let avg_issue = sample_stats.issue_cycles as f64 / n;
    let avg_bytes = sample_stats.global_bytes as f64 / n;
    let avg_isolated = per_block_samples
        .iter()
        .map(|s| s.isolated_cycles)
        .max()
        .unwrap_or(0) as f64;

    // Device-level throughput terms (issue bandwidth and DRAM bandwidth
    // integrate smoothly over the whole grid), plus a latency term: each
    // wave of resident blocks cannot finish faster than one block's
    // critical path, and waves are serialized.
    let concurrent = (occ.blocks_per_sm as f64 * dev.sm_count as f64).max(1.0);
    let waves = (nblocks as f64 / concurrent).ceil().max(1.0);
    let compute_cycles =
        avg_issue * nblocks as f64 / (dev.sm_count as f64 * dev.schedulers_per_sm as f64);
    let mem_cycles =
        avg_bytes * nblocks as f64 / (dev.bytes_per_cycle_per_sm() * dev.sm_count as f64);
    let latency_cycles = avg_isolated * waves;
    let (total_cycles, bound);
    if opts.event_timing {
        // Event-driven round: co-schedule one SM's resident block set.
        let resident = (occ.blocks_per_sm as u64).min(nblocks) as usize;
        let indices: Vec<(u32, u32, u32)> = (0..resident)
            .map(|i| block_index(sample_ids[i % sample_ids.len()], dims.grid))
            .collect();
        let round = crate::event::run_sm_round(
            &dev,
            f,
            view,
            &const_mem,
            &params,
            dims.block,
            dims.grid,
            &indices,
            dims.dynamic_shared,
            &tex_bindings,
        )?;
        let mem_round = round.stats.global_bytes as f64 / dev.bytes_per_cycle_per_sm();
        let round_cycles = (round.cycles as f64).max(mem_round);
        total_cycles = round_cycles * waves;
        bound = if round_cycles > round.cycles as f64 {
            Bound::Memory
        } else {
            Bound::Latency
        };
    } else {
        total_cycles = compute_cycles.max(mem_cycles).max(latency_cycles);
        bound = if total_cycles == compute_cycles {
            Bound::Compute
        } else if total_cycles == mem_cycles {
            Bound::Memory
        } else {
            Bound::Latency
        };
    }
    let time_ms = total_cycles / (dev.clock_ghz * 1e9) * 1e3;

    // Scale sampled stats to the full grid for reporting.
    let scale = nblocks as f64 / n;
    let mut stats = sample_stats;
    let s = |v: u64| (v as f64 * scale) as u64;
    stats.dyn_insts = s(stats.dyn_insts);
    stats.alu = s(stats.alu);
    stats.mul = s(stats.mul);
    stats.div_sqrt = s(stats.div_sqrt);
    stats.global_loads = s(stats.global_loads);
    stats.global_stores = s(stats.global_stores);
    stats.global_transactions = s(stats.global_transactions);
    stats.global_bytes = s(stats.global_bytes);
    stats.shared_accesses = s(stats.shared_accesses);
    stats.bank_conflict_extra = s(stats.bank_conflict_extra);
    stats.local_accesses = s(stats.local_accesses);
    stats.const_loads = s(stats.const_loads);
    stats.param_loads = s(stats.param_loads);
    stats.branches = s(stats.branches);
    stats.divergent_branches = s(stats.divergent_branches);
    stats.barriers = s(stats.barriers);
    stats.issue_cycles = s(stats.issue_cycles);

    Ok(LaunchReport {
        kernel: kernel.to_string(),
        device: dev.name.clone(),
        time_ms,
        cycles: total_cycles as u64,
        occupancy: occ,
        regs_per_thread: ra.gpr_count.max(2),
        pred_regs: ra.pred_count,
        shared_per_block,
        local_bytes_per_thread: f.local_bytes,
        static_insts: f.static_inst_count(),
        stats,
        bound,
    })
}
