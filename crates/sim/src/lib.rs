//! # ks-sim — a SIMT GPU simulator for the kernel-specialization toolchain
//!
//! Substitutes for the dissertation's NVIDIA hardware (Tesla C1060 /
//! C2070): it executes `ks-ir` modules functionally — warps in lockstep
//! with post-dominator reconvergence, shared memory, barriers, constant and
//! local memory — and models performance with a per-warp register
//! scoreboard (ILP), occupancy-based latency hiding (TLP), per-compute-
//! capability coalescing rules, shared-memory bank conflicts, and
//! per-generation instruction throughputs (including the `*`/`__mul24`
//! inversion between CC 1.3 and CC 2.0).
//!
//! The phenomena the dissertation's results rely on are all first-class
//! here, so specialized kernels win for the same reasons they win on
//! silicon: fewer dynamic instructions (unrolling), fewer registers
//! (→ higher occupancy), no param-space loads, no local-memory spills for
//! register-blocked accumulators, and strength-reduced address math.
//!
//! ```
//! use ks_sim::*;
//!
//! // Compile a kernel with the front-end crates (ks-core wraps this).
//! let prog = ks_lang::frontend(
//!     "__global__ void dbl(float* x) { x[threadIdx.x] = x[threadIdx.x] * 2.0f; }",
//!     &[],
//! ).unwrap();
//! let module = ks_codegen::compile(&prog, &Default::default()).unwrap();
//!
//! let mut st = DeviceState::new(DeviceConfig::tesla_c2070(), 1 << 20);
//! let p = st.global.alloc(32 * 4).unwrap();
//! st.global.write_f32_slice(p, &[1.5; 32]).unwrap();
//! let report = launch(
//!     &mut st, &module, "dbl",
//!     LaunchDims::linear(1, 32),
//!     &[KArg::Ptr(p)],
//!     LaunchOptions::default(),
//! ).unwrap();
//! assert_eq!(st.global.read_f32_slice(p, 32).unwrap(), vec![3.0; 32]);
//! assert!(report.time_ms > 0.0);
//! ```

pub mod device;
pub mod event;
pub mod interp;
pub mod launch;
pub mod mem;
pub mod occupancy;
pub mod racecheck;
pub mod regalloc;
pub mod report;

pub use device::DeviceConfig;
pub use event::{run_sm_round, SmRound};
pub use interp::{ExecStats, SimError};
pub use launch::{
    launch, launch_keyed, Bound, DeviceState, KArg, LaunchDims, LaunchOptions, LaunchReport,
};
pub use mem::{GlobalMem, MemError, GLOBAL_BASE};
pub use occupancy::{occupancy, Limiter, Occupancy};
pub use regalloc::{allocate, RegAlloc};
pub use report::summarize;
