//! Device memory: the global-memory heap, constant bank, and the
//! transaction models (coalescing, shared-memory bank conflicts).

// Half-warp vs full-warp grouping is expressed as a slice of ranges even
// when a device has a single group; uniformity beats the lint here.
#![allow(clippy::single_range_in_vec_init, clippy::needless_range_loop)]

use crate::device::DeviceConfig;

/// Base device address of the first allocation. Non-zero so that null /
/// tiny pointers trap instead of silently reading allocation zero.
pub const GLOBAL_BASE: u64 = 0x1_0000;

/// Errors surfaced by simulated memory.
#[derive(Debug, Clone, PartialEq)]
pub enum MemError {
    OutOfBounds {
        addr: u64,
        len: u64,
        space: &'static str,
    },
    OutOfMemory {
        requested: u64,
        available: u64,
    },
    Misaligned {
        addr: u64,
        align: u64,
    },
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemError::OutOfBounds { addr, len, space } => {
                write!(f, "out-of-bounds {space} access at {addr:#x} (+{len})")
            }
            MemError::OutOfMemory {
                requested,
                available,
            } => {
                write!(
                    f,
                    "device OOM: requested {requested} bytes, {available} free"
                )
            }
            MemError::Misaligned { addr, align } => {
                write!(f, "misaligned access at {addr:#x} (requires {align})")
            }
        }
    }
}

impl std::error::Error for MemError {}

/// The device's global memory: a flat byte heap with a bump allocator.
#[derive(Debug, Clone)]
pub struct GlobalMem {
    data: Vec<u8>,
    next: u64,
}

impl GlobalMem {
    /// Create a heap with the given capacity in bytes.
    pub fn new(capacity: u64) -> GlobalMem {
        GlobalMem {
            data: vec![0u8; capacity as usize],
            next: 0,
        }
    }

    /// Allocate `bytes` (256-byte aligned, like cudaMalloc). Returns the
    /// device address.
    pub fn alloc(&mut self, bytes: u64) -> Result<u64, MemError> {
        let aligned = self.next.div_ceil(256) * 256;
        if aligned + bytes > self.data.len() as u64 {
            return Err(MemError::OutOfMemory {
                requested: bytes,
                available: self.data.len() as u64 - aligned.min(self.data.len() as u64),
            });
        }
        self.next = aligned + bytes;
        Ok(GLOBAL_BASE + aligned)
    }

    /// Reset the allocator (frees everything).
    pub fn reset(&mut self) {
        self.next = 0;
        self.data.fill(0);
    }

    pub fn capacity(&self) -> u64 {
        self.data.len() as u64
    }

    fn offset(&self, addr: u64, len: u64, align: u64) -> Result<usize, MemError> {
        if addr < GLOBAL_BASE || addr + len > GLOBAL_BASE + self.data.len() as u64 {
            return Err(MemError::OutOfBounds {
                addr,
                len,
                space: "global",
            });
        }
        if !addr.is_multiple_of(align) {
            return Err(MemError::Misaligned { addr, align });
        }
        Ok((addr - GLOBAL_BASE) as usize)
    }

    pub fn read_u32(&self, addr: u64) -> Result<u32, MemError> {
        let o = self.offset(addr, 4, 4)?;
        Ok(u32::from_le_bytes(self.data[o..o + 4].try_into().unwrap()))
    }

    pub fn write_u32(&mut self, addr: u64, v: u32) -> Result<(), MemError> {
        let o = self.offset(addr, 4, 4)?;
        self.data[o..o + 4].copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Host→device copy.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) -> Result<(), MemError> {
        let o = self.offset(addr, bytes.len() as u64, 1)?;
        self.data[o..o + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    /// Device→host copy.
    pub fn read_bytes(&self, addr: u64, len: u64) -> Result<&[u8], MemError> {
        let o = self.offset(addr, len, 1)?;
        Ok(&self.data[o..o + len as usize])
    }

    /// Typed f32 convenience copies.
    pub fn write_f32_slice(&mut self, addr: u64, vals: &[f32]) -> Result<(), MemError> {
        let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.write_bytes(addr, &bytes)
    }

    pub fn read_f32_slice(&self, addr: u64, count: usize) -> Result<Vec<f32>, MemError> {
        let b = self.read_bytes(addr, count as u64 * 4)?;
        Ok(b.chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    pub fn write_i32_slice(&mut self, addr: u64, vals: &[i32]) -> Result<(), MemError> {
        let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.write_bytes(addr, &bytes)
    }

    pub fn read_i32_slice(&self, addr: u64, count: usize) -> Result<Vec<i32>, MemError> {
        let b = self.read_bytes(addr, count as u64 * 4)?;
        Ok(b.chunks_exact(4)
            .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Raw interior access for the interpreter hot path.
    pub(crate) fn raw_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

/// Count the global-memory transactions a warp access generates.
///
/// `addrs` are the per-lane byte addresses; `mask` selects active lanes.
/// CC 1.x coalesces per half-warp into `mem_segment`-byte segments;
/// CC 2.x uses 128-byte cache lines across the whole warp.
pub fn coalesce_transactions(dev: &DeviceConfig, addrs: &[u64; 32], mask: u32) -> u32 {
    let mut total = 0u32;
    let groups: &[std::ops::Range<usize>] = if dev.half_warp_coalescing {
        &[0..16, 16..32]
    } else {
        &[0..32]
    };
    for g in groups {
        let mut segs: Vec<u64> = Vec::with_capacity(8);
        for lane in g.clone() {
            if mask & (1 << lane) != 0 {
                let seg = addrs[lane] / dev.mem_segment;
                if !segs.contains(&seg) {
                    segs.push(seg);
                }
            }
        }
        total += segs.len() as u32;
    }
    total
}

/// Shared-memory conflict degree: the maximum number of *distinct words*
/// mapping to the same bank within a conflict group (half-warp on CC 1.x,
/// full warp on CC 2.x). Broadcasts (same word) don't conflict. Returns ≥1
/// whenever any lane is active.
pub fn bank_conflict_degree(dev: &DeviceConfig, addrs: &[u64; 32], mask: u32) -> u32 {
    let groups: &[std::ops::Range<usize>] = if dev.cc_major == 1 {
        &[0..16, 16..32]
    } else {
        &[0..32]
    };
    let mut worst = 0u32;
    for g in groups {
        let mut per_bank: Vec<Vec<u64>> = vec![Vec::new(); dev.shared_banks as usize];
        let mut any = false;
        for lane in g.clone() {
            if mask & (1 << lane) != 0 {
                any = true;
                let word = addrs[lane] / 4;
                let bank = (word % dev.shared_banks as u64) as usize;
                if !per_bank[bank].contains(&word) {
                    per_bank[bank].push(word);
                }
            }
        }
        if any {
            let m = per_bank
                .iter()
                .map(|v| v.len() as u32)
                .max()
                .unwrap_or(1)
                .max(1);
            worst = worst.max(m);
        }
    }
    worst.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_roundtrip() {
        let mut g = GlobalMem::new(1 << 20);
        let a = g.alloc(1024).unwrap();
        assert_eq!(a % 256, 0);
        assert!(a >= GLOBAL_BASE);
        g.write_f32_slice(a, &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(g.read_f32_slice(a, 3).unwrap(), vec![1.0, 2.0, 3.0]);
        let b = g.alloc(64).unwrap();
        assert!(b >= a + 1024);
    }

    #[test]
    fn bounds_and_alignment_checked() {
        let mut g = GlobalMem::new(4096);
        assert!(matches!(g.read_u32(0), Err(MemError::OutOfBounds { .. })));
        let a = g.alloc(16).unwrap();
        assert!(matches!(
            g.read_u32(a + 2),
            Err(MemError::Misaligned { .. })
        ));
        assert!(g.write_u32(a + 12, 7).is_ok());
        assert!(matches!(
            g.read_bytes(a, 1 << 30),
            Err(MemError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn oom_reported() {
        let mut g = GlobalMem::new(1024);
        assert!(matches!(g.alloc(4096), Err(MemError::OutOfMemory { .. })));
    }

    fn seq_addrs(base: u64, stride: u64) -> [u64; 32] {
        let mut a = [0u64; 32];
        for (i, v) in a.iter_mut().enumerate() {
            *v = base + i as u64 * stride;
        }
        a
    }

    #[test]
    fn coalesced_sequential_access() {
        let c2070 = DeviceConfig::tesla_c2070();
        // 32 consecutive floats starting 128-aligned = exactly one line.
        let t = coalesce_transactions(&c2070, &seq_addrs(0x1000, 4), u32::MAX);
        assert_eq!(t, 1);
        let c1060 = DeviceConfig::tesla_c1060();
        // Per half-warp: 16 floats = 64 bytes = 1 segment each.
        let t = coalesce_transactions(&c1060, &seq_addrs(0x1000, 4), u32::MAX);
        assert_eq!(t, 2);
    }

    #[test]
    fn strided_access_explodes_transactions() {
        let d = DeviceConfig::tesla_c2070();
        // Stride of 128 bytes: every lane hits its own line.
        let t = coalesce_transactions(&d, &seq_addrs(0, 128), u32::MAX);
        assert_eq!(t, 32);
    }

    #[test]
    fn masked_lanes_dont_count() {
        let d = DeviceConfig::tesla_c2070();
        let t = coalesce_transactions(&d, &seq_addrs(0, 128), 0b1111);
        assert_eq!(t, 4);
        assert_eq!(coalesce_transactions(&d, &seq_addrs(0, 128), 0), 0);
    }

    #[test]
    fn bank_conflicts() {
        let c1060 = DeviceConfig::tesla_c1060();
        // Sequential words: no conflicts.
        assert_eq!(bank_conflict_degree(&c1060, &seq_addrs(0, 4), u32::MAX), 1);
        // Stride of 16 words on 16 banks: every lane in a half-warp hits
        // bank 0 → 16-way conflict.
        assert_eq!(
            bank_conflict_degree(&c1060, &seq_addrs(0, 64), u32::MAX),
            16
        );
        // Broadcast: all lanes read the same word → no conflict.
        assert_eq!(bank_conflict_degree(&c1060, &[0x40; 32], u32::MAX), 1);
        // Fermi: 32 banks, stride 16 words → 16 distinct words per bank
        // pair... stride 32 words hits bank 0 for all 32 lanes.
        let c2070 = DeviceConfig::tesla_c2070();
        assert_eq!(
            bank_conflict_degree(&c2070, &seq_addrs(0, 128), u32::MAX),
            32
        );
        assert_eq!(bank_conflict_degree(&c2070, &seq_addrs(0, 4), u32::MAX), 1);
    }
}
