//! Occupancy calculation, following the CUDA occupancy calculator rules:
//! the number of thread blocks resident on an SM is the minimum over the
//! block-count, warp-count, register-file, and shared-memory constraints.

use crate::device::DeviceConfig;

/// What limited the number of resident blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Limiter {
    Blocks,
    Warps,
    Registers,
    SharedMemory,
    /// Kernel cannot run at all (e.g. one block exceeds a resource).
    Infeasible,
}

/// Occupancy analysis result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Occupancy {
    pub blocks_per_sm: u32,
    pub warps_per_block: u32,
    pub active_warps: u32,
    /// active_warps / max_warps.
    pub occupancy: f64,
    pub limiter: Limiter,
}

fn div_round_up(a: u32, b: u32) -> u32 {
    a.div_ceil(b)
}

fn round_up(a: u32, unit: u32) -> u32 {
    div_round_up(a, unit) * unit
}

/// Compute the occupancy of a kernel configuration.
///
/// `shared_per_block` includes static + dynamic shared memory.
pub fn occupancy(
    dev: &DeviceConfig,
    threads_per_block: u32,
    regs_per_thread: u32,
    shared_per_block: u32,
) -> Occupancy {
    assert!(threads_per_block > 0, "empty thread block");
    let warps_per_block = div_round_up(threads_per_block, dev.warp_size);

    let by_blocks = dev.max_blocks_per_sm;
    let by_warps = dev.max_warps_per_sm / warps_per_block;

    // Register constraint. CC 1.x allocates registers per block with a
    // coarse granularity; CC 2.x per warp.
    let by_regs = if regs_per_thread == 0 {
        u32::MAX
    } else if dev.cc_major == 1 {
        let per_block = round_up(
            regs_per_thread * warps_per_block * dev.warp_size,
            dev.reg_alloc_unit,
        );
        dev.regs_per_sm / per_block.max(1)
    } else {
        let per_warp = round_up(regs_per_thread * dev.warp_size, dev.reg_alloc_unit);
        let warps = dev.regs_per_sm / per_warp.max(1);
        warps / warps_per_block
    };

    let by_shared = if shared_per_block == 0 {
        u32::MAX
    } else {
        dev.shared_per_sm / round_up(shared_per_block, dev.shared_alloc_unit).max(1)
    };

    let blocks = by_blocks.min(by_warps).min(by_regs).min(by_shared);
    if blocks == 0 || threads_per_block > dev.max_threads_per_block {
        return Occupancy {
            blocks_per_sm: 0,
            warps_per_block,
            active_warps: 0,
            occupancy: 0.0,
            limiter: Limiter::Infeasible,
        };
    }
    let limiter = if blocks == by_warps {
        Limiter::Warps
    } else if blocks == by_regs {
        Limiter::Registers
    } else if blocks == by_shared {
        Limiter::SharedMemory
    } else {
        Limiter::Blocks
    };
    let active_warps = blocks * warps_per_block;
    Occupancy {
        blocks_per_sm: blocks,
        warps_per_block,
        active_warps,
        occupancy: active_warps as f64 / dev.max_warps_per_sm as f64,
        limiter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_kernel_is_block_limited() {
        let d = DeviceConfig::tesla_c1060();
        let o = occupancy(&d, 64, 8, 0);
        // 8 blocks × 2 warps = 16 warps of 32 max.
        assert_eq!(o.blocks_per_sm, 8);
        assert_eq!(o.active_warps, 16);
        assert_eq!(o.limiter, Limiter::Blocks);
    }

    #[test]
    fn register_pressure_reduces_occupancy() {
        let d = DeviceConfig::tesla_c1060();
        let low = occupancy(&d, 256, 10, 0);
        let high = occupancy(&d, 256, 32, 0);
        assert!(high.active_warps < low.active_warps);
        assert_eq!(high.limiter, Limiter::Registers);
        // 32 regs × 256 threads = 8192 regs ⇒ 2 blocks of 16K.
        assert_eq!(high.blocks_per_sm, 2);
    }

    #[test]
    fn shared_memory_limits() {
        let d = DeviceConfig::tesla_c1060();
        let o = occupancy(&d, 64, 8, 6 * 1024);
        // 16 KB / 6 KB ⇒ 2 blocks.
        assert_eq!(o.blocks_per_sm, 2);
        assert_eq!(o.limiter, Limiter::SharedMemory);
    }

    #[test]
    fn full_occupancy_possible_on_fermi() {
        let d = DeviceConfig::tesla_c2070();
        let o = occupancy(&d, 256, 20, 0);
        // 48 warps max; 8 warps/block ⇒ 6 blocks = 48 warps; regs: 20*32=640
        // → 640/warp, 32K/640 = 51 warps ⇒ not limiting.
        assert_eq!(o.active_warps, 48);
        assert!((o.occupancy - 1.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_configurations() {
        let d = DeviceConfig::tesla_c1060();
        // More threads than the CC 1.3 block limit.
        assert_eq!(occupancy(&d, 1024, 8, 0).limiter, Limiter::Infeasible);
        // One block needs more shared memory than the SM has.
        assert_eq!(occupancy(&d, 64, 8, 20 * 1024).limiter, Limiter::Infeasible);
        // Registers for a single block exceed the file.
        assert_eq!(occupancy(&d, 512, 120, 0).limiter, Limiter::Infeasible);
    }

    #[test]
    fn occupancy_monotone_in_register_count() {
        let d = DeviceConfig::tesla_c2070();
        let mut last = u32::MAX;
        for regs in [8, 16, 24, 32, 48, 63] {
            let o = occupancy(&d, 256, regs, 0);
            assert!(o.active_warps <= last);
            last = o.active_warps;
        }
    }

    #[test]
    fn same_kernel_fits_differently_across_generations() {
        // A register-heavy 512-thread kernel fits CC 2.0 but is tight on
        // CC 1.3 — the adaptability problem the paper opens with.
        let k = (512u32, 26u32, 4096u32);
        let o1 = occupancy(&DeviceConfig::tesla_c1060(), k.0, k.1, k.2);
        let o2 = occupancy(&DeviceConfig::tesla_c2070(), k.0, k.1, k.2);
        assert_eq!(o1.blocks_per_sm, 1);
        assert!(o2.blocks_per_sm >= 2);
    }
}
