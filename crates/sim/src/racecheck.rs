//! Dynamic shared-memory race checking (a `cuda-memcheck --tool racecheck`
//! analogue). When [`crate::LaunchOptions::racecheck`] is set, the
//! interpreter records, for every 4-byte shared-memory word, the set of
//! warps that read and wrote it since the last `__syncthreads()`. Accesses
//! within one warp are ordered by SIMT lockstep, so only *cross-warp*
//! combinations are hazards; a barrier clears the sets. This mirrors the
//! warp-granularity semantics of the static checker in `ks-analysis`, so
//! a kernel the static racecheck proves clean also runs clean here.

use std::collections::HashMap;

/// A hazard between unsynchronized warps on one shared-memory word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceHazard {
    /// "write/write" or "read/write".
    pub kind: &'static str,
    /// Byte address of the conflicting word in the shared window.
    pub word_addr: u64,
    /// The warp performing the access that exposed the hazard.
    pub warp: u32,
    /// A warp that touched the word earlier in the same barrier interval.
    pub other_warp: u32,
}

impl std::fmt::Display for RaceHazard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shared-memory {} race on word {:#x}: warp {} conflicts with warp {} \
             (no __syncthreads() between the accesses)",
            self.kind, self.word_addr, self.warp, self.other_warp
        )
    }
}

#[derive(Default, Clone, Copy)]
struct WordState {
    /// Bitmask of warps that wrote the word this barrier interval.
    writers: u64,
    /// Bitmask of warps that read it.
    readers: u64,
}

fn other_in(mask: u64, me: u32) -> Option<u32> {
    let others = mask & !(1u64 << me);
    (others != 0).then(|| others.trailing_zeros())
}

/// Per-block tracker of shared-memory access sets between barriers.
#[derive(Default)]
pub struct ShmemTracker {
    words: HashMap<u64, WordState>,
}

impl ShmemTracker {
    pub fn new() -> ShmemTracker {
        ShmemTracker::default()
    }

    /// Record a 4-byte read of `word_addr` by `warp`.
    pub fn read(&mut self, warp: u32, word_addr: u64) -> Option<RaceHazard> {
        let s = self.words.entry(word_addr).or_default();
        s.readers |= 1 << warp;
        other_in(s.writers, warp).map(|other_warp| RaceHazard {
            kind: "read/write",
            word_addr,
            warp,
            other_warp,
        })
    }

    /// Record a 4-byte write to `word_addr` by `warp`.
    pub fn write(&mut self, warp: u32, word_addr: u64) -> Option<RaceHazard> {
        let s = self.words.entry(word_addr).or_default();
        let hazard = if let Some(other_warp) = other_in(s.writers, warp) {
            Some(RaceHazard {
                kind: "write/write",
                word_addr,
                warp,
                other_warp,
            })
        } else {
            other_in(s.readers, warp).map(|other_warp| RaceHazard {
                kind: "read/write",
                word_addr,
                warp,
                other_warp,
            })
        };
        s.writers |= 1 << warp;
        hazard
    }

    /// A block-wide barrier orders everything that came before it.
    pub fn barrier(&mut self) {
        self.words.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_warp_accesses_never_race() {
        let mut t = ShmemTracker::new();
        assert!(t.write(0, 0x10).is_none());
        assert!(t.write(0, 0x10).is_none());
        assert!(t.read(0, 0x10).is_none());
    }

    #[test]
    fn cross_warp_write_write_races() {
        let mut t = ShmemTracker::new();
        assert!(t.write(0, 0x10).is_none());
        let h = t.write(1, 0x10).expect("race");
        assert_eq!(h.kind, "write/write");
        assert_eq!((h.warp, h.other_warp), (1, 0));
    }

    #[test]
    fn cross_warp_read_after_write_races_and_barrier_clears() {
        let mut t = ShmemTracker::new();
        assert!(t.write(0, 0x20).is_none());
        assert!(t.read(1, 0x20).is_some());
        t.barrier();
        assert!(t.read(1, 0x20).is_none());
        // Read-then-write from another warp is also a hazard.
        let h = t.write(0, 0x20).expect("race");
        assert_eq!(h.kind, "read/write");
    }

    #[test]
    fn distinct_words_do_not_interact() {
        let mut t = ShmemTracker::new();
        assert!(t.write(0, 0x0).is_none());
        assert!(t.write(1, 0x4).is_none());
        assert!(t.read(2, 0x8).is_none());
    }
}
