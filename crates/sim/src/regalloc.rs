//! Virtual → physical register assignment ("PTX → SASS" translation).
//!
//! PTX registers are virtual; assignment happens during the JIT translation
//! to the binary ISA (§2.4). The per-thread physical register count this
//! produces drives the occupancy model — which is how the dissertation's
//! "reduced register usage with kernel specialization" claim becomes a
//! measurable performance effect here.
//!
//! Implementation: classic backward liveness dataflow over the CFG, then a
//! linear scan over a block-layout linearization. Predicate registers live
//! in a separate (SASS-like) predicate file and are reported separately.

use ks_ir::cfg::Cfg;
use ks_ir::{Function, Ty, VReg};
use std::collections::HashSet;

/// Result of register allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct RegAlloc {
    /// General-purpose physical registers needed per thread.
    pub gpr_count: u32,
    /// Predicate registers needed.
    pub pred_count: u32,
    /// Physical register assigned to each vreg (GPRs and preds numbered
    /// independently).
    pub assignment: Vec<u32>,
}

/// Per-block liveness sets (only live-out is consumed by the segment
/// builder; live-in is implied by the backward walk).
struct Liveness {
    live_out: Vec<HashSet<VReg>>,
}

fn compute_liveness(f: &Function, cfg: &Cfg) -> Liveness {
    let n = f.blocks.len();
    // use[b] = vars read before any write in b; def[b] = vars written.
    let mut use_s = vec![HashSet::new(); n];
    let mut def_s = vec![HashSet::new(); n];
    for (bi, b) in f.blocks.iter().enumerate() {
        for i in &b.insts {
            i.for_each_use(|r| {
                if !def_s[bi].contains(&r) {
                    use_s[bi].insert(r);
                }
            });
            if let Some(d) = i.def() {
                def_s[bi].insert(d);
            }
        }
        if let Some(p) = b.term.use_reg() {
            if !def_s[bi].contains(&p) {
                use_s[bi].insert(p);
            }
        }
    }
    let mut live_in = vec![HashSet::new(); n];
    let mut live_out = vec![HashSet::new(); n];
    let mut changed = true;
    while changed {
        changed = false;
        // Iterate in reverse RPO for fast convergence.
        for &bid in cfg.rpo.iter().rev() {
            let b = bid.0 as usize;
            let mut out = HashSet::new();
            for s in &cfg.succs[b] {
                for r in &live_in[s.0 as usize] {
                    out.insert(*r);
                }
            }
            let mut inp = use_s[b].clone();
            for r in &out {
                if !def_s[b].contains(r) {
                    inp.insert(*r);
                }
            }
            if out != live_out[b] || inp != live_in[b] {
                live_out[b] = out;
                live_in[b] = inp;
                changed = true;
            }
        }
    }
    Liveness { live_out }
}

/// Compute live intervals over a linearization and run a linear scan.
///
/// Intervals are built per *live segment*, not per virtual register: a
/// register that is redefined after its previous value died (the reused
/// named temporaries of an unrolled loop body) contributes several short
/// segments instead of one function-spanning interval. Without this,
/// unrolled specialized kernels would report wildly inflated pressure.
pub fn allocate(f: &Function) -> RegAlloc {
    let nv = f.num_vregs();
    if nv == 0 {
        return RegAlloc {
            gpr_count: 0,
            pred_count: 0,
            assignment: vec![],
        };
    }
    let cfg = Cfg::build(f);
    let live = compute_liveness(f, &cfg);

    // Assign global positions in layout order: each instruction gets two
    // positions (use at p, def at p+1) so a def can reuse a register whose
    // last use is the same instruction.
    let mut block_bounds = Vec::with_capacity(f.blocks.len());
    let mut pos = 0usize;
    for b in &f.blocks {
        let start = pos;
        pos += 2 * (b.insts.len() + 1);
        block_bounds.push((start, pos));
    }

    // Build live segments per block, walking backwards.
    #[derive(Debug, Clone, Copy)]
    struct Seg {
        start: usize,
        end: usize,
        vreg: usize,
    }
    let mut segs: Vec<Seg> = Vec::new();
    // open_end[v] = Some(end position) while v is live during the backward
    // walk of the current block.
    let mut open_end: Vec<Option<usize>> = vec![None; nv];
    for (bi, b) in f.blocks.iter().enumerate() {
        let (bstart, bend) = block_bounds[bi];
        for v in open_end.iter_mut() {
            *v = None;
        }
        // Everything live-out survives to the block end.
        for r in &live.live_out[bi] {
            open_end[r.0 as usize] = Some(bend);
        }
        // Terminator use.
        let term_pos = bend - 2;
        if let Some(p) = b.term.use_reg() {
            let e = open_end[p.0 as usize].get_or_insert(term_pos);
            *e = (*e).max(term_pos);
        }
        // Instructions backwards.
        for (ii, inst) in b.insts.iter().enumerate().rev() {
            let use_pos = bstart + 2 * ii;
            let def_pos = use_pos + 1;
            if let Some(d) = inst.def() {
                if let Some(end) = open_end[d.0 as usize].take() {
                    segs.push(Seg {
                        start: def_pos,
                        end,
                        vreg: d.0 as usize,
                    });
                }
                // A def whose value is never used still occupies its slot.
                // (open_end was None: emit a point segment.)
                else {
                    segs.push(Seg {
                        start: def_pos,
                        end: def_pos,
                        vreg: d.0 as usize,
                    });
                }
            }
            inst.for_each_use(|r| {
                let e = open_end[r.0 as usize].get_or_insert(use_pos);
                *e = (*e).max(use_pos);
            });
        }
        // Values still live at block entry (live-in or used before def).
        for (v, end) in open_end.iter_mut().enumerate() {
            if let Some(e) = end.take() {
                segs.push(Seg {
                    start: bstart,
                    end: e,
                    vreg: v,
                });
            }
        }
    }

    // Linear scan over segments; GPRs and predicates in separate files.
    let mut events: Vec<(usize, bool, usize)> = Vec::with_capacity(segs.len() * 2);
    for (si, s) in segs.iter().enumerate() {
        events.push((s.start, true, si));
        events.push((s.end + 1, false, si));
    }
    // Ends release before starts acquire at the same position.
    events.sort_by_key(|&(p, is_start, _)| (p, is_start));

    let mut assignment = vec![u32::MAX; nv];
    let mut seg_reg = vec![u32::MAX; segs.len()];
    let mut free_gpr: Vec<u32> = Vec::new();
    let mut free_pred: Vec<u32> = Vec::new();
    let mut next_gpr = 0u32;
    let mut next_pred = 0u32;
    for (_, is_start, si) in events {
        let v = segs[si].vreg;
        let is_pred = f.vreg_types[v] == Ty::Pred;
        if is_start {
            let reg = if is_pred {
                free_pred.pop().unwrap_or_else(|| {
                    let r = next_pred;
                    next_pred += 1;
                    r
                })
            } else {
                free_gpr.pop().unwrap_or_else(|| {
                    let r = next_gpr;
                    next_gpr += 1;
                    r
                })
            };
            seg_reg[si] = reg;
            // Record the first assignment for reporting purposes.
            if assignment[v] == u32::MAX {
                assignment[v] = reg;
            }
        } else if seg_reg[si] != u32::MAX {
            if is_pred {
                free_pred.push(seg_reg[si]);
            } else {
                free_gpr.push(seg_reg[si]);
            }
        }
    }
    RegAlloc {
        gpr_count: next_gpr,
        pred_count: next_pred,
        assignment,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ks_ir::*;

    fn mk() -> Function {
        Function {
            name: "t".into(),
            params: vec![],
            blocks: vec![],
            vreg_types: vec![],
            shared: vec![],
            local_bytes: 0,
        }
    }

    /// A chain a→b→c→store where each value dies at its single use needs
    /// very few physical registers.
    #[test]
    fn sequential_chain_reuses_registers() {
        let mut f = mk();
        let regs: Vec<VReg> = (0..16).map(|_| f.new_vreg(Ty::S32)).collect();
        let mut insts = vec![Inst::Mov {
            ty: Ty::S32,
            dst: regs[0],
            src: Operand::ImmI(0),
        }];
        for w in 1..16 {
            insts.push(Inst::Bin {
                op: BinOp::Add,
                ty: Ty::S32,
                dst: regs[w],
                a: regs[w - 1].into(),
                b: Operand::ImmI(1),
            });
        }
        insts.push(Inst::St {
            space: Space::Global,
            ty: Ty::S32,
            addr: Address::abs(0),
            src: regs[15].into(),
        });
        f.blocks.push(BasicBlock {
            id: BlockId(0),
            insts,
            term: Terminator::Ret,
        });
        let ra = allocate(&f);
        assert!(
            ra.gpr_count <= 2,
            "chain should need ≤2 GPRs, got {}",
            ra.gpr_count
        );
    }

    /// Register blocking: K live accumulators force ≥K registers.
    #[test]
    fn live_accumulators_need_distinct_registers() {
        let mut f = mk();
        let k = 8;
        let accs: Vec<VReg> = (0..k).map(|_| f.new_vreg(Ty::F32)).collect();
        let mut insts: Vec<Inst> = accs
            .iter()
            .map(|&a| Inst::Mov {
                ty: Ty::F32,
                dst: a,
                src: Operand::ImmF(0.0),
            })
            .collect();
        // Touch all accumulators again so they're simultaneously live.
        for &a in &accs {
            insts.push(Inst::St {
                space: Space::Global,
                ty: Ty::F32,
                addr: Address::abs(0),
                src: a.into(),
            });
        }
        f.blocks.push(BasicBlock {
            id: BlockId(0),
            insts,
            term: Terminator::Ret,
        });
        let ra = allocate(&f);
        assert!(ra.gpr_count >= k as u32, "got {}", ra.gpr_count);
    }

    /// Values live across a loop back-edge stay allocated for the loop.
    #[test]
    fn loop_carried_value_spans_loop() {
        let mut f = mk();
        let acc = f.new_vreg(Ty::S32);
        let i = f.new_vreg(Ty::S32);
        let p = f.new_vreg(Ty::Pred);
        // BB0: acc=0; i=0 → BB1
        f.blocks.push(BasicBlock {
            id: BlockId(0),
            insts: vec![
                Inst::Mov {
                    ty: Ty::S32,
                    dst: acc,
                    src: Operand::ImmI(0),
                },
                Inst::Mov {
                    ty: Ty::S32,
                    dst: i,
                    src: Operand::ImmI(0),
                },
            ],
            term: Terminator::Br { target: BlockId(1) },
        });
        // BB1: acc+=i; i+=1; p = i<10; br p BB1 else BB2
        f.blocks.push(BasicBlock {
            id: BlockId(1),
            insts: vec![
                Inst::Bin {
                    op: BinOp::Add,
                    ty: Ty::S32,
                    dst: acc,
                    a: acc.into(),
                    b: i.into(),
                },
                Inst::Bin {
                    op: BinOp::Add,
                    ty: Ty::S32,
                    dst: i,
                    a: i.into(),
                    b: Operand::ImmI(1),
                },
                Inst::Setp {
                    cmp: CmpOp::Lt,
                    ty: Ty::S32,
                    dst: p,
                    a: i.into(),
                    b: Operand::ImmI(10),
                },
            ],
            term: Terminator::CondBr {
                pred: p,
                negate: false,
                then_t: BlockId(1),
                else_t: BlockId(2),
            },
        });
        // BB2: store acc
        f.blocks.push(BasicBlock {
            id: BlockId(2),
            insts: vec![Inst::St {
                space: Space::Global,
                ty: Ty::S32,
                addr: Address::abs(0),
                src: acc.into(),
            }],
            term: Terminator::Ret,
        });
        let ra = allocate(&f);
        // acc and i must coexist; p is a predicate.
        assert!(ra.gpr_count >= 2);
        assert_eq!(ra.pred_count, 1);
        // Different physical GPRs for acc and i.
        assert_ne!(ra.assignment[acc.0 as usize], ra.assignment[i.0 as usize]);
    }

    /// A vreg reused for several *disjoint* lifetimes (the named
    /// temporaries of an unrolled loop) must not hold a register across
    /// the gaps: pressure is per-segment, not per-vreg.
    #[test]
    fn disjoint_reuse_does_not_inflate_pressure() {
        let mut f = mk();
        let tmp = f.new_vreg(Ty::F32); // reused temp
        let heavy: Vec<VReg> = (0..6).map(|_| f.new_vreg(Ty::F32)).collect();
        let mut insts = Vec::new();
        // Phase 1: tmp defined and consumed immediately.
        insts.push(Inst::Mov {
            ty: Ty::F32,
            dst: tmp,
            src: Operand::ImmF(1.0),
        });
        insts.push(Inst::St {
            space: Space::Global,
            ty: Ty::F32,
            addr: Address::abs(0),
            src: tmp.into(),
        });
        // Phase 2: six simultaneously-live values.
        for &h in &heavy {
            insts.push(Inst::Mov {
                ty: Ty::F32,
                dst: h,
                src: Operand::ImmF(2.0),
            });
        }
        for &h in &heavy {
            insts.push(Inst::St {
                space: Space::Global,
                ty: Ty::F32,
                addr: Address::abs(0),
                src: h.into(),
            });
        }
        // Phase 3: tmp reused after its first lifetime ended.
        insts.push(Inst::Mov {
            ty: Ty::F32,
            dst: tmp,
            src: Operand::ImmF(3.0),
        });
        insts.push(Inst::St {
            space: Space::Global,
            ty: Ty::F32,
            addr: Address::abs(4),
            src: tmp.into(),
        });
        f.blocks.push(BasicBlock {
            id: BlockId(0),
            insts,
            term: Terminator::Ret,
        });
        let ra = allocate(&f);
        // tmp's two lifetimes don't overlap the heavy phase boundary-to-
        // boundary: peak = 6 (heavy), not 7.
        assert_eq!(ra.gpr_count, 6, "reused temp must not span the heavy phase");
    }

    #[test]
    fn predicates_do_not_consume_gprs() {
        let mut f = mk();
        let p1 = f.new_vreg(Ty::Pred);
        let p2 = f.new_vreg(Ty::Pred);
        f.blocks.push(BasicBlock {
            id: BlockId(0),
            insts: vec![
                Inst::Setp {
                    cmp: CmpOp::Lt,
                    ty: Ty::S32,
                    dst: p1,
                    a: Operand::ImmI(0),
                    b: Operand::ImmI(1),
                },
                Inst::Setp {
                    cmp: CmpOp::Lt,
                    ty: Ty::S32,
                    dst: p2,
                    a: Operand::ImmI(0),
                    b: Operand::ImmI(1),
                },
                Inst::Bin {
                    op: BinOp::And,
                    ty: Ty::Pred,
                    dst: p1,
                    a: p1.into(),
                    b: p2.into(),
                },
            ],
            term: Terminator::CondBr {
                pred: p1,
                negate: false,
                then_t: BlockId(1),
                else_t: BlockId(1),
            },
        });
        f.blocks.push(BasicBlock {
            id: BlockId(1),
            insts: vec![],
            term: Terminator::Ret,
        });
        let ra = allocate(&f);
        assert_eq!(ra.gpr_count, 0);
        assert_eq!(ra.pred_count, 2);
    }
}
