//! Human-readable rendering of launch reports — the per-kernel profile the
//! GPU-PF log excerpts of Appendix G print between pipeline iterations.

use crate::launch::LaunchReport;
use std::fmt::Write;

/// Multi-line textual summary of one launch.
pub fn summarize(r: &LaunchReport) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "kernel {} on {}", r.kernel, r.device);
    let _ = writeln!(
        s,
        "  time {:.6} ms  ({} cycles, {:?}-bound)",
        r.time_ms, r.cycles, r.bound
    );
    let _ = writeln!(
        s,
        "  regs/thread {}  preds {}  shared {} B  local {} B  static insts {}",
        r.regs_per_thread,
        r.pred_regs,
        r.shared_per_block,
        r.local_bytes_per_thread,
        r.static_insts
    );
    let o = &r.occupancy;
    let _ = writeln!(
        s,
        "  occupancy {:.2} ({} warps, {} blocks/SM, limited by {:?})",
        o.occupancy, o.active_warps, o.blocks_per_sm, o.limiter
    );
    let st = &r.stats;
    let _ = writeln!(
        s,
        "  dyn insts {}  (alu {} mul {} div/sqrt {} branch {} bar {})",
        st.dyn_insts, st.alu, st.mul, st.div_sqrt, st.branches, st.barriers
    );
    let _ = writeln!(
        s,
        "  mem: {} ld / {} st, {} transactions, {} B DRAM; shared {} (+{} conflicts); local {}; const {}; param {}",
        st.global_loads,
        st.global_stores,
        st.global_transactions,
        st.global_bytes,
        st.shared_accesses,
        st.bank_conflict_extra,
        st.local_accesses,
        st.const_loads,
        st.param_loads
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::ExecStats;
    use crate::occupancy::{Limiter, Occupancy};
    use crate::Bound;

    #[test]
    fn summary_contains_key_fields() {
        let r = LaunchReport {
            kernel: "numerator".into(),
            device: "Tesla C1060".into(),
            time_ms: 1.25,
            cycles: 1_620_000,
            occupancy: Occupancy {
                blocks_per_sm: 4,
                warps_per_block: 4,
                active_warps: 16,
                occupancy: 0.5,
                limiter: Limiter::Registers,
            },
            regs_per_thread: 21,
            pred_regs: 2,
            shared_per_block: 1024,
            local_bytes_per_thread: 0,
            static_insts: 230,
            stats: ExecStats {
                dyn_insts: 12345,
                global_loads: 10,
                ..Default::default()
            },
            bound: Bound::Compute,
        };
        let s = summarize(&r);
        assert!(s.contains("numerator"));
        assert!(s.contains("Tesla C1060"));
        assert!(s.contains("regs/thread 21"));
        assert!(s.contains("occupancy 0.50"));
        assert!(s.contains("Registers"));
        assert!(s.contains("12345"));
    }
}
