//! End-to-end simulator tests: source → specialize → lower → optimize →
//! simulate → check outputs against host-computed references.

#![allow(clippy::needless_range_loop)]

use ks_codegen::{compile, CodegenOptions};
use ks_lang::frontend;
use ks_sim::*;

fn module(src: &str, defs: &[(&str, &str)]) -> ks_ir::Module {
    let defs: Vec<(String, String)> = defs
        .iter()
        .map(|(a, b)| (a.to_string(), b.to_string()))
        .collect();
    let prog = frontend(src, &defs).unwrap();
    let mut m = compile(&prog, &CodegenOptions::default()).unwrap();
    ks_opt::optimize_module(&mut m);
    m
}

fn state() -> DeviceState {
    DeviceState::new(DeviceConfig::tesla_c1060(), 64 << 20)
}

#[test]
fn vector_add_end_to_end() {
    let src = r#"
        __global__ void vadd(float* a, float* b, float* c, int n) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < n) { c[i] = a[i] + b[i]; }
        }
    "#;
    let m = module(src, &[]);
    let mut st = state();
    let n = 1000usize;
    let pa = st.global.alloc((n * 4) as u64).unwrap();
    let pb = st.global.alloc((n * 4) as u64).unwrap();
    let pc = st.global.alloc((n * 4) as u64).unwrap();
    let va: Vec<f32> = (0..n).map(|i| i as f32).collect();
    let vb: Vec<f32> = (0..n).map(|i| (i * 2) as f32).collect();
    st.global.write_f32_slice(pa, &va).unwrap();
    st.global.write_f32_slice(pb, &vb).unwrap();
    let report = launch(
        &mut st,
        &m,
        "vadd",
        LaunchDims::linear(8, 128),
        &[
            KArg::Ptr(pa),
            KArg::Ptr(pb),
            KArg::Ptr(pc),
            KArg::I32(n as i32),
        ],
        LaunchOptions::default(),
    )
    .unwrap();
    let out = st.global.read_f32_slice(pc, n).unwrap();
    for i in 0..n {
        assert_eq!(out[i], (i * 3) as f32, "at {i}");
    }
    assert!(report.time_ms > 0.0);
    assert!(report.regs_per_thread >= 2);
}

#[test]
fn divergent_guard_handles_partial_warps() {
    let src = r#"
        __global__ void fill(int* out, int n) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < n) { out[i] = i * 2; }
        }
    "#;
    let m = module(src, &[]);
    let mut st = state();
    let n = 77;
    let p = st.global.alloc(4 * 128).unwrap();
    launch(
        &mut st,
        &m,
        "fill",
        LaunchDims::linear(1, 128),
        &[KArg::Ptr(p), KArg::I32(n)],
        LaunchOptions::default(),
    )
    .unwrap();
    let out = st.global.read_i32_slice(p, 128).unwrap();
    for i in 0..n as usize {
        assert_eq!(out[i], i as i32 * 2);
    }
    for i in n as usize..128 {
        assert_eq!(out[i], 0, "lane {i} must be untouched");
    }
}

#[test]
fn shared_memory_reduction_with_barriers() {
    let src = r#"
        __global__ void reduce(float* in, float* out) {
            __shared__ float buf[128];
            unsigned int t = threadIdx.x;
            buf[t] = in[blockIdx.x * blockDim.x + t];
            __syncthreads();
            for (unsigned int s = 64u; s > 0u; s = s / 2) {
                if (t < s) { buf[t] += buf[t + s]; }
                __syncthreads();
            }
            if (t == 0u) { out[blockIdx.x] = buf[0]; }
        }
    "#;
    let m = module(src, &[]);
    let mut st = state();
    let n = 512;
    let pin = st.global.alloc(n * 4).unwrap();
    let pout = st.global.alloc(4 * 4).unwrap();
    let vals: Vec<f32> = (0..n).map(|i| (i % 7) as f32).collect();
    st.global.write_f32_slice(pin, &vals).unwrap();
    launch(
        &mut st,
        &m,
        "reduce",
        LaunchDims::linear(4, 128),
        &[KArg::Ptr(pin), KArg::Ptr(pout)],
        LaunchOptions::default(),
    )
    .unwrap();
    let out = st.global.read_f32_slice(pout, 4).unwrap();
    for b in 0..4usize {
        let expect: f32 = vals[b * 128..(b + 1) * 128].iter().sum();
        assert_eq!(out[b], expect, "block {b}");
    }
}

#[test]
fn grid_y_dimension_and_builtins() {
    let src = r#"
        __global__ void idx(int* out, int w) {
            int x = blockIdx.x * blockDim.x + threadIdx.x;
            int y = blockIdx.y * blockDim.y + threadIdx.y;
            out[y * w + x] = y * 100 + x;
        }
    "#;
    let m = module(src, &[]);
    let mut st = state();
    let (w, h) = (16i32, 8i32);
    let p = st.global.alloc((w * h * 4) as u64).unwrap();
    launch(
        &mut st,
        &m,
        "idx",
        LaunchDims {
            grid: (2, 2, 1),
            block: (8, 4, 1),
            dynamic_shared: 0,
        },
        &[KArg::Ptr(p), KArg::I32(w)],
        LaunchOptions::default(),
    )
    .unwrap();
    let out = st.global.read_i32_slice(p, (w * h) as usize).unwrap();
    for y in 0..h {
        for x in 0..w {
            assert_eq!(out[(y * w + x) as usize], y * 100 + x);
        }
    }
}

#[test]
fn specialized_kernel_is_faster_and_leaner() {
    // The central claim, end to end: the specialized build of the same
    // source beats the run-time-evaluated build and uses no more registers.
    let src = r#"
        #ifndef LOOP_COUNT
        #define LOOP_COUNT loopCount
        #endif
        #ifndef STRIDE
        #define STRIDE stride
        #endif
        __global__ void acc(float* in, float* out, int stride, int loopCount) {
            unsigned int off = blockIdx.x * blockDim.x + threadIdx.x;
            float acc = 0.0f;
            for (int i = 0; i < LOOP_COUNT; i++) {
                acc += in[off + i * STRIDE];
            }
            out[off] = acc;
        }
    "#;
    let m_re = module(src, &[]);
    let m_sk = module(src, &[("LOOP_COUNT", "16"), ("STRIDE", "256")]);
    let mut st = state();
    let n = 256 * 17;
    let pin = st.global.alloc(n * 4).unwrap();
    let pout = st.global.alloc(256 * 4).unwrap();
    let vals: Vec<f32> = (0..n).map(|i| (i % 5) as f32).collect();
    st.global.write_f32_slice(pin, &vals).unwrap();
    let args = [
        KArg::Ptr(pin),
        KArg::Ptr(pout),
        KArg::I32(256),
        KArg::I32(16),
    ];
    let dims = LaunchDims::linear(2, 128);
    let r_re = launch(&mut st, &m_re, "acc", dims, &args, LaunchOptions::default()).unwrap();
    let out_re = st.global.read_f32_slice(pout, 256).unwrap();
    let r_sk = launch(&mut st, &m_sk, "acc", dims, &args, LaunchOptions::default()).unwrap();
    let out_sk = st.global.read_f32_slice(pout, 256).unwrap();
    assert_eq!(out_re, out_sk, "RE and SK must compute identical results");
    assert!(
        r_sk.time_ms < r_re.time_ms,
        "specialized ({:.4} ms) must beat run-time evaluated ({:.4} ms)",
        r_sk.time_ms,
        r_re.time_ms
    );
    assert!(
        r_sk.stats.dyn_insts < r_re.stats.dyn_insts,
        "unrolling must remove loop overhead"
    );
    assert!(r_sk.regs_per_thread <= r_re.regs_per_thread);
}

#[test]
fn launch_errors_reported() {
    let src = "__global__ void k(int* o) { o[0] = 1; }";
    let m = module(src, &[]);
    let mut st = state();
    // Wrong arg count.
    assert!(launch(
        &mut st,
        &m,
        "k",
        LaunchDims::linear(1, 32),
        &[],
        LaunchOptions::default()
    )
    .is_err());
    // Unknown kernel.
    assert!(launch(
        &mut st,
        &m,
        "missing",
        LaunchDims::linear(1, 32),
        &[KArg::Ptr(0)],
        LaunchOptions::default()
    )
    .is_err());
    // Out-of-bounds store.
    assert!(launch(
        &mut st,
        &m,
        "k",
        LaunchDims::linear(1, 32),
        &[KArg::Ptr(0x10)],
        LaunchOptions::default()
    )
    .is_err());
}

#[test]
fn local_memory_array_roundtrip() {
    let src = r#"
        __global__ void localarr(int* out, int n) {
            int buf[8];
            for (int i = 0; i < n; i++) { buf[i & 7] = i + (int)threadIdx.x; }
            out[threadIdx.x] = buf[(n - 1) & 7];
        }
    "#;
    let m = module(src, &[]);
    let mut st = state();
    let p = st.global.alloc(64 * 4).unwrap();
    launch(
        &mut st,
        &m,
        "localarr",
        LaunchDims::linear(1, 64),
        &[KArg::Ptr(p), KArg::I32(5)],
        LaunchOptions::default(),
    )
    .unwrap();
    let out = st.global.read_i32_slice(p, 64).unwrap();
    for (t, v) in out.iter().enumerate() {
        assert_eq!(*v, 4 + t as i32);
    }
}

#[test]
fn constant_memory_visible_to_kernel() {
    let src = r#"
        __constant__ float coef[4];
        __global__ void scale(float* out) {
            out[threadIdx.x] = coef[threadIdx.x & 3u] * 2.0f;
        }
    "#;
    let m = module(src, &[]);
    let mut st = state();
    let coef = [1.0f32, 2.0, 3.0, 4.0];
    let bytes: Vec<u8> = coef.iter().flat_map(|v| v.to_le_bytes()).collect();
    st.set_const(&m, "coef", &bytes).unwrap();
    let p = st.global.alloc(8 * 4).unwrap();
    launch(
        &mut st,
        &m,
        "scale",
        LaunchDims::linear(1, 8),
        &[KArg::Ptr(p)],
        LaunchOptions::default(),
    )
    .unwrap();
    let out = st.global.read_f32_slice(p, 8).unwrap();
    assert_eq!(out, vec![2.0, 4.0, 6.0, 8.0, 2.0, 4.0, 6.0, 8.0]);
}

#[test]
fn nested_divergence_reconverges() {
    let src = r#"
        __global__ void nest(int* out) {
            int t = (int)threadIdx.x;
            int v = 0;
            if (t < 16) {
                if (t < 8) { v = 1; } else { v = 2; }
            } else {
                if (t < 24) { v = 3; } else { v = 4; }
            }
            out[t] = v;
        }
    "#;
    let m = module(src, &[]);
    let mut st = state();
    let p = st.global.alloc(32 * 4).unwrap();
    launch(
        &mut st,
        &m,
        "nest",
        LaunchDims::linear(1, 32),
        &[KArg::Ptr(p)],
        LaunchOptions::default(),
    )
    .unwrap();
    let out = st.global.read_i32_slice(p, 32).unwrap();
    for (t, v) in out.iter().enumerate() {
        let expect = match t {
            0..=7 => 1,
            8..=15 => 2,
            16..=23 => 3,
            _ => 4,
        };
        assert_eq!(*v, expect, "thread {t}");
    }
}

#[test]
fn uncoalesced_access_costs_more_transactions() {
    let src = r#"
        #ifndef STRIDE
        #define STRIDE stride
        #endif
        __global__ void touch(float* in, float* out, int stride) {
            unsigned int i = blockIdx.x * blockDim.x + threadIdx.x;
            out[i] = in[i * STRIDE];
        }
    "#;
    let mut st = state();
    let n = 128u64;
    let pin = st.global.alloc(n * 64 * 4).unwrap();
    let pout = st.global.alloc(n * 4).unwrap();
    let m1 = module(src, &[("STRIDE", "1")]);
    let m32 = module(src, &[("STRIDE", "32")]);
    let dims = LaunchDims::linear(1, 128);
    let r1 = launch(
        &mut st,
        &m1,
        "touch",
        dims,
        &[KArg::Ptr(pin), KArg::Ptr(pout), KArg::I32(1)],
        LaunchOptions::default(),
    )
    .unwrap();
    let r32 = launch(
        &mut st,
        &m32,
        "touch",
        dims,
        &[KArg::Ptr(pin), KArg::Ptr(pout), KArg::I32(32)],
        LaunchOptions::default(),
    )
    .unwrap();
    assert!(
        r32.stats.global_transactions > 4 * r1.stats.global_transactions,
        "strided: {} vs unit: {}",
        r32.stats.global_transactions,
        r1.stats.global_transactions
    );
    assert!(r32.time_ms > r1.time_ms);
}

#[test]
fn c2070_outruns_c1060_on_compute_bound_kernel() {
    let src = r#"
        __global__ void fma(float* out, float a) {
            float x = (float)threadIdx.x;
            for (int i = 0; i < 64; i++) { x = x * a + 0.5f; }
            out[blockIdx.x * blockDim.x + threadIdx.x] = x;
        }
    "#;
    let m = module(src, &[]);
    let mut times = Vec::new();
    for dev in [DeviceConfig::tesla_c1060(), DeviceConfig::tesla_c2070()] {
        let mut st = DeviceState::new(dev, 64 << 20);
        let p = st.global.alloc(4 * 256 * 128).unwrap();
        let r = launch(
            &mut st,
            &m,
            "fma",
            LaunchDims::linear(256, 128),
            &[KArg::Ptr(p), KArg::F32(1.0001)],
            LaunchOptions::default(),
        )
        .unwrap();
        times.push(r.time_ms);
    }
    assert!(
        times[1] < times[0],
        "C2070 {} should beat C1060 {}",
        times[1],
        times[0]
    );
}

#[test]
fn per_lane_variable_trip_counts() {
    // Each lane loops a different number of times (divergent loop exit).
    let src = r#"
        __global__ void varloop(int* out) {
            int t = (int)threadIdx.x;
            int acc = 0;
            for (int i = 0; i < t; i++) { acc += i; }
            out[t] = acc;
        }
    "#;
    let m = module(src, &[]);
    let mut st = state();
    let p = st.global.alloc(64 * 4).unwrap();
    launch(
        &mut st,
        &m,
        "varloop",
        LaunchDims::linear(1, 64),
        &[KArg::Ptr(p)],
        LaunchOptions::default(),
    )
    .unwrap();
    let out = st.global.read_i32_slice(p, 64).unwrap();
    for (t, v) in out.iter().enumerate() {
        let expect: i32 = (0..t as i32).sum();
        assert_eq!(*v, expect, "lane {t}");
    }
}

#[test]
fn break_and_continue_divergent() {
    let src = r#"
        __global__ void bc(int* out) {
            int t = (int)threadIdx.x;
            int acc = 0;
            for (int i = 0; i < 16; i++) {
                if (i == t) { continue; }
                if (i > t + 4) { break; }
                acc += 1;
            }
            out[t] = acc;
        }
    "#;
    let m = module(src, &[]);
    let mut st = state();
    let p = st.global.alloc(32 * 4).unwrap();
    launch(
        &mut st,
        &m,
        "bc",
        LaunchDims::linear(1, 32),
        &[KArg::Ptr(p)],
        LaunchOptions::default(),
    )
    .unwrap();
    let out = st.global.read_i32_slice(p, 32).unwrap();
    for (t, v) in out.iter().enumerate() {
        // Host reimplementation of the same loop.
        let mut acc = 0;
        for i in 0..16i32 {
            if i == t as i32 {
                continue;
            }
            if i > t as i32 + 4 {
                break;
            }
            acc += 1;
        }
        assert_eq!(*v, acc, "lane {t}");
    }
}

#[test]
fn mul24_and_intrinsics_functional() {
    let src = r#"
        __global__ void intr(int* out, float* fout) {
            int t = (int)threadIdx.x;
            out[t] = __mul24(t + 100, 3);
            fout[t] = fmaxf(sqrtf((float)(t * t)), fabsf((float)(-t)));
        }
    "#;
    let m = module(src, &[]);
    let mut st = state();
    let p = st.global.alloc(32 * 4).unwrap();
    let pf = st.global.alloc(32 * 4).unwrap();
    launch(
        &mut st,
        &m,
        "intr",
        LaunchDims::linear(1, 32),
        &[KArg::Ptr(p), KArg::Ptr(pf)],
        LaunchOptions::default(),
    )
    .unwrap();
    let out = st.global.read_i32_slice(p, 32).unwrap();
    let fout = st.global.read_f32_slice(pf, 32).unwrap();
    for t in 0..32 {
        assert_eq!(out[t], (t as i32 + 100) * 3);
        assert_eq!(fout[t], t as f32);
    }
}

#[test]
fn bank_conflicts_slow_shared_access() {
    // Stride-16 word accesses on the C1060's 16 banks serialize 16-way.
    let src = r#"
        #ifndef STRIDE
        #define STRIDE 1
        #endif
        __global__ void sh(float* out) {
            __shared__ float buf[1024];
            int t = (int)threadIdx.x;
            buf[(t * STRIDE) & 1023] = (float)t;
            __syncthreads();
            float acc = 0.0f;
            for (int i = 0; i < 32; i++) {
                acc += buf[((t + i) * STRIDE) & 1023];
            }
            out[t] = acc;
        }
    "#;
    let mut times = Vec::new();
    for stride in ["1", "16"] {
        let m = module(src, &[("STRIDE", stride)]);
        let mut st = state();
        let p = st.global.alloc(64 * 4).unwrap();
        let r = launch(
            &mut st,
            &m,
            "sh",
            LaunchDims::linear(8, 64),
            &[KArg::Ptr(p)],
            LaunchOptions::default(),
        )
        .unwrap();
        times.push((r.time_ms, r.stats.bank_conflict_extra));
    }
    assert_eq!(times[0].1, 0, "unit stride must be conflict-free");
    assert!(times[1].1 > 0, "stride 16 must conflict");
    assert!(
        times[1].0 > times[0].0 * 1.3,
        "conflicts must cost time: {times:?}"
    );
}

#[test]
fn coalescing_rules_differ_between_generations() {
    // A 64-byte-aligned, 16-float-strided pattern: fine per half-warp on
    // CC1.3 (one 64B segment each), two 128B lines per warp on CC2.0 —
    // exercised via reported transaction counts.
    let src = r#"
        __global__ void touch(float* in, float* out) {
            unsigned int i = blockIdx.x * blockDim.x + threadIdx.x;
            out[i] = in[i * 2u];
        }
    "#;
    let mut per_dev = Vec::new();
    for dev in [DeviceConfig::tesla_c1060(), DeviceConfig::tesla_c2070()] {
        let m = module(src, &[]);
        let mut st = DeviceState::new(dev, 16 << 20);
        let pin = st.global.alloc(4 * 256 * 2).unwrap();
        let pout = st.global.alloc(4 * 256).unwrap();
        let r = launch(
            &mut st,
            &m,
            "touch",
            LaunchDims::linear(2, 128),
            &[KArg::Ptr(pin), KArg::Ptr(pout)],
            LaunchOptions::default(),
        )
        .unwrap();
        per_dev.push(r.stats.global_transactions);
    }
    // Stride-2 float reads: C1060 half-warp = 32 floats·stride2 = 128B = 2
    // segments of 64B per half-warp (4/warp); C2070 = 2 lines of 128B per
    // warp. The C1060 does more, smaller transactions.
    assert!(
        per_dev[0] > per_dev[1],
        "C1060 {} vs C2070 {}",
        per_dev[0],
        per_dev[1]
    );
}

#[test]
fn dynamic_shared_memory_allocation() {
    // The same kernel uses statically declared shared plus a dynamic
    // window provided at launch (GPU-PF's dynamic shared int parameter).
    let src = r#"
        __global__ void dyn(float* out, int n) {
            __shared__ float fixed[32];
            int t = (int)threadIdx.x;
            fixed[t & 31] = (float)t;
            __syncthreads();
            out[t] = fixed[(t + 1) & 31];
        }
    "#;
    let m = module(src, &[]);
    let mut st = state();
    let p = st.global.alloc(64 * 4).unwrap();
    let r = launch(
        &mut st,
        &m,
        "dyn",
        LaunchDims {
            grid: (1, 1, 1),
            block: (32, 1, 1),
            dynamic_shared: 4096,
        },
        &[KArg::Ptr(p), KArg::I32(32)],
        LaunchOptions::default(),
    )
    .unwrap();
    assert_eq!(r.shared_per_block, 32 * 4 + 4096);
    let out = st.global.read_f32_slice(p, 32).unwrap();
    for t in 0..32 {
        assert_eq!(out[t], ((t + 1) % 32) as f32);
    }
}

#[test]
fn occupancy_reported_matches_calculator() {
    let src = r#"
        __global__ void k(float* out) {
            __shared__ float buf[512];
            int t = (int)threadIdx.x;
            buf[t & 511] = 1.0f;
            __syncthreads();
            out[t] = buf[0];
        }
    "#;
    let m = module(src, &[]);
    let mut st = state();
    let p = st.global.alloc(4 * 256).unwrap();
    let r = launch(
        &mut st,
        &m,
        "k",
        LaunchDims::linear(2, 128),
        &[KArg::Ptr(p)],
        LaunchOptions::default(),
    )
    .unwrap();
    let expect = ks_sim::occupancy(
        &DeviceConfig::tesla_c1060(),
        128,
        r.regs_per_thread,
        r.shared_per_block,
    );
    assert_eq!(r.occupancy, expect);
}

#[test]
fn event_and_hybrid_timing_agree_on_shape() {
    // The two timing modes are different models; they must agree on the
    // qualitative results (RE vs SK ordering) and stay within a small
    // factor of each other on a mixed compute/memory kernel.
    let src = r#"
        #ifndef LOOP_COUNT
        #define LOOP_COUNT loopCount
        #endif
        __global__ void work(float* in, float* out, int loopCount) {
            unsigned int i = blockIdx.x * blockDim.x + threadIdx.x;
            float acc = 0.0f;
            for (int k = 0; k < LOOP_COUNT; k++) {
                acc = acc * 1.5f + in[(i + (unsigned int)k * 64u) & 4095u];
            }
            out[i] = acc;
        }
    "#;
    let mut st = state();
    let pin = st.global.alloc(4096 * 4).unwrap();
    let pout = st.global.alloc(4096 * 4).unwrap();
    let args = [KArg::Ptr(pin), KArg::Ptr(pout), KArg::I32(24)];
    let dims = LaunchDims::linear(32, 128);
    let mut results = Vec::new();
    for defs in [vec![], vec![("LOOP_COUNT", "24")]] {
        let m = module(src, &defs);
        let mut pair = Vec::new();
        for event in [false, true] {
            let r = launch(
                &mut st,
                &m,
                "work",
                dims,
                &args,
                LaunchOptions {
                    functional: false,
                    timing_sample_blocks: 4,
                    event_timing: event,
                    ..Default::default()
                },
            )
            .unwrap();
            pair.push(r.time_ms);
        }
        results.push(pair);
    }
    let (re_h, re_e) = (results[0][0], results[0][1]);
    let (sk_h, sk_e) = (results[1][0], results[1][1]);
    assert!(sk_h < re_h, "hybrid: SK {sk_h} !< RE {re_h}");
    assert!(sk_e < re_e, "event: SK {sk_e} !< RE {re_e}");
    for (h, e) in [(re_h, re_e), (sk_h, sk_e)] {
        let ratio = h.max(e) / h.min(e);
        assert!(ratio < 4.0, "models diverge: hybrid {h} vs event {e}");
    }
}

#[test]
fn event_timing_respects_barriers() {
    // The reduction kernel must produce identical results and a sane time
    // under event scheduling (barrier release across interleaved warps).
    let src = r#"
        __global__ void reduce(float* in, float* out) {
            __shared__ float buf[128];
            unsigned int t = threadIdx.x;
            buf[t] = in[blockIdx.x * blockDim.x + t];
            __syncthreads();
            for (unsigned int s = 64u; s > 0u; s = s / 2) {
                if (t < s) { buf[t] += buf[t + s]; }
                __syncthreads();
            }
            if (t == 0u) { out[blockIdx.x] = buf[0]; }
        }
    "#;
    let m = module(src, &[]);
    let mut st = state();
    let n = 512;
    let pin = st.global.alloc(n * 4).unwrap();
    let pout = st.global.alloc(4 * 4).unwrap();
    let vals: Vec<f32> = (0..n).map(|i| (i % 11) as f32).collect();
    st.global.write_f32_slice(pin, &vals).unwrap();
    let r = launch(
        &mut st,
        &m,
        "reduce",
        LaunchDims::linear(4, 128),
        &[KArg::Ptr(pin), KArg::Ptr(pout)],
        LaunchOptions {
            functional: true,
            timing_sample_blocks: 4,
            event_timing: true,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(r.time_ms > 0.0);
    let out = st.global.read_f32_slice(pout, 4).unwrap();
    for b in 0..4usize {
        let expect: f32 = vals[b * 128..(b + 1) * 128].iter().sum();
        assert_eq!(out[b], expect);
    }
}

#[test]
fn texture_fetch_end_to_end() {
    // tex1Dfetch through a bound texture reference: functional results,
    // cached-bandwidth accounting, and the unbound-texture trap.
    let src = r#"
        texture<float> texSrc;
        __global__ void gather(float* out, int n) {
            int i = (int)(blockIdx.x * blockDim.x + threadIdx.x);
            if (i < n) {
                float a = tex1Dfetch(texSrc, i);
                float b = tex1Dfetch(texSrc, (i + 1) % n);
                out[i] = a + b;
            }
        }
    "#;
    let m = module(src, &[]);
    assert_eq!(m.textures, vec!["texSrc".to_string()]);
    let mut st = state();
    let n = 128usize;
    let p_src = st.global.alloc((n * 4) as u64).unwrap();
    let p_out = st.global.alloc((n * 4) as u64).unwrap();
    let vals: Vec<f32> = (0..n).map(|i| i as f32 * 0.25).collect();
    st.global.write_f32_slice(p_src, &vals).unwrap();

    // Unbound texture must trap.
    let err = launch(
        &mut st,
        &m,
        "gather",
        LaunchDims::linear(1, 128),
        &[KArg::Ptr(p_out), KArg::I32(n as i32)],
        LaunchOptions::default(),
    );
    assert!(err.is_err(), "fetch through an unbound texture must fail");

    st.bind_texture("texSrc", p_src);
    let r = launch(
        &mut st,
        &m,
        "gather",
        LaunchDims::linear(1, 128),
        &[KArg::Ptr(p_out), KArg::I32(n as i32)],
        LaunchOptions::default(),
    )
    .unwrap();
    let out = st.global.read_f32_slice(p_out, n).unwrap();
    for i in 0..n {
        assert_eq!(out[i], vals[i] + vals[(i + 1) % n], "at {i}");
    }
    // The overlapping b-fetch re-reads lines a already touched: the reuse
    // cache keeps DRAM bytes well below 2 fetches' worth.
    assert!(r.stats.global_loads >= 2);
    assert!(
        r.stats.global_bytes <= (n as u64 * 4) * 3,
        "texture cache should absorb the overlapping fetch: {} B",
        r.stats.global_bytes
    );
}

#[test]
fn tex_fetch_specializes_like_any_read() {
    // A texture-read loop unrolls when COUNT is specialized; results agree
    // between RE and SK and with the host.
    let src = r#"
        texture<float> t;
        #ifndef COUNT
        #define COUNT count
        #endif
        __global__ void sum_tex(float* out, int count) {
            float acc = 0.0f;
            for (int i = 0; i < COUNT; i++) {
                acc += tex1Dfetch(t, (int)threadIdx.x + i);
            }
            out[threadIdx.x] = acc;
        }
    "#;
    let mut st = state();
    let p_src = st.global.alloc(4 * 256).unwrap();
    let p_out = st.global.alloc(4 * 64).unwrap();
    let vals: Vec<f32> = (0..256).map(|i| (i % 7) as f32).collect();
    st.global.write_f32_slice(p_src, &vals).unwrap();
    st.bind_texture("t", p_src);
    let mut outs = Vec::new();
    let mut times = Vec::new();
    for defs in [vec![], vec![("COUNT", "8")]] {
        let m = module(src, &defs);
        let r = launch(
            &mut st,
            &m,
            "sum_tex",
            LaunchDims::linear(1, 64),
            &[KArg::Ptr(p_out), KArg::I32(8)],
            LaunchOptions::default(),
        )
        .unwrap();
        outs.push(st.global.read_f32_slice(p_out, 64).unwrap());
        times.push(r.time_ms);
    }
    assert_eq!(outs[0], outs[1]);
    for (t, v) in outs[0].iter().enumerate() {
        let expect: f32 = (0..8).map(|i| vals[t + i]).sum();
        assert_eq!(*v, expect, "thread {t}");
    }
    assert!(
        times[1] < times[0],
        "specialized texture loop must unroll and win"
    );
}

#[test]
fn numeric_edge_semantics_match_cuda() {
    // i32 overflow wraps; INT_MIN / -1 wraps (no trap); float NaN
    // comparisons are all-false except !=; fminf/fmaxf prefer the number.
    let src = r#"
        __global__ void edges(int* iout, float* fout, float nan) {
            int big = 2147483647;
            iout[0] = big + 1;                  // wraps to INT_MIN
            int m = -2147483647 - 1;
            iout[1] = m / (0 - 1);              // INT_MIN / -1 wraps
            iout[2] = m % (0 - 1);              // 0
            iout[3] = (nan == nan) ? 1 : 0;     // NaN != itself
            iout[4] = (nan != nan) ? 1 : 0;
            iout[5] = (nan < 1.0f) ? 1 : 0;
            fout[0] = fminf(nan, 2.0f);
            fout[1] = fmaxf(nan, 2.0f);
        }
    "#;
    let m = module(src, &[]);
    let mut st = state();
    let pi = st.global.alloc(6 * 4).unwrap();
    let pf = st.global.alloc(2 * 4).unwrap();
    launch(
        &mut st,
        &m,
        "edges",
        LaunchDims::linear(1, 32),
        &[KArg::Ptr(pi), KArg::Ptr(pf), KArg::F32(f32::NAN)],
        LaunchOptions::default(),
    )
    .unwrap();
    let i = st.global.read_i32_slice(pi, 6).unwrap();
    assert_eq!(i[0], i32::MIN);
    assert_eq!(i[1], i32::MIN, "INT_MIN / -1 wraps on GPU");
    assert_eq!(i[2], 0);
    assert_eq!(i[3], 0, "NaN == NaN is false");
    assert_eq!(i[4], 1, "NaN != NaN is true");
    assert_eq!(i[5], 0, "NaN < x is false");
    let f = st.global.read_f32_slice(pf, 2).unwrap();
    assert_eq!(f[0], 2.0, "fminf(NaN, x) = x");
    assert_eq!(f[1], 2.0, "fmaxf(NaN, x) = x");
}

/// Serializes the tests that install a process-global fault plan so
/// they cannot clobber each other's plan mid-launch.
static FAULT_PLAN_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn silent_flip_corrupts_one_output_bit_without_failing_the_launch() {
    let _guard = FAULT_PLAN_LOCK.lock().unwrap();
    let src = r#"
        __global__ void flip_victim(int* out, int n) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < n) { out[i] = i * 3; }
        }
    "#;
    let m = module(src, &[]);
    let mut st = state();
    let n = 256usize;
    let p = st.global.alloc((n * 4) as u64).unwrap();
    let dims = LaunchDims::linear(2, 128);
    let args = [KArg::Ptr(p), KArg::I32(n as i32)];
    let opts = LaunchOptions::default();
    launch(&mut st, &m, "flip_victim", dims, &args, opts).unwrap();
    let clean = st.global.read_i32_slice(p, n).unwrap();

    // A plan scoped to this kernel name so concurrently running tests
    // in this binary are never faulted. nth(2): the next launch is
    // spared, the one after is corrupted.
    use ks_fault::{FaultKind, FaultPlan, FaultRule, Target};
    let plan =
        std::sync::Arc::new(FaultPlan::new(1234).rule(
            FaultRule::new(FaultKind::SilentFlip, Target::Kernel("flip_victim".into())).nth(2),
        ));
    ks_fault::install(plan.clone());
    launch(&mut st, &m, "flip_victim", dims, &args, opts).unwrap();
    assert_eq!(st.global.read_i32_slice(p, n).unwrap(), clean);
    // The corrupted launch still reports success — that is the point.
    launch(&mut st, &m, "flip_victim", dims, &args, opts).unwrap();
    ks_fault::clear();

    let dirty = st.global.read_i32_slice(p, n).unwrap();
    let flipped_bits: u32 = clean
        .iter()
        .zip(&dirty)
        .map(|(a, b)| (a ^ b).count_ones())
        .sum();
    assert_eq!(flipped_bits, 1, "exactly one bit must differ");
    assert!(plan.event_log().contains("site=launch kind=silent-flip"));

    // Replays are byte-exact: same plan, same call sequence, same bit.
    let plan2 =
        std::sync::Arc::new(FaultPlan::new(1234).rule(
            FaultRule::new(FaultKind::SilentFlip, Target::Kernel("flip_victim".into())).nth(2),
        ));
    ks_fault::install(plan2);
    launch(&mut st, &m, "flip_victim", dims, &args, opts).unwrap();
    launch(&mut st, &m, "flip_victim", dims, &args, opts).unwrap();
    ks_fault::clear();
    assert_eq!(st.global.read_i32_slice(p, n).unwrap(), dirty);
}

#[test]
fn keyed_launch_scopes_flips_to_one_variant() {
    let _guard = FAULT_PLAN_LOCK.lock().unwrap();
    let src = r#"
        __global__ void keyed_victim(int* out) {
            out[threadIdx.x] = (int)threadIdx.x;
        }
    "#;
    let m = module(src, &[]);
    let mut st = state();
    let p = st.global.alloc(32 * 4).unwrap();
    let dims = LaunchDims::linear(1, 32);
    let args = [KArg::Ptr(p)];
    let opts = LaunchOptions::default();
    use ks_fault::{FaultKind, FaultPlan, FaultRule, Target};
    let plan = std::sync::Arc::new(
        FaultPlan::new(7)
            .rule(FaultRule::new(FaultKind::SilentFlip, Target::Key(0xFEED)).persistent()),
    );
    ks_fault::install(plan.clone());
    // Unkeyed launch and a different key: spared.
    launch(&mut st, &m, "keyed_victim", dims, &args, opts).unwrap();
    launch_keyed(&mut st, &m, "keyed_victim", dims, &args, opts, 0xBEEF, "").unwrap();
    let clean = st.global.read_i32_slice(p, 32).unwrap();
    assert_eq!(plan.injected_count(), 0);
    // The targeted variant: corrupted (still Ok).
    launch_keyed(&mut st, &m, "keyed_victim", dims, &args, opts, 0xFEED, "").unwrap();
    ks_fault::clear();
    assert_eq!(plan.injected_count(), 1);
    assert_ne!(st.global.read_i32_slice(p, 32).unwrap(), clean);
}
