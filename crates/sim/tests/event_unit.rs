//! Direct unit tests of the event-driven SM scheduler (`ks_sim::event`).

use ks_codegen::{compile, CodegenOptions};
use ks_lang::frontend;
use ks_sim::interp::GlobalView;
use ks_sim::{run_sm_round, DeviceConfig, GLOBAL_BASE};

fn module(src: &str, defs: &[(&str, &str)]) -> ks_ir::Module {
    let defs: Vec<(String, String)> = defs
        .iter()
        .map(|(a, b)| (a.to_string(), b.to_string()))
        .collect();
    let prog = frontend(src, &defs).unwrap();
    let mut m = compile(&prog, &CodegenOptions::default()).unwrap();
    ks_opt::optimize_module(&mut m);
    m
}

/// Marshal one pointer + one i32 into the param layout of a 2-arg kernel.
fn params_ptr_i32(f: &ks_ir::Function, p: u64, n: i32) -> Vec<u8> {
    let mut buf = vec![0u8; f.param_bytes() as usize];
    buf[f.params[0].offset as usize..f.params[0].offset as usize + 8]
        .copy_from_slice(&p.to_le_bytes());
    buf[f.params[1].offset as usize..f.params[1].offset as usize + 4]
        .copy_from_slice(&n.to_le_bytes());
    buf
}

#[test]
fn event_round_executes_functionally_and_counts_cycles() {
    let src = r#"
        __global__ void fill(int* out, int base) {
            int i = (int)(blockIdx.x * blockDim.x + threadIdx.x);
            out[i] = base + i;
        }
    "#;
    let m = module(src, &[]);
    let f = m.function("fill").unwrap();
    // A bare global buffer addressed from GLOBAL_BASE.
    let mut heap = vec![0u8; 64 * 1024];
    let p = GLOBAL_BASE;
    let params = params_ptr_i32(f, p, 1000);
    let view = GlobalView::new(&mut heap);
    let blocks: Vec<(u32, u32, u32)> = (0..4).map(|b| (b, 0, 0)).collect();
    let round = run_sm_round(
        &DeviceConfig::tesla_c1060(),
        f,
        view,
        &[],
        &params,
        (64, 1, 1),
        (4, 1, 1),
        &blocks,
        0,
        &[],
    )
    .unwrap();
    assert!(round.cycles > 0);
    // Functional outputs for all 4 resident blocks, interleaved execution.
    for i in 0..(4 * 64) {
        let off = i * 4;
        let v = i32::from_le_bytes(heap[off..off + 4].try_into().unwrap());
        assert_eq!(v, 1000 + i as i32, "element {i}");
    }
    // 2 warps/block × 4 blocks, each storing once.
    assert_eq!(round.stats.global_stores, 8);
}

#[test]
fn more_resident_blocks_hide_latency() {
    // Per-block cycles with 1 resident block vs 8: throughput overlap must
    // make the 8-block round take far less than 8× the single-block round.
    let src = r#"
        __global__ void touch(float* out, int n) {
            int i = (int)(blockIdx.x * blockDim.x + threadIdx.x);
            float acc = 0.0f;
            for (int k = 0; k < 16; k++) {
                acc += out[(i + k * 32) % n];
            }
            out[i] = acc;
        }
    "#;
    let m = module(src, &[]);
    let f = m.function("touch").unwrap();
    let dev = DeviceConfig::tesla_c1060();
    let mut cycles = Vec::new();
    for nblocks in [1u32, 8] {
        let mut heap = vec![0u8; 1 << 20];
        let params = params_ptr_i32(f, GLOBAL_BASE, 4096);
        let view = GlobalView::new(&mut heap);
        let blocks: Vec<(u32, u32, u32)> = (0..nblocks).map(|b| (b, 0, 0)).collect();
        let round = run_sm_round(
            &dev,
            f,
            view,
            &[],
            &params,
            (32, 1, 1),
            (8, 1, 1),
            &blocks,
            0,
            &[],
        )
        .unwrap();
        cycles.push(round.cycles as f64);
    }
    let scaling = cycles[1] / cycles[0];
    assert!(
        scaling < 5.0,
        "8 resident blocks should overlap: {}x vs 8x serial",
        scaling
    );
    assert!(scaling > 1.0, "more work cannot be free: {scaling}");
}

#[test]
fn barrier_release_across_interleaved_warps() {
    // A two-phase shared-memory exchange: thread t writes slot t, reads
    // slot (t+1)%N after the barrier. Any mis-ordered release corrupts it.
    let src = r#"
        __global__ void exchange(int* out, int n) {
            __shared__ int buf[64];
            int t = (int)threadIdx.x;
            buf[t] = t * 10 + (int)blockIdx.x;
            __syncthreads();
            out[(int)blockIdx.x * 64 + t] = buf[(t + 1) & 63];
        }
    "#;
    let m = module(src, &[]);
    let f = m.function("exchange").unwrap();
    let mut heap = vec![0u8; 1 << 16];
    let params = params_ptr_i32(f, GLOBAL_BASE, 0);
    let view = GlobalView::new(&mut heap);
    let blocks: Vec<(u32, u32, u32)> = (0..2).map(|b| (b, 0, 0)).collect();
    run_sm_round(
        &DeviceConfig::tesla_c2070(),
        f,
        view,
        &[],
        &params,
        (64, 1, 1),
        (2, 1, 1),
        &blocks,
        0,
        &[],
    )
    .unwrap();
    for b in 0..2usize {
        for t in 0..64usize {
            let off = (b * 64 + t) * 4;
            let v = i32::from_le_bytes(heap[off..off + 4].try_into().unwrap());
            let expect = ((t + 1) % 64) as i32 * 10 + b as i32;
            assert_eq!(v, expect, "block {b} thread {t}");
        }
    }
}
