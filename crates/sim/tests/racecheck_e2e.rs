//! End-to-end tests for the dynamic sanitizers: shared-memory racecheck
//! and strict barrier divergence, both behind `LaunchOptions` flags.

#![allow(clippy::needless_range_loop)]

use ks_codegen::{compile, CodegenOptions};
use ks_lang::frontend;
use ks_sim::*;

fn module(src: &str, defs: &[(&str, &str)]) -> ks_ir::Module {
    let defs: Vec<(String, String)> = defs
        .iter()
        .map(|(a, b)| (a.to_string(), b.to_string()))
        .collect();
    let prog = frontend(src, &defs).unwrap();
    let mut m = compile(&prog, &CodegenOptions::default()).unwrap();
    ks_opt::optimize_module(&mut m);
    m
}

fn state() -> DeviceState {
    DeviceState::new(DeviceConfig::tesla_c2070(), 16 << 20)
}

const RACY: &str = r#"
    __global__ void racy(float* a, float* out) {
        __shared__ float s[64];
        int t = threadIdx.x;
        s[t] = a[t];
        out[t] = s[(t + 32) & 63];
    }
"#;

#[test]
fn racecheck_flags_cross_warp_race() {
    let m = module(RACY, &[]);
    let mut st = state();
    let pa = st.global.alloc(64 * 4).unwrap();
    let po = st.global.alloc(64 * 4).unwrap();
    st.global.write_f32_slice(pa, &[1.0; 64]).unwrap();
    let err = launch(
        &mut st,
        &m,
        "racy",
        LaunchDims::linear(1, 64),
        &[KArg::Ptr(pa), KArg::Ptr(po)],
        LaunchOptions {
            racecheck: true,
            ..Default::default()
        },
    )
    .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("racecheck:"), "unexpected error: {msg}");
    assert!(msg.contains("race"), "unexpected error: {msg}");
}

#[test]
fn racecheck_ignores_races_when_disabled() {
    // Without the flag the interpreter keeps its permissive semantics: the
    // racy kernel executes warp-by-warp and completes.
    let m = module(RACY, &[]);
    let mut st = state();
    let pa = st.global.alloc(64 * 4).unwrap();
    let po = st.global.alloc(64 * 4).unwrap();
    st.global.write_f32_slice(pa, &[1.0; 64]).unwrap();
    launch(
        &mut st,
        &m,
        "racy",
        LaunchDims::linear(1, 64),
        &[KArg::Ptr(pa), KArg::Ptr(po)],
        LaunchOptions::default(),
    )
    .unwrap();
}

#[test]
fn racecheck_passes_clean_barriered_kernel() {
    let src = r#"
        __global__ void rev(float* a, float* out) {
            __shared__ float s[64];
            int t = threadIdx.x;
            s[t] = a[t];
            __syncthreads();
            out[t] = s[63 - t];
        }
    "#;
    let m = module(src, &[]);
    let mut st = state();
    let pa = st.global.alloc(64 * 4).unwrap();
    let po = st.global.alloc(64 * 4).unwrap();
    let va: Vec<f32> = (0..64).map(|i| i as f32).collect();
    st.global.write_f32_slice(pa, &va).unwrap();
    launch(
        &mut st,
        &m,
        "rev",
        LaunchDims::linear(1, 64),
        &[KArg::Ptr(pa), KArg::Ptr(po)],
        LaunchOptions {
            racecheck: true,
            ..Default::default()
        },
    )
    .unwrap();
    let out = st.global.read_f32_slice(po, 64).unwrap();
    for i in 0..64 {
        assert_eq!(out[i], (63 - i) as f32, "at {i}");
    }
}

const DIVERGENT: &str = r#"
    __global__ void diverge(float* out) {
        int t = threadIdx.x;
        if (t < 32) { __syncthreads(); }
        out[t] = 1.0f;
    }
"#;

#[test]
fn strict_barriers_reject_partially_reached_barrier() {
    // Warp 0 (uniformly) takes the branch and waits at the barrier; warp 1
    // skips it and returns. On hardware the block hangs.
    let m = module(DIVERGENT, &[]);
    let mut st = state();
    let po = st.global.alloc(64 * 4).unwrap();
    let err = launch(
        &mut st,
        &m,
        "diverge",
        LaunchDims::linear(1, 64),
        &[KArg::Ptr(po)],
        LaunchOptions {
            strict_barriers: true,
            ..Default::default()
        },
    )
    .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("divergent barrier"), "unexpected error: {msg}");
}

#[test]
fn lenient_barriers_release_stragglers() {
    // The default keeps the historical behavior: the lone waiting warp is
    // released and the launch completes.
    let m = module(DIVERGENT, &[]);
    let mut st = state();
    let po = st.global.alloc(64 * 4).unwrap();
    launch(
        &mut st,
        &m,
        "diverge",
        LaunchDims::linear(1, 64),
        &[KArg::Ptr(po)],
        LaunchOptions::default(),
    )
    .unwrap();
    let out = st.global.read_f32_slice(po, 64).unwrap();
    assert_eq!(out, vec![1.0; 64]);
}

#[test]
fn warp_synchronous_reduction_is_race_free_at_warp_granularity() {
    // Classic tree reduction: barriers down to 32 elements, then the last
    // warp finishes lockstep without barriers. The tracker works at warp
    // granularity, so the warp-synchronous tail must NOT be flagged —
    // matching the static racecheck in ks-analysis.
    let src = r#"
        __global__ void reduce(float* in, float* out) {
            __shared__ float buf[128];
            int t = threadIdx.x;
            buf[t] = in[t];
            __syncthreads();
            for (int s = 64; s > 16; s = s / 2) {
                if (t < s) { buf[t] = buf[t] + buf[t + s]; }
                __syncthreads();
            }
            if (t < 16) {
                buf[t] = buf[t] + buf[t + 16];
                buf[t] = buf[t] + buf[t + 8];
                buf[t] = buf[t] + buf[t + 4];
                buf[t] = buf[t] + buf[t + 2];
                buf[t] = buf[t] + buf[t + 1];
            }
            if (t == 0) { out[0] = buf[0]; }
        }
    "#;
    let m = module(src, &[]);
    let mut st = state();
    let pin = st.global.alloc(128 * 4).unwrap();
    let po = st.global.alloc(4).unwrap();
    let va: Vec<f32> = (0..128).map(|i| i as f32).collect();
    st.global.write_f32_slice(pin, &va).unwrap();
    launch(
        &mut st,
        &m,
        "reduce",
        LaunchDims::linear(1, 128),
        &[KArg::Ptr(pin), KArg::Ptr(po)],
        LaunchOptions {
            racecheck: true,
            strict_barriers: true,
            ..Default::default()
        },
    )
    .unwrap();
    let out = st.global.read_f32_slice(po, 1).unwrap();
    assert_eq!(out[0], (0..128).sum::<i32>() as f32);
}
