//! `ks-store-scrub` — offline integrity maintenance for a persistent
//! artifact store.
//!
//! Walks every record under the given store root, re-validating header
//! fields *and* payload checksums (the full [`ks_store::Store::scrub`]
//! pass), and moves corrupt records into `quarantine/` where the load
//! path cannot see them — so the affected keys recompile cleanly on the
//! next warm start instead of tripping over rotted bytes. Run it from
//! cron, a fleet janitor, or CI; the in-process equivalent runs at
//! `Compiler` store-attach time via `with_store_scrubbed`.
//!
//! Exit codes: 0 = walk completed (report on stdout, quarantined count
//! included), 2 = bad usage or the walk itself failed (I/O).

use ks_store::Store;

fn main() {
    let mut args = std::env::args().skip(1);
    let root = match (args.next(), args.next()) {
        (Some(root), None) if root != "--help" && root != "-h" => root,
        _ => {
            eprintln!("usage: ks-store-scrub <store-root>");
            eprintln!(
                "  full-payload checksum walk; corrupt records move to <store-root>/quarantine/"
            );
            std::process::exit(2);
        }
    };
    let store = match Store::open(&root) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ks-store-scrub: cannot open store at {root}: {e}");
            std::process::exit(2);
        }
    };
    match store.scrub() {
        Ok(report) => println!("{report}"),
        Err(e) => {
            eprintln!("ks-store-scrub: scrub aborted: {e}");
            std::process::exit(2);
        }
    }
}
