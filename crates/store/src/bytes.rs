//! Minimal little-endian byte codec for record payloads.
//!
//! ks-core serializes `Binary` through these helpers; the store header
//! itself uses them too. The discipline mirrors the hasher's: strings
//! and byte slices are length-prefixed, enums are written as explicit
//! tags by the caller. [`ByteReader`] returns typed [`StoreError`]s —
//! truncation and malformed lengths are recoverable decode failures,
//! never panics, because payloads come from disk and may be torn or
//! tampered.

use crate::StoreError;

/// Append-only little-endian writer.
#[derive(Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Raw bytes, no length prefix (fixed-width data only).
    pub fn bytes_raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    pub fn u32(&mut self, v: u32) {
        self.bytes_raw(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.bytes_raw(&v.to_le_bytes());
    }

    pub fn u128(&mut self, v: u128) {
        self.bytes_raw(&v.to_le_bytes());
    }

    pub fn i64(&mut self, v: i64) {
        self.bytes_raw(&v.to_le_bytes());
    }

    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// f32 by IEEE-754 bit pattern.
    pub fn f32_bits(&mut self, v: f32) {
        self.u32(v.to_bits());
    }

    /// Length-prefixed byte slice.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.bytes_raw(v);
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

/// Cursor-based reader over a payload slice.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fail unless the whole payload was consumed (trailing garbage is
    /// a corruption signal, not slack).
    pub fn expect_end(&self) -> Result<(), StoreError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(StoreError::Corrupt(format!(
                "{} trailing bytes after payload",
                self.remaining()
            )))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(StoreError::Truncated {
                needed: self.pos.saturating_add(n),
                available: self.buf.len(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn array<const N: usize>(&mut self) -> Result<[u8; N], StoreError> {
        let s = self.take(N)?;
        let mut a = [0u8; N];
        a.copy_from_slice(s);
        Ok(a)
    }

    pub fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    pub fn bool(&mut self) -> Result<bool, StoreError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(StoreError::Corrupt(format!("bad bool byte {b:#04x}"))),
        }
    }

    pub fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    pub fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    pub fn u128(&mut self) -> Result<u128, StoreError> {
        Ok(u128::from_le_bytes(self.array()?))
    }

    pub fn i64(&mut self) -> Result<i64, StoreError> {
        Ok(i64::from_le_bytes(self.array()?))
    }

    pub fn usize(&mut self) -> Result<usize, StoreError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| StoreError::Corrupt(format!("length {v} exceeds usize")))
    }

    pub fn f32_bits(&mut self) -> Result<f32, StoreError> {
        Ok(f32::from_bits(self.u32()?))
    }

    /// Length-prefixed byte slice. The declared length is bounded by
    /// the bytes actually remaining, so a corrupted length field fails
    /// with `Truncated` instead of attempting a huge allocation.
    pub fn bytes(&mut self) -> Result<&'a [u8], StoreError> {
        let n = self.usize()?;
        self.take(n)
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, StoreError> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec())
            .map_err(|e| StoreError::Corrupt(format!("invalid utf-8 string: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_reader_roundtrip() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.bool(true);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX);
        w.i64(-42);
        w.f32_bits(1.5);
        w.f32_bits(f32::NAN);
        w.str("héllo");
        w.bytes(b"\x00\x01\x02");
        let buf = w.into_vec();
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.f32_bits().unwrap(), 1.5);
        assert!(r.f32_bits().unwrap().is_nan());
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.bytes().unwrap(), b"\x00\x01\x02");
        r.expect_end().unwrap();
    }

    #[test]
    fn truncated_reads_are_typed_errors() {
        let mut w = ByteWriter::new();
        w.u32(5);
        let buf = w.into_vec();
        let mut r = ByteReader::new(&buf[..2]);
        assert!(matches!(r.u32(), Err(StoreError::Truncated { .. })));
    }

    #[test]
    fn oversized_length_prefix_is_truncated_not_alloc() {
        let mut w = ByteWriter::new();
        w.u64(u64::MAX); // absurd declared length
        let buf = w.into_vec();
        let mut r = ByteReader::new(&buf);
        assert!(r.bytes().is_err());
    }

    #[test]
    fn bad_bool_and_bad_utf8_are_corrupt() {
        let mut r = ByteReader::new(&[2]);
        assert!(matches!(r.bool(), Err(StoreError::Corrupt(_))));
        let mut w = ByteWriter::new();
        w.bytes(&[0xff, 0xfe]);
        let buf = w.into_vec();
        let mut r = ByteReader::new(&buf);
        assert!(matches!(r.str(), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn trailing_bytes_are_flagged() {
        let mut w = ByteWriter::new();
        w.u8(1);
        w.u8(2);
        let buf = w.into_vec();
        let mut r = ByteReader::new(&buf);
        r.u8().unwrap();
        assert!(matches!(r.expect_end(), Err(StoreError::Corrupt(_))));
    }
}
