//! Stable 128-bit fingerprints over explicitly-fed fields.
//!
//! [`StableHasher`] is a hand-rolled 128-bit FNV-1a. It deliberately
//! does **not** implement `std::hash::Hasher` and is not fed through
//! `#[derive(Hash)]`: the std `Hash` impls for compound types make no
//! cross-release stability promise, so every caller writes each field
//! through one of the typed methods below instead. Strings and byte
//! slices are length-prefixed, options and enums are tag-prefixed —
//! `("ab", "c")` and `("a", "bc")` can never collide by concatenation.
//!
//! The parameters are the standard FNV-1a 128 constants; tests pin the
//! exact output for fixed inputs so any accidental change to constants
//! or field discipline fails CI before it can corrupt a persisted
//! store.

/// FNV-1a 128-bit offset basis.
const OFFSET_BASIS: u128 = 0x6c62272e07bb014262b821756295c58d;
/// FNV-1a 128-bit prime.
const PRIME: u128 = 0x0000000001000000000000000000013b;

/// A stable 128-bit content fingerprint, safe to persist.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(u128);

impl Fingerprint {
    pub fn from_u128(v: u128) -> Fingerprint {
        Fingerprint(v)
    }

    pub fn as_u128(self) -> u128 {
        self.0
    }

    /// Low 64 bits, for consumers that need a compact `u64` handle
    /// (shard selection, fault-plan key matching, backoff jitter).
    /// Never use this as the on-disk identity — that is the full 128
    /// bits.
    pub fn lo64(self) -> u64 {
        self.0 as u64
    }

    /// 32 lowercase hex characters, most significant first.
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parse the `to_hex` form.
    pub fn from_hex(s: &str) -> Option<Fingerprint> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(Fingerprint)
    }
}

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl std::fmt::Debug for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Fingerprint({:032x})", self.0)
    }
}

/// Incremental FNV-1a 128 over typed, length-disciplined field writes.
#[derive(Clone)]
pub struct StableHasher {
    state: u128,
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StableHasher {
    pub fn new() -> StableHasher {
        StableHasher {
            state: OFFSET_BASIS,
        }
    }

    /// Raw bytes, no length prefix. Only for fixed-width data; for
    /// variable-length fields use [`StableHasher::bytes`] or
    /// [`StableHasher::str`].
    pub fn raw(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= b as u128;
            self.state = self.state.wrapping_mul(PRIME);
        }
        self
    }

    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.raw(&[v])
    }

    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.raw(&v.to_le_bytes())
    }

    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.raw(&v.to_le_bytes())
    }

    pub fn u128(&mut self, v: u128) -> &mut Self {
        self.raw(&v.to_le_bytes())
    }

    pub fn i64(&mut self, v: i64) -> &mut Self {
        self.raw(&v.to_le_bytes())
    }

    pub fn usize(&mut self, v: usize) -> &mut Self {
        self.u64(v as u64)
    }

    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.u8(v as u8)
    }

    /// f32 by IEEE-754 bit pattern (NaN payloads included verbatim).
    pub fn f32_bits(&mut self, v: f32) -> &mut Self {
        self.u32(v.to_bits())
    }

    /// Length-prefixed byte slice.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.u64(v.len() as u64);
        self.raw(v)
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) -> &mut Self {
        self.bytes(v.as_bytes())
    }

    /// Tag-prefixed option: 0 for None, 1 + payload for Some.
    pub fn opt_str(&mut self, v: Option<&str>) -> &mut Self {
        match v {
            None => self.u8(0),
            Some(s) => {
                self.u8(1);
                self.str(s)
            }
        }
    }

    pub fn finish(&self) -> Fingerprint {
        Fingerprint(self.state)
    }
}

/// One-shot 64-bit FNV-1a, used for record payload checksums.
pub fn fnv64(bytes: &[u8]) -> u64 {
    const OFFSET64: u64 = 0xcbf29ce484222325;
    const PRIME64: u64 = 0x00000100000001b3;
    let mut h = OFFSET64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME64);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pins the hasher to the published FNV-1a 128 parameters: the
    /// empty input hashes to the offset basis, and the constants are
    /// the standard ones. If this test fails, a persisted store
    /// written by the previous build is unreadable — bump
    /// `crate::FORMAT_VERSION` and fix the hasher, or revert.
    #[test]
    fn empty_input_is_the_offset_basis() {
        assert_eq!(
            StableHasher::new().finish().to_hex(),
            "6c62272e07bb014262b821756295c58d"
        );
    }

    /// Published FNV-1a 128 test vectors (raw bytes, no length
    /// prefix).
    #[test]
    fn known_fnv1a128_vectors() {
        let mut h = StableHasher::new();
        h.raw(b"a");
        assert_eq!(h.finish().to_hex(), "d228cb696f1a8caf78912b704e4a8964");
        let mut h = StableHasher::new();
        h.raw(b"foobar");
        assert_eq!(h.finish().to_hex(), "343e1662793c64bf6f0d3597ba446f18");
    }

    #[test]
    fn known_fnv1a64_vectors() {
        assert_eq!(fnv64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    /// Length discipline: adjacent variable-length fields cannot
    /// collide by shifting bytes across the boundary.
    #[test]
    fn length_prefix_prevents_concatenation_collisions() {
        let mut a = StableHasher::new();
        a.str("ab").str("c");
        let mut b = StableHasher::new();
        b.str("a").str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn option_tagging_distinguishes_none_from_empty() {
        let mut a = StableHasher::new();
        a.opt_str(None);
        let mut b = StableHasher::new();
        b.opt_str(Some(""));
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn fingerprint_hex_roundtrip() {
        let mut h = StableHasher::new();
        h.str("roundtrip").u64(42);
        let fp = h.finish();
        assert_eq!(Fingerprint::from_hex(&fp.to_hex()), Some(fp));
        assert_eq!(fp.to_hex().len(), 32);
        assert_eq!(Fingerprint::from_hex("xyz"), None);
    }

    #[test]
    fn lo64_matches_low_bits() {
        let fp = Fingerprint::from_u128(0xAAAA_BBBB_CCCC_DDDD_1111_2222_3333_4444);
        assert_eq!(fp.lo64(), 0x1111_2222_3333_4444);
    }
}
