//! # ks-store — stable fingerprints and a persistent artifact store
//!
//! The sharded single-flight cache in ks-core is in-memory only: every
//! process restart recompiles the world. This crate supplies the two
//! pieces needed to persist compiled artifacts safely:
//!
//! 1. **Stable hashing** ([`StableHasher`], [`Fingerprint`]): a
//!    hand-rolled 128-bit FNV-1a with explicit, length-disciplined
//!    write methods. `std::collections::hash_map::DefaultHasher` is
//!    documented to be unstable across Rust releases — fine for an
//!    in-process map, silently corrupting for any key that touches
//!    disk. The hasher here is pinned by tests: if its output for
//!    fixed inputs ever changes, CI fails before a store written by
//!    one build can poison another.
//!
//! 2. **A versioned, content-addressed record store** ([`Store`]):
//!    each record is a self-describing file — magic, format version,
//!    fingerprint, payload length, payload checksum, payload — written
//!    atomically (unique temp file + rename) so concurrent writers of
//!    the same key converge on exactly one valid record. Loading
//!    validates every header field and the checksum; any mismatch is a
//!    typed [`StoreError`], never a panic, so callers can degrade to a
//!    recompile.
//!
//! The crate is a leaf: it knows nothing about kernels or binaries.
//! ks-core layers `Binary` serialization and the read-through /
//! write-through cache tier on top.

pub mod bytes;
pub mod fp;

pub use bytes::{ByteReader, ByteWriter};
pub use fp::{fnv64, Fingerprint, StableHasher};

use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// On-disk record format version. Bump on any layout change; readers
/// reject records from other versions with [`StoreError::Version`].
pub const FORMAT_VERSION: u32 = 1;

/// Record magic: the first four bytes of every valid record file.
pub const MAGIC: [u8; 4] = *b"KSST";

/// Fixed header size: magic (4) + version (4) + fingerprint (16) +
/// payload length (8) + payload checksum (8).
pub const HEADER_LEN: usize = 40;

/// File extension for record files.
pub const RECORD_EXT: &str = "ksb";

/// Directory (under the store root) corrupt records are moved into by
/// [`Store::scrub`]. Quarantined files keep their original names so a
/// postmortem can inspect exactly what rotted; they are invisible to
/// [`Store::load`] (which resolves only fan-out paths), so a
/// quarantined key simply misses and recompiles.
pub const QUARANTINE_DIR: &str = "quarantine";

/// Everything that can go wrong talking to the store. Every variant is
/// recoverable: callers treat any error as "no usable record" and
/// degrade to a recompile.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem-level failure (open/read/write/rename).
    Io(std::io::Error),
    /// The first four bytes were not [`MAGIC`] — not a record file.
    BadMagic { found: [u8; 4] },
    /// Record written by a different store format version.
    Version { found: u32, expected: u32 },
    /// Header fingerprint does not match the key the record was looked
    /// up under (misfiled or tampered record).
    FingerprintMismatch {
        expected: Fingerprint,
        found: Fingerprint,
    },
    /// Payload checksum mismatch (bit rot or torn write).
    ChecksumMismatch { expected: u64, found: u64 },
    /// The file ended before the declared payload did.
    Truncated { needed: usize, available: usize },
    /// Structurally invalid payload content (bad tag, bad length,
    /// unknown enum discriminant) discovered during decoding.
    Corrupt(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store io error: {e}"),
            StoreError::BadMagic { found } => {
                write!(f, "store record has bad magic {found:02x?}")
            }
            StoreError::Version { found, expected } => write!(
                f,
                "store record format version {found} (this build reads {expected})"
            ),
            StoreError::FingerprintMismatch { expected, found } => write!(
                f,
                "store record fingerprint {found} does not match key {expected}"
            ),
            StoreError::ChecksumMismatch { expected, found } => write!(
                f,
                "store record payload checksum {found:016x} != header {expected:016x}"
            ),
            StoreError::Truncated { needed, available } => write!(
                f,
                "store record truncated: needed {needed} bytes, had {available}"
            ),
            StoreError::Corrupt(msg) => write!(f, "store record corrupt: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// A content-addressed record store rooted at one directory.
///
/// Records are filed under a one-byte fan-out
/// (`<root>/<hh>/<32-hex-fingerprint>.ksb`) so large stores do not pile
/// thousands of files into one directory. Writes are atomic: the
/// record is assembled in a uniquely-named temp file in the same
/// directory and `rename`d into place, so readers only ever observe
/// absent or complete files, and same-key races converge on one
/// record.
#[derive(Debug)]
pub struct Store {
    root: PathBuf,
}

/// Process-unique suffix counter for temp files (rename targets).
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

impl Store {
    /// Open (creating if needed) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<Store, StoreError> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(Store { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The path a record for `fp` lives at (whether or not it exists).
    pub fn record_path(&self, fp: Fingerprint) -> PathBuf {
        let hex = fp.to_hex();
        self.root
            .join(&hex[..2])
            .join(format!("{hex}.{RECORD_EXT}"))
    }

    /// True if a record file for `fp` exists (no validation).
    pub fn contains(&self, fp: Fingerprint) -> bool {
        self.record_path(fp).exists()
    }

    /// Count record files currently in the store (any validity).
    pub fn record_count(&self) -> usize {
        let mut n = 0;
        let Ok(fanout) = fs::read_dir(&self.root) else {
            return 0;
        };
        for dir in fanout.flatten() {
            let Ok(entries) = fs::read_dir(dir.path()) else {
                continue;
            };
            n += entries
                .flatten()
                .filter(|e| e.path().extension().is_some_and(|x| x == RECORD_EXT))
                .count();
        }
        n
    }

    /// Persist `payload` under `fp`. Returns `Ok(true)` if this call
    /// wrote the record, `Ok(false)` if a record was already present
    /// (the common outcome for the losers of a same-key race).
    pub fn save(&self, fp: Fingerprint, payload: &[u8]) -> Result<bool, StoreError> {
        let path = self.record_path(fp);
        if path.exists() {
            return Ok(false);
        }
        let dir = path.parent().expect("record path always has a parent");
        fs::create_dir_all(dir)?;
        let tmp = dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let mut w = ByteWriter::new();
        w.bytes_raw(&MAGIC);
        w.u32(FORMAT_VERSION);
        w.u128(fp.as_u128());
        w.u64(payload.len() as u64);
        w.u64(fnv64(payload));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(w.as_slice())?;
            f.write_all(payload)?;
            f.sync_all()?;
        }
        // Atomic publish; on the rare race where two writers both got
        // past the exists() check, last rename wins and both files are
        // complete and identical in content-addressed terms.
        fs::rename(&tmp, &path)?;
        Ok(true)
    }

    /// Load the payload stored under `fp`.
    ///
    /// `Ok(None)` means "no record" (a clean miss). Any present-but-
    /// invalid record is a typed error so the caller can count it and
    /// recompile; this function never panics on file contents.
    pub fn load(&self, fp: Fingerprint) -> Result<Option<Vec<u8>>, StoreError> {
        let path = self.record_path(fp);
        let mut file = match fs::File::open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(StoreError::Io(e)),
        };
        let mut data = Vec::new();
        file.read_to_end(&mut data)?;
        Ok(Some(Self::decode_record(fp, &data)?))
    }

    /// Validate a raw record image and return its payload.
    pub fn decode_record(fp: Fingerprint, data: &[u8]) -> Result<Vec<u8>, StoreError> {
        if data.len() < HEADER_LEN {
            return Err(StoreError::Truncated {
                needed: HEADER_LEN,
                available: data.len(),
            });
        }
        let mut r = ByteReader::new(data);
        let magic = r.array::<4>()?;
        if magic != MAGIC {
            return Err(StoreError::BadMagic { found: magic });
        }
        let version = r.u32()?;
        if version != FORMAT_VERSION {
            return Err(StoreError::Version {
                found: version,
                expected: FORMAT_VERSION,
            });
        }
        let found_fp = Fingerprint::from_u128(r.u128()?);
        if found_fp != fp {
            return Err(StoreError::FingerprintMismatch {
                expected: fp,
                found: found_fp,
            });
        }
        let payload_len = r.u64()? as usize;
        let expected_sum = r.u64()?;
        let avail = data.len() - HEADER_LEN;
        if avail < payload_len {
            return Err(StoreError::Truncated {
                needed: HEADER_LEN + payload_len,
                available: data.len(),
            });
        }
        let payload = &data[HEADER_LEN..HEADER_LEN + payload_len];
        let found_sum = fnv64(payload);
        if found_sum != expected_sum {
            return Err(StoreError::ChecksumMismatch {
                expected: expected_sum,
                found: found_sum,
            });
        }
        Ok(payload.to_vec())
    }

    /// Validate only a record image's *header*: magic, version,
    /// fingerprint, and that the file is long enough for the declared
    /// payload. This is the fast check the read path effectively gets
    /// for free — and it is deliberately **not** sufficient: a bit flip
    /// inside the payload leaves every header field intact and passes
    /// here. Only [`Store::decode_record`]'s full payload-checksum walk
    /// (what [`Store::scrub`] runs) catches it.
    pub fn check_header(fp: Fingerprint, data: &[u8]) -> Result<(), StoreError> {
        if data.len() < HEADER_LEN {
            return Err(StoreError::Truncated {
                needed: HEADER_LEN,
                available: data.len(),
            });
        }
        let mut r = ByteReader::new(data);
        let magic = r.array::<4>()?;
        if magic != MAGIC {
            return Err(StoreError::BadMagic { found: magic });
        }
        let version = r.u32()?;
        if version != FORMAT_VERSION {
            return Err(StoreError::Version {
                found: version,
                expected: FORMAT_VERSION,
            });
        }
        let found_fp = Fingerprint::from_u128(r.u128()?);
        if found_fp != fp {
            return Err(StoreError::FingerprintMismatch {
                expected: fp,
                found: found_fp,
            });
        }
        let payload_len = r.u64()? as usize;
        let _checksum = r.u64()?; // declared, not verified — that's the point
        if data.len() - HEADER_LEN < payload_len {
            return Err(StoreError::Truncated {
                needed: HEADER_LEN + payload_len,
                available: data.len(),
            });
        }
        Ok(())
    }

    /// Header-only validation of the record stored under `fp`.
    /// `Ok(false)` means no record; see [`Store::check_header`] for
    /// what this does *not* catch.
    pub fn verify_header(&self, fp: Fingerprint) -> Result<bool, StoreError> {
        match fs::read(self.record_path(fp)) {
            Ok(data) => Self::check_header(fp, &data).map(|()| true),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(StoreError::Io(e)),
        }
    }

    /// The directory [`Store::scrub`] moves corrupt records into.
    pub fn quarantine_dir(&self) -> PathBuf {
        self.root.join(QUARANTINE_DIR)
    }

    /// Full-payload integrity walk over every record in the store.
    ///
    /// Each `.ksb` file is read and validated end to end — header
    /// fields *and* payload checksum, the same checks [`Store::load`]
    /// runs — plus the fan-out invariant that the file is named by its
    /// own fingerprint. Corrupt records are moved (never deleted) into
    /// [`QUARANTINE_DIR`], where the load path cannot see them, so the
    /// affected keys turn into clean misses and recompile; the evidence
    /// survives for postmortems. The walk is ordered by file name, so
    /// the report is deterministic for a given set of corruptions.
    ///
    /// Only filesystem-level failures (unreadable directories, a failed
    /// quarantine rename) abort the walk; corrupt *content* never does.
    pub fn scrub(&self) -> Result<ScrubReport, StoreError> {
        let mut report = ScrubReport::default();
        let mut fanout: Vec<PathBuf> = Vec::new();
        for entry in fs::read_dir(&self.root)?.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            if path.is_dir() && name.to_str() != Some(QUARANTINE_DIR) {
                fanout.push(path);
            }
        }
        fanout.sort();
        for dir in fanout {
            let mut records: Vec<PathBuf> = fs::read_dir(&dir)?
                .flatten()
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|x| x == RECORD_EXT))
                .collect();
            records.sort();
            for path in records {
                report.scanned += 1;
                let verdict = Self::scrub_one(&path);
                match verdict {
                    Ok(()) => report.valid += 1,
                    Err(err) => {
                        let name = path
                            .file_name()
                            .and_then(|n| n.to_str())
                            .unwrap_or("?")
                            .to_string();
                        self.quarantine_record(&path)?;
                        report.quarantined.push((name, err));
                    }
                }
            }
        }
        Ok(report)
    }

    /// Validate one record file in place (name → fingerprint → full
    /// decode). Any defect is the typed error quarantine will carry.
    fn scrub_one(path: &Path) -> Result<(), StoreError> {
        let fp = path
            .file_stem()
            .and_then(|s| s.to_str())
            .and_then(Fingerprint::from_hex)
            .ok_or_else(|| {
                StoreError::Corrupt("record file name is not a 32-hex fingerprint".into())
            })?;
        let data = fs::read(path)?;
        Store::decode_record(fp, &data).map(|_| ())
    }

    /// Move a corrupt record into `quarantine/`, keeping its name (a
    /// numeric suffix disambiguates the pathological repeat case).
    fn quarantine_record(&self, path: &Path) -> Result<(), StoreError> {
        let qdir = self.quarantine_dir();
        fs::create_dir_all(&qdir)?;
        let name = path.file_name().expect("record path has a file name");
        let mut target = qdir.join(name);
        let mut n = 0u32;
        while target.exists() {
            n += 1;
            target = qdir.join(format!("{}.{n}", name.to_string_lossy()));
        }
        fs::rename(path, &target)?;
        Ok(())
    }
}

/// What one [`Store::scrub`] walk found and did.
#[derive(Debug, Default)]
pub struct ScrubReport {
    /// Record files visited.
    pub scanned: usize,
    /// Records that passed the full decode.
    pub valid: usize,
    /// `(file name, defect)` for each record moved to `quarantine/`,
    /// in walk order.
    pub quarantined: Vec<(String, StoreError)>,
}

impl std::fmt::Display for ScrubReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "scrub: scanned {} records, {} valid, {} quarantined",
            self.scanned,
            self.valid,
            self.quarantined.len()
        )?;
        for (name, err) in &self.quarantined {
            write!(f, "\n  quarantined {name}: {err}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "ks-store-test-{tag}-{}-{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn fp_of(s: &str) -> Fingerprint {
        let mut h = StableHasher::new();
        h.str(s);
        h.finish()
    }

    #[test]
    fn save_then_load_roundtrips() {
        let dir = tmpdir("roundtrip");
        let store = Store::open(&dir).unwrap();
        let fp = fp_of("k1");
        let payload = b"specialized ptx bytes".to_vec();
        assert!(store.save(fp, &payload).unwrap(), "first save writes");
        assert!(!store.save(fp, &payload).unwrap(), "second save is a no-op");
        assert_eq!(store.load(fp).unwrap(), Some(payload));
        assert_eq!(store.record_count(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_record_is_a_clean_none() {
        let dir = tmpdir("missing");
        let store = Store::open(&dir).unwrap();
        assert!(store.load(fp_of("absent")).unwrap().is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let dir = tmpdir("magic");
        let store = Store::open(&dir).unwrap();
        let fp = fp_of("k");
        store.save(fp, b"x").unwrap();
        let path = store.record_path(fp);
        let mut data = fs::read(&path).unwrap();
        data[0] = b'X';
        fs::write(&path, &data).unwrap();
        assert!(matches!(store.load(fp), Err(StoreError::BadMagic { .. })));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let dir = tmpdir("version");
        let store = Store::open(&dir).unwrap();
        let fp = fp_of("k");
        store.save(fp, b"x").unwrap();
        let path = store.record_path(fp);
        let mut data = fs::read(&path).unwrap();
        data[4] = FORMAT_VERSION as u8 + 1; // version lives right after magic
        fs::write(&path, &data).unwrap();
        assert!(matches!(store.load(fp), Err(StoreError::Version { .. })));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_mismatch_is_rejected() {
        let dir = tmpdir("fpmm");
        let store = Store::open(&dir).unwrap();
        let a = fp_of("a");
        let b = fp_of("b");
        store.save(a, b"payload-a").unwrap();
        // Misfile a's record under b's path.
        fs::create_dir_all(store.record_path(b).parent().unwrap()).unwrap();
        fs::copy(store.record_path(a), store.record_path(b)).unwrap();
        assert!(matches!(
            store.load(b),
            Err(StoreError::FingerprintMismatch { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn flipped_payload_byte_fails_checksum() {
        let dir = tmpdir("checksum");
        let store = Store::open(&dir).unwrap();
        let fp = fp_of("k");
        store.save(fp, b"payload payload payload").unwrap();
        let path = store.record_path(fp);
        let mut data = fs::read(&path).unwrap();
        let last = data.len() - 1;
        data[last] ^= 0xff;
        fs::write(&path, &data).unwrap();
        assert!(matches!(
            store.load(fp),
            Err(StoreError::ChecksumMismatch { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_record_is_truncated_not_a_panic() {
        let dir = tmpdir("torn");
        let store = Store::open(&dir).unwrap();
        let fp = fp_of("k");
        store.save(fp, b"a payload long enough to tear").unwrap();
        let path = store.record_path(fp);
        let data = fs::read(&path).unwrap();
        // Tear mid-payload and mid-header.
        fs::write(&path, &data[..HEADER_LEN + 3]).unwrap();
        assert!(matches!(store.load(fp), Err(StoreError::Truncated { .. })));
        fs::write(&path, &data[..HEADER_LEN - 7]).unwrap();
        assert!(matches!(store.load(fp), Err(StoreError::Truncated { .. })));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn payload_flip_passes_header_check_but_scrub_catches_it() {
        let dir = tmpdir("scrub-flip");
        let store = Store::open(&dir).unwrap();
        let good = fp_of("survivor");
        let bad = fp_of("victim");
        store.save(good, b"intact payload").unwrap();
        store.save(bad, b"a payload about to rot in place").unwrap();
        // Seeded single-bit flip inside the payload: every header field
        // (magic, version, fingerprint, length, declared checksum)
        // stays intact.
        let path = store.record_path(bad);
        let mut data = fs::read(&path).unwrap();
        data[HEADER_LEN + 5] ^= 0x10;
        fs::write(&path, &data).unwrap();
        // The fast header check is blind to it...
        assert!(store.verify_header(bad).unwrap());
        // ...the full-payload walk is not.
        let report = store.scrub().unwrap();
        assert_eq!(report.scanned, 2);
        assert_eq!(report.valid, 1);
        assert_eq!(report.quarantined.len(), 1);
        assert!(report.quarantined[0].0.contains(&bad.to_hex()));
        assert!(matches!(
            report.quarantined[0].1,
            StoreError::ChecksumMismatch { .. }
        ));
        // Quarantined, not deleted: evidence moved aside, key misses.
        assert!(!store.record_path(bad).exists());
        assert!(store
            .quarantine_dir()
            .join(format!("{}.{RECORD_EXT}", bad.to_hex()))
            .exists());
        assert!(store.load(bad).unwrap().is_none(), "clean miss after scrub");
        assert_eq!(store.load(good).unwrap().unwrap(), b"intact payload");
        // A second walk is clean and never descends into quarantine/.
        let again = store.scrub().unwrap();
        assert_eq!(again.scanned, 1);
        assert_eq!(again.valid, 1);
        assert!(again.quarantined.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn scrub_quarantines_misnamed_and_truncated_records() {
        let dir = tmpdir("scrub-misc");
        let store = Store::open(&dir).unwrap();
        let fp = fp_of("torn");
        store.save(fp, b"long enough payload to truncate").unwrap();
        let path = store.record_path(fp);
        let data = fs::read(&path).unwrap();
        fs::write(&path, &data[..HEADER_LEN + 2]).unwrap();
        // A stray file whose name is not a fingerprint.
        let stray = dir
            .join("ab")
            .join(format!("not-a-fingerprint.{RECORD_EXT}"));
        fs::create_dir_all(stray.parent().unwrap()).unwrap();
        fs::write(&stray, b"junk").unwrap();
        let report = store.scrub().unwrap();
        assert_eq!(report.scanned, 2);
        assert_eq!(report.valid, 0);
        assert_eq!(report.quarantined.len(), 2);
        let display = report.to_string();
        assert!(display.starts_with("scrub: scanned 2 records, 0 valid, 2 quarantined"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_payload_roundtrips() {
        let dir = tmpdir("empty");
        let store = Store::open(&dir).unwrap();
        let fp = fp_of("empty");
        store.save(fp, b"").unwrap();
        assert_eq!(store.load(fp).unwrap(), Some(Vec::new()));
        let _ = fs::remove_dir_all(&dir);
    }
}
