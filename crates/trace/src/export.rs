//! Pluggable renderers for spans, metric snapshots, and kernel
//! profiles: human-readable text, JSON-lines, and CSV.

use crate::json::Json;
use crate::metrics::MetricsSnapshot;
use crate::profile::{span_to_json, KernelProfile};
use crate::scope::parse_scoped_name;
use crate::span::SpanRecord;
use std::fmt::Write as _;

/// Output format selector, e.g. for a `--export` CLI flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExportFormat {
    Text,
    Jsonl,
    Csv,
    /// Collapsed-stack ("folded") lines for flamegraph tooling.
    Flame,
    /// Chrome `trace_event` JSON, loadable in `chrome://tracing` /
    /// Perfetto.
    Chrome,
    /// Prometheus text exposition (metrics only; spans are out of
    /// model and render as comments).
    Prom,
}

impl ExportFormat {
    pub fn parse(s: &str) -> Option<ExportFormat> {
        match s {
            "text" => Some(ExportFormat::Text),
            "jsonl" | "json" => Some(ExportFormat::Jsonl),
            "csv" => Some(ExportFormat::Csv),
            "flame" | "folded" => Some(ExportFormat::Flame),
            "chrome" | "trace_event" => Some(ExportFormat::Chrome),
            "prom" | "prometheus" => Some(ExportFormat::Prom),
            _ => None,
        }
    }

    pub fn exporter(self) -> Box<dyn Exporter> {
        match self {
            ExportFormat::Text => Box::new(TextExporter),
            ExportFormat::Jsonl => Box::new(JsonlExporter),
            ExportFormat::Csv => Box::new(CsvExporter),
            ExportFormat::Flame => Box::new(FlamegraphExporter),
            ExportFormat::Chrome => Box::new(ChromeTraceExporter),
            ExportFormat::Prom => Box::new(PrometheusExporter),
        }
    }
}

/// Renders observability data to a string in one format.
pub trait Exporter {
    fn spans(&self, spans: &[SpanRecord]) -> String;
    fn metrics(&self, snapshot: &MetricsSnapshot) -> String;
    fn profile(&self, profile: &KernelProfile) -> String;
}

/// Spans sorted for display: by thread, then start time — children
/// follow their parents because a child starts no earlier.
fn display_order(spans: &[SpanRecord]) -> Vec<&SpanRecord> {
    let mut ordered: Vec<&SpanRecord> = spans.iter().collect();
    ordered.sort_by_key(|s| (s.thread, s.start_ns, s.id));
    ordered
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 10_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.1}µs", ns as f64 / 1e3)
    }
}

/// Human-readable indented renderer.
pub struct TextExporter;

impl Exporter for TextExporter {
    fn spans(&self, spans: &[SpanRecord]) -> String {
        let mut out = String::new();
        for s in display_order(spans) {
            let _ = write!(
                out,
                "{:indent$}{} {}",
                "",
                s.name,
                fmt_ns(s.dur_ns),
                indent = 2 * s.depth as usize
            );
            for (k, v) in &s.fields {
                let _ = write!(out, " {k}={v}");
            }
            out.push('\n');
        }
        out
    }

    fn metrics(&self, snapshot: &MetricsSnapshot) -> String {
        let mut out = String::new();
        if !snapshot.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, v) in &snapshot.counters {
                let _ = writeln!(out, "  {name} = {v}");
            }
        }
        if !snapshot.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, v) in &snapshot.gauges {
                let _ = writeln!(out, "  {name} = {v:.4}");
            }
        }
        if !snapshot.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (name, h) in &snapshot.histograms {
                let _ = writeln!(
                    out,
                    "  {name}: n={} mean={:.1} min={} p50={} p95={} p99={} max={}",
                    h.count,
                    h.mean(),
                    h.min,
                    h.p50,
                    h.p95,
                    h.p99,
                    h.max
                );
            }
        }
        out
    }

    fn profile(&self, p: &KernelProfile) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "kernel profile: {} (device {}, variant {})",
            p.kernel, p.device, p.variant
        );
        if !p.defines.is_empty() {
            let defs: Vec<String> = p.defines.iter().map(|(k, v)| format!("{k}={v}")).collect();
            let _ = writeln!(out, "  defines: {}", defs.join(" "));
        }
        for c in &p.compiles {
            let _ = writeln!(
                out,
                "  compile {}: {}µs{}",
                c.module,
                c.total_us,
                if c.cached { " (cached)" } else { "" }
            );
            for (phase, us) in &c.phases {
                let _ = writeln!(out, "    {phase:<10} {us}µs");
            }
        }
        let _ = writeln!(
            out,
            "  cache: {} hits / {} misses ({:.1}% hit rate), {} dedup waits, {} evictions",
            p.cache.hits,
            p.cache.misses,
            100.0 * p.cache.hit_rate(),
            p.cache.dedup_waits,
            p.cache.evictions
        );
        let _ = writeln!(
            out,
            "  exec: {} launches, {} dyn insts, {} global bytes, {} divergent branches, {} barriers, {}µs sim time, occupancy {:.2}",
            p.exec.launches,
            p.exec.dyn_insts,
            p.exec.global_bytes,
            p.exec.divergent_branches,
            p.exec.barriers,
            p.exec.sim_time_us,
            p.exec.occupancy
        );
        for d in &p.diagnostics {
            let _ = writeln!(out, "  diagnostic: {d}");
        }
        if !p.spans.is_empty() {
            out.push_str("  spans:\n");
            for line in self.spans(&p.spans).lines() {
                let _ = writeln!(out, "    {line}");
            }
        }
        out
    }
}

/// One JSON object per line; profiles use the
/// [`KernelProfile::to_jsonl`] schema checked by
/// [`crate::validate_profile_jsonl`].
pub struct JsonlExporter;

impl Exporter for JsonlExporter {
    fn spans(&self, spans: &[SpanRecord]) -> String {
        let mut out = String::new();
        for s in display_order(spans) {
            out.push_str(&span_to_json(s).render());
            out.push('\n');
        }
        out
    }

    fn metrics(&self, snapshot: &MetricsSnapshot) -> String {
        let mut out = String::new();
        for (name, v) in &snapshot.counters {
            let line = Json::obj(vec![
                ("type", Json::str("counter")),
                ("name", Json::str(name)),
                ("value", Json::u64(*v)),
            ]);
            out.push_str(&line.render());
            out.push('\n');
        }
        for (name, v) in &snapshot.gauges {
            let line = Json::obj(vec![
                ("type", Json::str("gauge")),
                ("name", Json::str(name)),
                ("value", Json::num(*v)),
            ]);
            out.push_str(&line.render());
            out.push('\n');
        }
        for (name, h) in &snapshot.histograms {
            let line = Json::obj(vec![
                ("type", Json::str("histogram")),
                ("name", Json::str(name)),
                ("count", Json::u64(h.count)),
                ("sum", Json::u64(h.sum)),
                ("min", Json::u64(h.min)),
                ("max", Json::u64(h.max)),
                ("p50", Json::u64(h.p50)),
                ("p95", Json::u64(h.p95)),
                ("p99", Json::u64(h.p99)),
            ]);
            out.push_str(&line.render());
            out.push('\n');
        }
        out
    }

    fn profile(&self, p: &KernelProfile) -> String {
        p.to_jsonl()
    }
}

fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Flat comma-separated renderer (header row + data rows).
pub struct CsvExporter;

impl Exporter for CsvExporter {
    fn spans(&self, spans: &[SpanRecord]) -> String {
        let mut out = String::from("id,parent,name,depth,start_ns,dur_ns,thread\n");
        for s in display_order(spans) {
            let parent = s.parent.map_or(String::new(), |p| p.to_string());
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{}",
                s.id,
                parent,
                csv_field(&s.name),
                s.depth,
                s.start_ns,
                s.dur_ns,
                s.thread
            );
        }
        out
    }

    fn metrics(&self, snapshot: &MetricsSnapshot) -> String {
        let mut out = String::from("kind,name,field,value\n");
        for (name, v) in &snapshot.counters {
            let _ = writeln!(out, "counter,{},value,{v}", csv_field(name));
        }
        for (name, v) in &snapshot.gauges {
            let _ = writeln!(out, "gauge,{},value,{v}", csv_field(name));
        }
        for (name, h) in &snapshot.histograms {
            let name = csv_field(name);
            for (field, v) in [
                ("count", h.count),
                ("sum", h.sum),
                ("min", h.min),
                ("max", h.max),
                ("p50", h.p50),
                ("p95", h.p95),
                ("p99", h.p99),
            ] {
                let _ = writeln!(out, "histogram,{name},{field},{v}");
            }
        }
        out
    }

    fn profile(&self, p: &KernelProfile) -> String {
        let mut out = String::from("section,key,value\n");
        let _ = writeln!(out, "profile,kernel,{}", csv_field(&p.kernel));
        let _ = writeln!(out, "profile,device,{}", csv_field(&p.device));
        let _ = writeln!(out, "profile,variant,{}", csv_field(&p.variant));
        for (k, v) in &p.defines {
            let _ = writeln!(out, "define,{},{}", csv_field(k), csv_field(v));
        }
        for c in &p.compiles {
            let section = csv_field(&format!("compile.{}", c.module));
            let _ = writeln!(out, "{section},cached,{}", c.cached);
            let _ = writeln!(out, "{section},total_us,{}", c.total_us);
            for (phase, us) in &c.phases {
                let _ = writeln!(out, "{section},{},{us}", csv_field(phase));
            }
        }
        for (k, v) in [
            ("hits", p.cache.hits),
            ("misses", p.cache.misses),
            ("dedup_waits", p.cache.dedup_waits),
            ("evictions", p.cache.evictions),
        ] {
            let _ = writeln!(out, "cache,{k},{v}");
        }
        let _ = writeln!(out, "cache,hit_rate,{:.4}", p.cache.hit_rate());
        for (k, v) in [
            ("launches", p.exec.launches),
            ("dyn_insts", p.exec.dyn_insts),
            ("global_bytes", p.exec.global_bytes),
            ("divergent_branches", p.exec.divergent_branches),
            ("barriers", p.exec.barriers),
            ("sim_time_us", p.exec.sim_time_us),
        ] {
            let _ = writeln!(out, "exec,{k},{v}");
        }
        let _ = writeln!(out, "exec,occupancy,{:.4}", p.exec.occupancy);
        out
    }
}

/// Collapsed-stack ("folded") renderer: one `root;child;leaf value`
/// line per distinct stack, the input format of flamegraph tooling.
/// Span values are *self* nanoseconds (duration minus the duration of
/// child spans), so the rendered graph's widths sum correctly.
pub struct FlamegraphExporter;

impl FlamegraphExporter {
    /// The `a;b;c` stack string for one span: parent-chain names,
    /// root-first. A missing parent id (span drained separately) makes
    /// the span a root.
    fn stack(by_id: &std::collections::HashMap<u64, &SpanRecord>, s: &SpanRecord) -> String {
        let mut names = vec![s.name.as_str()];
        let mut cur = s;
        while let Some(p) = cur.parent.and_then(|id| by_id.get(&id)) {
            names.push(p.name.as_str());
            cur = p;
        }
        names.reverse();
        // The folded format separates frames with ';'; scrub it from
        // names so a hostile span name can't forge frames.
        names
            .iter()
            .map(|n| n.replace(';', ":"))
            .collect::<Vec<_>>()
            .join(";")
    }
}

impl Exporter for FlamegraphExporter {
    fn spans(&self, spans: &[SpanRecord]) -> String {
        let by_id: std::collections::HashMap<u64, &SpanRecord> =
            spans.iter().map(|s| (s.id, s)).collect();
        // Self time = duration minus direct children's durations.
        let mut child_ns: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for s in spans {
            if let Some(p) = s.parent {
                *child_ns.entry(p).or_insert(0) += s.dur_ns;
            }
        }
        // Aggregate identical stacks (e.g. the same pass across many
        // compiles) into one line, as folded-format consumers expect.
        let mut folded: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
        for s in spans {
            let self_ns = s
                .dur_ns
                .saturating_sub(child_ns.get(&s.id).copied().unwrap_or(0));
            *folded.entry(Self::stack(&by_id, s)).or_insert(0) += self_ns;
        }
        let mut out = String::new();
        for (stack, ns) in folded {
            let _ = writeln!(out, "{stack} {ns}");
        }
        out
    }

    fn metrics(&self, snapshot: &MetricsSnapshot) -> String {
        // Counters fold naturally: dotted names become frame stacks
        // (`ks_core.cache.hits` → `ks_core;cache;hits`), values are the
        // counts — a flamegraph of where events happen.
        let mut out = String::new();
        for (name, v) in &snapshot.counters {
            let _ = writeln!(out, "{} {v}", name.replace('.', ";"));
        }
        out
    }

    fn profile(&self, p: &KernelProfile) -> String {
        self.spans(&p.spans)
    }
}

/// Chrome `trace_event` renderer: a `{"traceEvents": [...]}` document of
/// complete (`ph:"X"`) events with microsecond timestamps, loadable in
/// `chrome://tracing` and Perfetto. Span fields ride along as `args`.
pub struct ChromeTraceExporter;

impl ChromeTraceExporter {
    fn span_event(s: &SpanRecord) -> Json {
        let args = Json::Obj(
            s.fields
                .iter()
                .map(|(k, v)| (k.clone(), Json::str(v.clone())))
                .collect(),
        );
        Json::obj(vec![
            ("name", Json::str(s.name.clone())),
            ("cat", Json::str("span")),
            ("ph", Json::str("X")),
            ("ts", Json::num(s.start_ns as f64 / 1e3)),
            ("dur", Json::num(s.dur_ns as f64 / 1e3)),
            ("pid", Json::u64(1)),
            ("tid", Json::u64(s.thread)),
            ("args", args),
        ])
    }

    fn document(events: Vec<Json>) -> String {
        Json::obj(vec![
            ("traceEvents", Json::Arr(events)),
            ("displayTimeUnit", Json::str("ms")),
        ])
        .render()
    }
}

impl Exporter for ChromeTraceExporter {
    fn spans(&self, spans: &[SpanRecord]) -> String {
        let events = display_order(spans)
            .into_iter()
            .map(Self::span_event)
            .collect();
        Self::document(events)
    }

    fn metrics(&self, snapshot: &MetricsSnapshot) -> String {
        // Counter (`ph:"C"`) events at t=0: a one-shot value dump rather
        // than a time series, which is all a snapshot holds.
        let mut events = Vec::new();
        for (name, v) in &snapshot.counters {
            events.push(Json::obj(vec![
                ("name", Json::str(name.clone())),
                ("ph", Json::str("C")),
                ("ts", Json::u64(0)),
                ("pid", Json::u64(1)),
                ("args", Json::obj(vec![("value", Json::u64(*v))])),
            ]));
        }
        for (name, g) in &snapshot.gauges {
            events.push(Json::obj(vec![
                ("name", Json::str(name.clone())),
                ("ph", Json::str("C")),
                ("ts", Json::u64(0)),
                ("pid", Json::u64(1)),
                ("args", Json::obj(vec![("value", Json::num(*g))])),
            ]));
        }
        Self::document(events)
    }

    fn profile(&self, p: &KernelProfile) -> String {
        // Label the process with the kernel identity, then the span tree.
        let mut events = vec![Json::obj(vec![
            ("name", Json::str("process_name")),
            ("ph", Json::str("M")),
            ("pid", Json::u64(1)),
            (
                "args",
                Json::obj(vec![(
                    "name",
                    Json::str(format!("{} [{}] {}", p.kernel, p.variant, p.device)),
                )]),
            ),
        ])];
        events.extend(display_order(&p.spans).into_iter().map(Self::span_event));
        Self::document(events)
    }
}

/// Prometheus text exposition renderer. Registry names are dotted
/// (`ks_core.cache.hits`, scoped as `name{k=v}`); exposition names
/// replace every character outside `[a-zA-Z0-9_:]` with `_` and carry
/// the scope labels as Prometheus labels. Histograms render as
/// summaries (p50/p95/p99 quantile samples plus `_sum`/`_count`).
pub struct PrometheusExporter;

fn prom_name(base: &str) -> String {
    let mut out: String = base
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

fn prom_label_set(labels: &[(&str, &str)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| {
            format!(
                "{}=\"{}\"",
                prom_name(k),
                v.replace('\\', "\\\\").replace('"', "\\\"")
            )
        })
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// One labeled sample row within a family: `(labels, value)`.
type PromRows<'a, V> = Vec<(Vec<(&'a str, &'a str)>, &'a V)>;

/// Group a metric map's keys into exposition families:
/// `prom_base -> [(labels, key)]`, so each family gets one `# TYPE`
/// line followed by all its labeled samples.
fn prom_families<V>(
    metrics: &std::collections::BTreeMap<String, V>,
) -> std::collections::BTreeMap<String, PromRows<'_, V>> {
    let mut families: std::collections::BTreeMap<String, PromRows<'_, V>> =
        std::collections::BTreeMap::new();
    for (name, v) in metrics {
        let (base, labels) = parse_scoped_name(name);
        families
            .entry(prom_name(base))
            .or_default()
            .push((labels, v));
    }
    families
}

impl Exporter for PrometheusExporter {
    fn spans(&self, spans: &[SpanRecord]) -> String {
        format!(
            "# prometheus exposition carries metrics only ({} spans omitted)\n",
            spans.len()
        )
    }

    fn metrics(&self, snapshot: &MetricsSnapshot) -> String {
        let mut out = String::new();
        for (family, rows) in prom_families(&snapshot.counters) {
            let _ = writeln!(out, "# TYPE {family} counter");
            for (labels, v) in rows {
                let _ = writeln!(out, "{family}{} {v}", prom_label_set(&labels, None));
            }
        }
        for (family, rows) in prom_families(&snapshot.gauges) {
            let _ = writeln!(out, "# TYPE {family} gauge");
            for (labels, v) in rows {
                let _ = writeln!(out, "{family}{} {v}", prom_label_set(&labels, None));
            }
        }
        for (family, rows) in prom_families(&snapshot.histograms) {
            let _ = writeln!(out, "# TYPE {family} summary");
            for (labels, h) in rows {
                for (q, v) in [("0.5", h.p50), ("0.95", h.p95), ("0.99", h.p99)] {
                    let _ = writeln!(
                        out,
                        "{family}{} {v}",
                        prom_label_set(&labels, Some(("quantile", q)))
                    );
                }
                let _ = writeln!(
                    out,
                    "{family}_sum{} {}",
                    prom_label_set(&labels, None),
                    h.sum
                );
                let _ = writeln!(
                    out,
                    "{family}_count{} {}",
                    prom_label_set(&labels, None),
                    h.count
                );
            }
        }
        out
    }

    fn profile(&self, p: &KernelProfile) -> String {
        // A profile is a join over one kernel; expose its counters with
        // the kernel identity as labels.
        let labels: Vec<(&str, &str)> = vec![
            ("kernel", &p.kernel),
            ("variant", &p.variant),
            ("device", &p.device),
        ];
        let mut out = String::new();
        for (name, v) in [
            ("ks_core_cache_hits", p.cache.hits),
            ("ks_core_cache_misses", p.cache.misses),
            ("ks_core_cache_dedup_waits", p.cache.dedup_waits),
            ("ks_core_cache_evictions", p.cache.evictions),
            ("ks_sim_launches", p.exec.launches),
            ("ks_sim_dyn_insts", p.exec.dyn_insts),
            ("ks_sim_global_bytes", p.exec.global_bytes),
            ("ks_sim_divergent_branches", p.exec.divergent_branches),
            ("ks_sim_barriers", p.exec.barriers),
            ("ks_sim_time_us", p.exec.sim_time_us),
        ] {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name}{} {v}", prom_label_set(&labels, None));
        }
        let _ = writeln!(out, "# TYPE ks_sim_occupancy gauge");
        let _ = writeln!(
            out,
            "ks_sim_occupancy{} {}",
            prom_label_set(&labels, None),
            p.exec.occupancy
        );
        out
    }
}

/// Schema check for Prometheus text exposition: every sample line must
/// be `name[{k="v",...}] value` with a legal metric name, quoted label
/// values, and a numeric value; every sample must belong to a family
/// announced by a preceding `# TYPE` line (summaries own their `_sum` /
/// `_count` series). Returns the first offending line on failure.
pub fn validate_prometheus(text: &str) -> Result<(), String> {
    let mut families: std::collections::BTreeMap<String, String> =
        std::collections::BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let err = |msg: &str| Err(format!("prometheus line {}: {msg}: {line}", lineno + 1));
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let (Some(name), Some(kind), None) = (parts.next(), parts.next(), parts.next()) else {
                return err("malformed TYPE");
            };
            if !matches!(kind, "counter" | "gauge" | "summary" | "histogram") {
                return err("unknown metric kind");
            }
            families.insert(name.to_string(), kind.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue; // free-form comment
        }
        let name_end = line
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == ':'))
            .unwrap_or(line.len());
        if name_end == 0 || line.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            return err("bad metric name");
        }
        let name = &line[..name_end];
        let rest = &line[name_end..];
        let value = if let Some(rest) = rest.strip_prefix('{') {
            let Some(close) = rest.find('}') else {
                return err("unterminated label set");
            };
            for pair in rest[..close].split(',') {
                let Some((_k, v)) = pair.split_once('=') else {
                    return err("label without '='");
                };
                if !(v.starts_with('"') && v.ends_with('"') && v.len() >= 2) {
                    return err("unquoted label value");
                }
            }
            rest[close + 1..].trim()
        } else {
            rest.trim()
        };
        if value.parse::<f64>().is_err() {
            return err("non-numeric sample value");
        }
        let family = families.get(name).map(String::as_str).or_else(|| {
            name.strip_suffix("_sum")
                .or_else(|| name.strip_suffix("_count"))
                .and_then(|base| families.get(base).map(String::as_str))
                .filter(|kind| matches!(*kind, "summary" | "histogram"))
        });
        if family.is_none() {
            return err("sample without a preceding # TYPE");
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;
    use crate::profile::{CacheCounters, CompileProfile, ExecCounters};

    fn sample_spans() -> Vec<SpanRecord> {
        vec![
            SpanRecord {
                id: 2,
                parent: Some(1),
                name: "parse".to_string(),
                depth: 1,
                start_ns: 100,
                dur_ns: 400,
                thread: 0,
                fields: vec![("module".to_string(), "m".to_string())],
            },
            SpanRecord {
                id: 1,
                parent: None,
                name: "compile".to_string(),
                depth: 0,
                start_ns: 0,
                dur_ns: 1_000,
                thread: 0,
                fields: vec![],
            },
        ]
    }

    #[test]
    fn text_spans_indent_by_depth() {
        let text = TextExporter.spans(&sample_spans());
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("compile "), "{text}");
        assert!(lines[1].starts_with("  parse "), "{text}");
        assert!(lines[1].contains("module=m"), "{text}");
    }

    #[test]
    fn jsonl_spans_parse_back() {
        let out = JsonlExporter.spans(&sample_spans());
        for line in out.lines() {
            let doc = Json::parse(line).unwrap();
            assert_eq!(doc.get("type").and_then(Json::as_str), Some("span"));
            assert!(doc.get("dur_ns").and_then(Json::as_u64).is_some());
        }
    }

    #[test]
    fn csv_spans_have_header_and_rows() {
        let out = CsvExporter.spans(&sample_spans());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "id,parent,name,depth,start_ns,dur_ns,thread");
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("1,,compile,0,"), "{out}");
        assert!(lines[2].starts_with("2,1,parse,1,"), "{out}");
    }

    #[test]
    fn metric_exports_cover_all_kinds() {
        let r = Registry::new();
        r.counter("c").add(7);
        r.gauge("g").set(0.5);
        r.histogram("h").record(9);
        let snap = r.snapshot();
        let text = TextExporter.metrics(&snap);
        assert!(text.contains("c = 7"), "{text}");
        assert!(text.contains("g = 0.5000"), "{text}");
        assert!(text.contains("h: n=1"), "{text}");
        let jsonl = JsonlExporter.metrics(&snap);
        assert_eq!(jsonl.lines().count(), 3);
        for line in jsonl.lines() {
            Json::parse(line).unwrap();
        }
        let csv = CsvExporter.metrics(&snap);
        assert!(csv.contains("counter,c,value,7"), "{csv}");
        assert!(csv.contains("histogram,h,p50,9"), "{csv}");
    }

    #[test]
    fn format_parsing_and_dispatch() {
        assert_eq!(ExportFormat::parse("text"), Some(ExportFormat::Text));
        assert_eq!(ExportFormat::parse("jsonl"), Some(ExportFormat::Jsonl));
        assert_eq!(ExportFormat::parse("json"), Some(ExportFormat::Jsonl));
        assert_eq!(ExportFormat::parse("csv"), Some(ExportFormat::Csv));
        assert_eq!(ExportFormat::parse("xml"), None);
        let p = KernelProfile {
            kernel: "k".to_string(),
            device: "c2070".to_string(),
            variant: "v".to_string(),
            compiles: vec![CompileProfile {
                module: "m".to_string(),
                cached: false,
                total_us: 10,
                phases: vec![("parse".to_string(), 10)],
            }],
            cache: CacheCounters::default(),
            exec: ExecCounters::default(),
            ..Default::default()
        };
        for fmt in [ExportFormat::Text, ExportFormat::Jsonl, ExportFormat::Csv] {
            let rendered = fmt.exporter().profile(&p);
            assert!(rendered.contains("c2070"), "{fmt:?}: {rendered}");
        }
    }

    #[test]
    fn flamegraph_folds_stacks_with_self_time() {
        let out = FlamegraphExporter.spans(&sample_spans());
        let lines: Vec<&str> = out.lines().collect();
        // BTreeMap order: "compile" before "compile;parse".
        assert_eq!(lines, vec!["compile 600", "compile;parse 400"], "{out}");
        // Identical stacks aggregate.
        let mut spans = sample_spans();
        let mut again = sample_spans();
        for s in &mut again {
            s.id += 10;
            s.parent = s.parent.map(|p| p + 10);
        }
        spans.extend(again);
        let out = FlamegraphExporter.spans(&spans);
        assert_eq!(
            out.lines().collect::<Vec<_>>(),
            vec!["compile 1200", "compile;parse 800"],
            "{out}"
        );
    }

    #[test]
    fn flamegraph_metrics_fold_counter_names() {
        let r = Registry::new();
        r.counter("ks_core.cache.hits").add(3);
        let out = FlamegraphExporter.metrics(&r.snapshot());
        assert_eq!(out, "ks_core;cache;hits 3\n");
    }

    #[test]
    fn chrome_trace_is_valid_json_with_complete_events() {
        let out = ChromeTraceExporter.spans(&sample_spans());
        let doc = Json::parse(&out).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert_eq!(events.len(), 2);
        // display_order puts the parent (start 0) first.
        let first = &events[0];
        assert_eq!(first.get("name").and_then(Json::as_str), Some("compile"));
        assert_eq!(first.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(first.get("dur").and_then(Json::as_f64), Some(1.0));
        let second = &events[1];
        assert_eq!(second.get("ts").and_then(Json::as_f64), Some(0.1));
        assert_eq!(
            second
                .get("args")
                .and_then(|a| a.get("module"))
                .and_then(Json::as_str),
            Some("m")
        );
    }

    #[test]
    fn chrome_metrics_render_counter_events() {
        let r = Registry::new();
        r.counter("c").add(7);
        r.gauge("g").set(0.25);
        let out = ChromeTraceExporter.metrics(&r.snapshot());
        let doc = Json::parse(&out).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert_eq!(events.len(), 2);
        assert!(events
            .iter()
            .all(|e| e.get("ph").and_then(Json::as_str) == Some("C")));
    }

    #[test]
    fn new_formats_parse_and_dispatch() {
        assert_eq!(ExportFormat::parse("flame"), Some(ExportFormat::Flame));
        assert_eq!(ExportFormat::parse("folded"), Some(ExportFormat::Flame));
        assert_eq!(ExportFormat::parse("chrome"), Some(ExportFormat::Chrome));
        assert_eq!(
            ExportFormat::parse("trace_event"),
            Some(ExportFormat::Chrome)
        );
        let spans = sample_spans();
        assert!(ExportFormat::Flame
            .exporter()
            .spans(&spans)
            .contains("compile;parse"));
        assert!(ExportFormat::Chrome
            .exporter()
            .spans(&spans)
            .contains("traceEvents"));
    }

    #[test]
    fn csv_quoting_escapes_commas_and_quotes() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn prometheus_renders_scoped_metrics_with_labels() {
        let r = Registry::new();
        r.counter("ks_core.cache.hits").add(3);
        r.scoped(&[("pipeline", "p0")])
            .counter("gpu_pf.iterations")
            .add(5);
        r.scoped(&[("pipeline", "p0")])
            .histogram("gpu_pf.iteration_us")
            .record(40);
        let out = PrometheusExporter.metrics(&r.snapshot());
        assert!(out.contains("# TYPE ks_core_cache_hits counter"), "{out}");
        assert!(out.contains("ks_core_cache_hits 3"), "{out}");
        // The scoped cell and its global roll-up share one family.
        assert!(
            out.contains("gpu_pf_iterations{pipeline=\"p0\"} 5"),
            "{out}"
        );
        assert!(out.contains("gpu_pf_iterations 5"), "{out}");
        assert_eq!(out.matches("# TYPE gpu_pf_iterations counter").count(), 1);
        assert!(
            out.contains("gpu_pf_iteration_us{pipeline=\"p0\",quantile=\"0.95\"}"),
            "{out}"
        );
        assert!(
            out.contains("gpu_pf_iteration_us_count{pipeline=\"p0\"} 1"),
            "{out}"
        );
        validate_prometheus(&out).unwrap();
    }

    #[test]
    fn prometheus_validator_rejects_schema_violations() {
        validate_prometheus("# TYPE m counter\nm 1\nm{k=\"v\"} 2\n").unwrap();
        validate_prometheus("# TYPE h summary\nh{quantile=\"0.5\"} 1\nh_sum 1\nh_count 1\n")
            .unwrap();
        assert!(validate_prometheus("orphan 1\n").is_err());
        assert!(validate_prometheus("# TYPE m counter\nm notanumber\n").is_err());
        assert!(validate_prometheus("# TYPE m counter\nm{k=unquoted} 1\n").is_err());
        assert!(validate_prometheus("# TYPE m widget\nm 1\n").is_err());
        assert!(validate_prometheus("# TYPE c counter\nc_sum 1\n").is_err());
    }

    #[test]
    fn prometheus_profile_exposes_labeled_counters() {
        let p = KernelProfile {
            kernel: "template_match".to_string(),
            device: "c2070".to_string(),
            variant: "v1".to_string(),
            ..Default::default()
        };
        let out = PrometheusExporter.profile(&p);
        assert!(
            out.contains(
                "ks_core_cache_hits{kernel=\"template_match\",variant=\"v1\",device=\"c2070\"} 0"
            ),
            "{out}"
        );
        validate_prometheus(&out).unwrap();
        assert_eq!(ExportFormat::parse("prom"), Some(ExportFormat::Prom));
        assert_eq!(ExportFormat::parse("prometheus"), Some(ExportFormat::Prom));
        assert!(ExportFormat::Prom.exporter().spans(&[]).starts_with('#'));
    }
}
