//! Pluggable renderers for spans, metric snapshots, and kernel
//! profiles: human-readable text, JSON-lines, and CSV.

use crate::json::Json;
use crate::metrics::MetricsSnapshot;
use crate::profile::{span_to_json, KernelProfile};
use crate::span::SpanRecord;
use std::fmt::Write as _;

/// Output format selector, e.g. for a `--export` CLI flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExportFormat {
    Text,
    Jsonl,
    Csv,
    /// Collapsed-stack ("folded") lines for flamegraph tooling.
    Flame,
    /// Chrome `trace_event` JSON, loadable in `chrome://tracing` /
    /// Perfetto.
    Chrome,
}

impl ExportFormat {
    pub fn parse(s: &str) -> Option<ExportFormat> {
        match s {
            "text" => Some(ExportFormat::Text),
            "jsonl" | "json" => Some(ExportFormat::Jsonl),
            "csv" => Some(ExportFormat::Csv),
            "flame" | "folded" => Some(ExportFormat::Flame),
            "chrome" | "trace_event" => Some(ExportFormat::Chrome),
            _ => None,
        }
    }

    pub fn exporter(self) -> Box<dyn Exporter> {
        match self {
            ExportFormat::Text => Box::new(TextExporter),
            ExportFormat::Jsonl => Box::new(JsonlExporter),
            ExportFormat::Csv => Box::new(CsvExporter),
            ExportFormat::Flame => Box::new(FlamegraphExporter),
            ExportFormat::Chrome => Box::new(ChromeTraceExporter),
        }
    }
}

/// Renders observability data to a string in one format.
pub trait Exporter {
    fn spans(&self, spans: &[SpanRecord]) -> String;
    fn metrics(&self, snapshot: &MetricsSnapshot) -> String;
    fn profile(&self, profile: &KernelProfile) -> String;
}

/// Spans sorted for display: by thread, then start time — children
/// follow their parents because a child starts no earlier.
fn display_order(spans: &[SpanRecord]) -> Vec<&SpanRecord> {
    let mut ordered: Vec<&SpanRecord> = spans.iter().collect();
    ordered.sort_by_key(|s| (s.thread, s.start_ns, s.id));
    ordered
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 10_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.1}µs", ns as f64 / 1e3)
    }
}

/// Human-readable indented renderer.
pub struct TextExporter;

impl Exporter for TextExporter {
    fn spans(&self, spans: &[SpanRecord]) -> String {
        let mut out = String::new();
        for s in display_order(spans) {
            let _ = write!(
                out,
                "{:indent$}{} {}",
                "",
                s.name,
                fmt_ns(s.dur_ns),
                indent = 2 * s.depth as usize
            );
            for (k, v) in &s.fields {
                let _ = write!(out, " {k}={v}");
            }
            out.push('\n');
        }
        out
    }

    fn metrics(&self, snapshot: &MetricsSnapshot) -> String {
        let mut out = String::new();
        if !snapshot.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, v) in &snapshot.counters {
                let _ = writeln!(out, "  {name} = {v}");
            }
        }
        if !snapshot.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, v) in &snapshot.gauges {
                let _ = writeln!(out, "  {name} = {v:.4}");
            }
        }
        if !snapshot.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (name, h) in &snapshot.histograms {
                let _ = writeln!(
                    out,
                    "  {name}: n={} mean={:.1} min={} p50={} p95={} p99={} max={}",
                    h.count,
                    h.mean(),
                    h.min,
                    h.p50,
                    h.p95,
                    h.p99,
                    h.max
                );
            }
        }
        out
    }

    fn profile(&self, p: &KernelProfile) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "kernel profile: {} (device {}, variant {})",
            p.kernel, p.device, p.variant
        );
        if !p.defines.is_empty() {
            let defs: Vec<String> = p.defines.iter().map(|(k, v)| format!("{k}={v}")).collect();
            let _ = writeln!(out, "  defines: {}", defs.join(" "));
        }
        for c in &p.compiles {
            let _ = writeln!(
                out,
                "  compile {}: {}µs{}",
                c.module,
                c.total_us,
                if c.cached { " (cached)" } else { "" }
            );
            for (phase, us) in &c.phases {
                let _ = writeln!(out, "    {phase:<10} {us}µs");
            }
        }
        let _ = writeln!(
            out,
            "  cache: {} hits / {} misses ({:.1}% hit rate), {} dedup waits, {} evictions",
            p.cache.hits,
            p.cache.misses,
            100.0 * p.cache.hit_rate(),
            p.cache.dedup_waits,
            p.cache.evictions
        );
        let _ = writeln!(
            out,
            "  exec: {} launches, {} dyn insts, {} global bytes, {} divergent branches, {} barriers, {}µs sim time, occupancy {:.2}",
            p.exec.launches,
            p.exec.dyn_insts,
            p.exec.global_bytes,
            p.exec.divergent_branches,
            p.exec.barriers,
            p.exec.sim_time_us,
            p.exec.occupancy
        );
        for d in &p.diagnostics {
            let _ = writeln!(out, "  diagnostic: {d}");
        }
        if !p.spans.is_empty() {
            out.push_str("  spans:\n");
            for line in self.spans(&p.spans).lines() {
                let _ = writeln!(out, "    {line}");
            }
        }
        out
    }
}

/// One JSON object per line; profiles use the
/// [`KernelProfile::to_jsonl`] schema checked by
/// [`crate::validate_profile_jsonl`].
pub struct JsonlExporter;

impl Exporter for JsonlExporter {
    fn spans(&self, spans: &[SpanRecord]) -> String {
        let mut out = String::new();
        for s in display_order(spans) {
            out.push_str(&span_to_json(s).render());
            out.push('\n');
        }
        out
    }

    fn metrics(&self, snapshot: &MetricsSnapshot) -> String {
        let mut out = String::new();
        for (name, v) in &snapshot.counters {
            let line = Json::obj(vec![
                ("type", Json::str("counter")),
                ("name", Json::str(name)),
                ("value", Json::u64(*v)),
            ]);
            out.push_str(&line.render());
            out.push('\n');
        }
        for (name, v) in &snapshot.gauges {
            let line = Json::obj(vec![
                ("type", Json::str("gauge")),
                ("name", Json::str(name)),
                ("value", Json::num(*v)),
            ]);
            out.push_str(&line.render());
            out.push('\n');
        }
        for (name, h) in &snapshot.histograms {
            let line = Json::obj(vec![
                ("type", Json::str("histogram")),
                ("name", Json::str(name)),
                ("count", Json::u64(h.count)),
                ("sum", Json::u64(h.sum)),
                ("min", Json::u64(h.min)),
                ("max", Json::u64(h.max)),
                ("p50", Json::u64(h.p50)),
                ("p95", Json::u64(h.p95)),
                ("p99", Json::u64(h.p99)),
            ]);
            out.push_str(&line.render());
            out.push('\n');
        }
        out
    }

    fn profile(&self, p: &KernelProfile) -> String {
        p.to_jsonl()
    }
}

fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Flat comma-separated renderer (header row + data rows).
pub struct CsvExporter;

impl Exporter for CsvExporter {
    fn spans(&self, spans: &[SpanRecord]) -> String {
        let mut out = String::from("id,parent,name,depth,start_ns,dur_ns,thread\n");
        for s in display_order(spans) {
            let parent = s.parent.map_or(String::new(), |p| p.to_string());
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{}",
                s.id,
                parent,
                csv_field(&s.name),
                s.depth,
                s.start_ns,
                s.dur_ns,
                s.thread
            );
        }
        out
    }

    fn metrics(&self, snapshot: &MetricsSnapshot) -> String {
        let mut out = String::from("kind,name,field,value\n");
        for (name, v) in &snapshot.counters {
            let _ = writeln!(out, "counter,{},value,{v}", csv_field(name));
        }
        for (name, v) in &snapshot.gauges {
            let _ = writeln!(out, "gauge,{},value,{v}", csv_field(name));
        }
        for (name, h) in &snapshot.histograms {
            let name = csv_field(name);
            for (field, v) in [
                ("count", h.count),
                ("sum", h.sum),
                ("min", h.min),
                ("max", h.max),
                ("p50", h.p50),
                ("p95", h.p95),
                ("p99", h.p99),
            ] {
                let _ = writeln!(out, "histogram,{name},{field},{v}");
            }
        }
        out
    }

    fn profile(&self, p: &KernelProfile) -> String {
        let mut out = String::from("section,key,value\n");
        let _ = writeln!(out, "profile,kernel,{}", csv_field(&p.kernel));
        let _ = writeln!(out, "profile,device,{}", csv_field(&p.device));
        let _ = writeln!(out, "profile,variant,{}", csv_field(&p.variant));
        for (k, v) in &p.defines {
            let _ = writeln!(out, "define,{},{}", csv_field(k), csv_field(v));
        }
        for c in &p.compiles {
            let section = csv_field(&format!("compile.{}", c.module));
            let _ = writeln!(out, "{section},cached,{}", c.cached);
            let _ = writeln!(out, "{section},total_us,{}", c.total_us);
            for (phase, us) in &c.phases {
                let _ = writeln!(out, "{section},{},{us}", csv_field(phase));
            }
        }
        for (k, v) in [
            ("hits", p.cache.hits),
            ("misses", p.cache.misses),
            ("dedup_waits", p.cache.dedup_waits),
            ("evictions", p.cache.evictions),
        ] {
            let _ = writeln!(out, "cache,{k},{v}");
        }
        let _ = writeln!(out, "cache,hit_rate,{:.4}", p.cache.hit_rate());
        for (k, v) in [
            ("launches", p.exec.launches),
            ("dyn_insts", p.exec.dyn_insts),
            ("global_bytes", p.exec.global_bytes),
            ("divergent_branches", p.exec.divergent_branches),
            ("barriers", p.exec.barriers),
            ("sim_time_us", p.exec.sim_time_us),
        ] {
            let _ = writeln!(out, "exec,{k},{v}");
        }
        let _ = writeln!(out, "exec,occupancy,{:.4}", p.exec.occupancy);
        out
    }
}

/// Collapsed-stack ("folded") renderer: one `root;child;leaf value`
/// line per distinct stack, the input format of flamegraph tooling.
/// Span values are *self* nanoseconds (duration minus the duration of
/// child spans), so the rendered graph's widths sum correctly.
pub struct FlamegraphExporter;

impl FlamegraphExporter {
    /// The `a;b;c` stack string for one span: parent-chain names,
    /// root-first. A missing parent id (span drained separately) makes
    /// the span a root.
    fn stack(by_id: &std::collections::HashMap<u64, &SpanRecord>, s: &SpanRecord) -> String {
        let mut names = vec![s.name.as_str()];
        let mut cur = s;
        while let Some(p) = cur.parent.and_then(|id| by_id.get(&id)) {
            names.push(p.name.as_str());
            cur = p;
        }
        names.reverse();
        // The folded format separates frames with ';'; scrub it from
        // names so a hostile span name can't forge frames.
        names
            .iter()
            .map(|n| n.replace(';', ":"))
            .collect::<Vec<_>>()
            .join(";")
    }
}

impl Exporter for FlamegraphExporter {
    fn spans(&self, spans: &[SpanRecord]) -> String {
        let by_id: std::collections::HashMap<u64, &SpanRecord> =
            spans.iter().map(|s| (s.id, s)).collect();
        // Self time = duration minus direct children's durations.
        let mut child_ns: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for s in spans {
            if let Some(p) = s.parent {
                *child_ns.entry(p).or_insert(0) += s.dur_ns;
            }
        }
        // Aggregate identical stacks (e.g. the same pass across many
        // compiles) into one line, as folded-format consumers expect.
        let mut folded: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
        for s in spans {
            let self_ns = s
                .dur_ns
                .saturating_sub(child_ns.get(&s.id).copied().unwrap_or(0));
            *folded.entry(Self::stack(&by_id, s)).or_insert(0) += self_ns;
        }
        let mut out = String::new();
        for (stack, ns) in folded {
            let _ = writeln!(out, "{stack} {ns}");
        }
        out
    }

    fn metrics(&self, snapshot: &MetricsSnapshot) -> String {
        // Counters fold naturally: dotted names become frame stacks
        // (`ks_core.cache.hits` → `ks_core;cache;hits`), values are the
        // counts — a flamegraph of where events happen.
        let mut out = String::new();
        for (name, v) in &snapshot.counters {
            let _ = writeln!(out, "{} {v}", name.replace('.', ";"));
        }
        out
    }

    fn profile(&self, p: &KernelProfile) -> String {
        self.spans(&p.spans)
    }
}

/// Chrome `trace_event` renderer: a `{"traceEvents": [...]}` document of
/// complete (`ph:"X"`) events with microsecond timestamps, loadable in
/// `chrome://tracing` and Perfetto. Span fields ride along as `args`.
pub struct ChromeTraceExporter;

impl ChromeTraceExporter {
    fn span_event(s: &SpanRecord) -> Json {
        let args = Json::Obj(
            s.fields
                .iter()
                .map(|(k, v)| (k.clone(), Json::str(v.clone())))
                .collect(),
        );
        Json::obj(vec![
            ("name", Json::str(s.name.clone())),
            ("cat", Json::str("span")),
            ("ph", Json::str("X")),
            ("ts", Json::num(s.start_ns as f64 / 1e3)),
            ("dur", Json::num(s.dur_ns as f64 / 1e3)),
            ("pid", Json::u64(1)),
            ("tid", Json::u64(s.thread)),
            ("args", args),
        ])
    }

    fn document(events: Vec<Json>) -> String {
        Json::obj(vec![
            ("traceEvents", Json::Arr(events)),
            ("displayTimeUnit", Json::str("ms")),
        ])
        .render()
    }
}

impl Exporter for ChromeTraceExporter {
    fn spans(&self, spans: &[SpanRecord]) -> String {
        let events = display_order(spans)
            .into_iter()
            .map(Self::span_event)
            .collect();
        Self::document(events)
    }

    fn metrics(&self, snapshot: &MetricsSnapshot) -> String {
        // Counter (`ph:"C"`) events at t=0: a one-shot value dump rather
        // than a time series, which is all a snapshot holds.
        let mut events = Vec::new();
        for (name, v) in &snapshot.counters {
            events.push(Json::obj(vec![
                ("name", Json::str(name.clone())),
                ("ph", Json::str("C")),
                ("ts", Json::u64(0)),
                ("pid", Json::u64(1)),
                ("args", Json::obj(vec![("value", Json::u64(*v))])),
            ]));
        }
        for (name, g) in &snapshot.gauges {
            events.push(Json::obj(vec![
                ("name", Json::str(name.clone())),
                ("ph", Json::str("C")),
                ("ts", Json::u64(0)),
                ("pid", Json::u64(1)),
                ("args", Json::obj(vec![("value", Json::num(*g))])),
            ]));
        }
        Self::document(events)
    }

    fn profile(&self, p: &KernelProfile) -> String {
        // Label the process with the kernel identity, then the span tree.
        let mut events = vec![Json::obj(vec![
            ("name", Json::str("process_name")),
            ("ph", Json::str("M")),
            ("pid", Json::u64(1)),
            (
                "args",
                Json::obj(vec![(
                    "name",
                    Json::str(format!("{} [{}] {}", p.kernel, p.variant, p.device)),
                )]),
            ),
        ])];
        events.extend(display_order(&p.spans).into_iter().map(Self::span_event));
        Self::document(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;
    use crate::profile::{CacheCounters, CompileProfile, ExecCounters};

    fn sample_spans() -> Vec<SpanRecord> {
        vec![
            SpanRecord {
                id: 2,
                parent: Some(1),
                name: "parse".to_string(),
                depth: 1,
                start_ns: 100,
                dur_ns: 400,
                thread: 0,
                fields: vec![("module".to_string(), "m".to_string())],
            },
            SpanRecord {
                id: 1,
                parent: None,
                name: "compile".to_string(),
                depth: 0,
                start_ns: 0,
                dur_ns: 1_000,
                thread: 0,
                fields: vec![],
            },
        ]
    }

    #[test]
    fn text_spans_indent_by_depth() {
        let text = TextExporter.spans(&sample_spans());
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("compile "), "{text}");
        assert!(lines[1].starts_with("  parse "), "{text}");
        assert!(lines[1].contains("module=m"), "{text}");
    }

    #[test]
    fn jsonl_spans_parse_back() {
        let out = JsonlExporter.spans(&sample_spans());
        for line in out.lines() {
            let doc = Json::parse(line).unwrap();
            assert_eq!(doc.get("type").and_then(Json::as_str), Some("span"));
            assert!(doc.get("dur_ns").and_then(Json::as_u64).is_some());
        }
    }

    #[test]
    fn csv_spans_have_header_and_rows() {
        let out = CsvExporter.spans(&sample_spans());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "id,parent,name,depth,start_ns,dur_ns,thread");
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("1,,compile,0,"), "{out}");
        assert!(lines[2].starts_with("2,1,parse,1,"), "{out}");
    }

    #[test]
    fn metric_exports_cover_all_kinds() {
        let r = Registry::new();
        r.counter("c").add(7);
        r.gauge("g").set(0.5);
        r.histogram("h").record(9);
        let snap = r.snapshot();
        let text = TextExporter.metrics(&snap);
        assert!(text.contains("c = 7"), "{text}");
        assert!(text.contains("g = 0.5000"), "{text}");
        assert!(text.contains("h: n=1"), "{text}");
        let jsonl = JsonlExporter.metrics(&snap);
        assert_eq!(jsonl.lines().count(), 3);
        for line in jsonl.lines() {
            Json::parse(line).unwrap();
        }
        let csv = CsvExporter.metrics(&snap);
        assert!(csv.contains("counter,c,value,7"), "{csv}");
        assert!(csv.contains("histogram,h,p50,9"), "{csv}");
    }

    #[test]
    fn format_parsing_and_dispatch() {
        assert_eq!(ExportFormat::parse("text"), Some(ExportFormat::Text));
        assert_eq!(ExportFormat::parse("jsonl"), Some(ExportFormat::Jsonl));
        assert_eq!(ExportFormat::parse("json"), Some(ExportFormat::Jsonl));
        assert_eq!(ExportFormat::parse("csv"), Some(ExportFormat::Csv));
        assert_eq!(ExportFormat::parse("xml"), None);
        let p = KernelProfile {
            kernel: "k".to_string(),
            device: "c2070".to_string(),
            variant: "v".to_string(),
            compiles: vec![CompileProfile {
                module: "m".to_string(),
                cached: false,
                total_us: 10,
                phases: vec![("parse".to_string(), 10)],
            }],
            cache: CacheCounters::default(),
            exec: ExecCounters::default(),
            ..Default::default()
        };
        for fmt in [ExportFormat::Text, ExportFormat::Jsonl, ExportFormat::Csv] {
            let rendered = fmt.exporter().profile(&p);
            assert!(rendered.contains("c2070"), "{fmt:?}: {rendered}");
        }
    }

    #[test]
    fn flamegraph_folds_stacks_with_self_time() {
        let out = FlamegraphExporter.spans(&sample_spans());
        let lines: Vec<&str> = out.lines().collect();
        // BTreeMap order: "compile" before "compile;parse".
        assert_eq!(lines, vec!["compile 600", "compile;parse 400"], "{out}");
        // Identical stacks aggregate.
        let mut spans = sample_spans();
        let mut again = sample_spans();
        for s in &mut again {
            s.id += 10;
            s.parent = s.parent.map(|p| p + 10);
        }
        spans.extend(again);
        let out = FlamegraphExporter.spans(&spans);
        assert_eq!(
            out.lines().collect::<Vec<_>>(),
            vec!["compile 1200", "compile;parse 800"],
            "{out}"
        );
    }

    #[test]
    fn flamegraph_metrics_fold_counter_names() {
        let r = Registry::new();
        r.counter("ks_core.cache.hits").add(3);
        let out = FlamegraphExporter.metrics(&r.snapshot());
        assert_eq!(out, "ks_core;cache;hits 3\n");
    }

    #[test]
    fn chrome_trace_is_valid_json_with_complete_events() {
        let out = ChromeTraceExporter.spans(&sample_spans());
        let doc = Json::parse(&out).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert_eq!(events.len(), 2);
        // display_order puts the parent (start 0) first.
        let first = &events[0];
        assert_eq!(first.get("name").and_then(Json::as_str), Some("compile"));
        assert_eq!(first.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(first.get("dur").and_then(Json::as_f64), Some(1.0));
        let second = &events[1];
        assert_eq!(second.get("ts").and_then(Json::as_f64), Some(0.1));
        assert_eq!(
            second
                .get("args")
                .and_then(|a| a.get("module"))
                .and_then(Json::as_str),
            Some("m")
        );
    }

    #[test]
    fn chrome_metrics_render_counter_events() {
        let r = Registry::new();
        r.counter("c").add(7);
        r.gauge("g").set(0.25);
        let out = ChromeTraceExporter.metrics(&r.snapshot());
        let doc = Json::parse(&out).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert_eq!(events.len(), 2);
        assert!(events
            .iter()
            .all(|e| e.get("ph").and_then(Json::as_str) == Some("C")));
    }

    #[test]
    fn new_formats_parse_and_dispatch() {
        assert_eq!(ExportFormat::parse("flame"), Some(ExportFormat::Flame));
        assert_eq!(ExportFormat::parse("folded"), Some(ExportFormat::Flame));
        assert_eq!(ExportFormat::parse("chrome"), Some(ExportFormat::Chrome));
        assert_eq!(
            ExportFormat::parse("trace_event"),
            Some(ExportFormat::Chrome)
        );
        let spans = sample_spans();
        assert!(ExportFormat::Flame
            .exporter()
            .spans(&spans)
            .contains("compile;parse"));
        assert!(ExportFormat::Chrome
            .exporter()
            .spans(&spans)
            .contains("traceEvents"));
    }

    #[test]
    fn csv_quoting_escapes_commas_and_quotes() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }
}
