//! Minimal JSON value type with an emitter and a parser.
//!
//! The workspace vendors no serialization framework, and the profiling
//! exporters only need flat-ish documents (span records, metric
//! snapshots, kernel profiles), so this module implements just enough
//! of RFC 8259: objects, arrays, strings with escape handling, f64
//! numbers, booleans, and null. Object insertion order is preserved so
//! exported lines are stable and diffable.

use std::fmt::Write as _;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered object.
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Lossless only up to 2^53; fine for durations and event counts
    /// at the magnitudes the pipeline produces.
    pub fn u64(n: u64) -> Json {
        Json::Num(n as f64)
    }

    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Object field lookup (None for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse one complete JSON document; rejects trailing garbage.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {} (found {:?})",
            b as char,
            *pos,
            bytes.get(*pos).map(|&b| b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        other => Err(format!("unexpected {:?} at byte {}", other, *pos)),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && (bytes[*pos].is_ascii_digit() || matches!(bytes[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (bytes are valid UTF-8:
                // the input came in as &str).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            other => return Err(format!("expected ',' or ']' (found {other:?})")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        fields.push((key, parse_value(bytes, pos)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            other => return Err(format!("expected ',' or '}}' (found {other:?})")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_documents() {
        let doc = Json::obj(vec![
            ("name", Json::str("compile")),
            ("dur_us", Json::u64(1234)),
            ("occupancy", Json::num(0.75)),
            ("ok", Json::Bool(true)),
            ("parent", Json::Null),
            (
                "children",
                Json::Arr(vec![Json::obj(vec![("name", Json::str("parse"))])]),
            ),
        ]);
        let text = doc.render();
        assert_eq!(Json::parse(&text).unwrap(), doc);
        assert_eq!(doc.get("dur_us").and_then(Json::as_u64), Some(1234));
        assert_eq!(doc.get("name").and_then(Json::as_str), Some("compile"));
        assert_eq!(
            doc.get("children")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(1)
        );
    }

    #[test]
    fn escapes_are_symmetric() {
        let doc = Json::str("tab\there \"quoted\" back\\slash\nline\u{1}");
        let text = doc.render();
        assert_eq!(
            text,
            "\"tab\\there \\\"quoted\\\" back\\\\slash\\nline\\u0001\""
        );
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::u64(42).render(), "42");
        assert_eq!(Json::num(0.5).render(), "0.5");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn parses_whitespace_and_unicode() {
        let v = Json::parse(" { \"k\" : [ 1 , \"\\u00e9\" , null ] } ").unwrap();
        let arr = v.get("k").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_str(), Some("é"));
        assert_eq!(arr[2], Json::Null);
    }
}
