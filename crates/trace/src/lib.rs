//! # ks-trace — unified tracing, metrics, and per-kernel profiling
//!
//! The dissertation's methodology lives on measurement: Appendix-G refresh
//! logs, §4.3 per-phase compile timing, and the Chapter-6 runtime tables
//! all depend on knowing where cycles and compiles go. Before this crate,
//! every subsystem spoke its own dialect — `CompileMetrics` in ks-core,
//! `ExecStats` in ks-sim, `CacheStats` in the binary cache, a bespoke line
//! `Logger` in gpu-pf. ks-trace is the one layer they all publish into:
//!
//! * **Spans** ([`span`], [`SpanGuard`], [`SpanRecord`]) — monotonic,
//!   nested timing of the full pipeline path `compile → preprocess →
//!   parse → sema → lower → opt-pass(each) → analysis → regalloc →
//!   cache-lookup → launch → pipeline-iteration`. Zero-cost when tracing
//!   is disabled (the default): a disabled [`SpanGuard`] records nothing
//!   and never reads the clock.
//! * **Metrics registry** ([`registry`], [`Counter`], [`Gauge`],
//!   [`Histogram`]) — process-wide named counters, gauges, and log-scale
//!   histograms with p50/p95/p99 queries. ks-core publishes compile
//!   latency per phase and cache hit/miss/dedup/eviction counts, ks-sim
//!   publishes dynamic instructions / global bytes / divergent branches /
//!   occupancy, ks-tune publishes evaluation counts, gpu-pf publishes
//!   pipeline iterations. Canonical metric names live in [`names`].
//! * **Exporters** ([`Exporter`], [`TextExporter`], [`JsonlExporter`],
//!   [`CsvExporter`]) — render spans, metric snapshots, and profiles as
//!   human-readable text, JSON-lines, or CSV.
//! * **[`KernelProfile`]** — the joined report for one specialized
//!   kernel: per-phase compile breakdown, cache counters, simulator
//!   execution counters, analysis diagnostics, and the span tree;
//!   surfaced by the `ks-prof` CLI (in ks-apps) and schema-validated via
//!   [`validate_profile_jsonl`].
//! * **[`Subscriber`]** — the line-event sink interface the gpu-pf
//!   `Logger` now routes through, so refresh logs, bench CSVs, and tuner
//!   decisions are all fed by the same layer.
//!
//! ```
//! use ks_trace::{registry, span, Exporter, TextExporter};
//!
//! ks_trace::set_enabled(true);
//! {
//!     let _outer = span("compile");
//!     let _inner = span("parse");
//!     registry().counter("demo.compiles").inc();
//! }
//! let spans = ks_trace::drain_spans();
//! assert!(spans.iter().any(|s| s.name == "parse" && s.depth == 1));
//! println!("{}", TextExporter.spans(&spans));
//! ks_trace::set_enabled(false);
//! ```

mod export;
mod json;
mod metrics;
mod profile;
mod scope;
mod span;
mod subscriber;
pub mod watchdog;
pub mod window;

pub use export::{
    validate_prometheus, ChromeTraceExporter, CsvExporter, ExportFormat, Exporter,
    FlamegraphExporter, JsonlExporter, PrometheusExporter, TextExporter,
};
pub use json::Json;
pub use metrics::{
    registry, Counter, Gauge, Histogram, HistogramCells, HistogramSnapshot, MetricsSnapshot,
    Registry,
};
pub use profile::{
    validate_profile_jsonl, CacheCounters, CompileProfile, ExecCounters, KernelProfile,
};
pub use scope::{parse_scoped_name, scoped_counter_sum, scoped_counters, scoped_name, Scope};
pub use span::{
    complete_span, drain_spans, enabled, set_enabled, snapshot_spans, span, span_fields, SpanGuard,
    SpanRecord,
};
pub use subscriber::{StreamSink, Subscriber, WriterSink};
pub use watchdog::{Baseline, CounterRule, SloBreach, SloEvent, SloPolicy, SloRule, Watchdog};
pub use window::{History, TickDelta, WindowSummary, WindowView};

/// Canonical metric names. Publishers and consumers meet here so the
/// bench sidecars, `ks-prof`, and tests all read the counters the
/// pipeline actually writes.
pub mod names {
    /// Cache hits (including single-flight dedup joins), as in
    /// `CacheStats::hits`.
    pub const CACHE_HITS: &str = "ks_core.cache.hits";
    /// Cache misses (actual compilations), as in `CacheStats::misses`.
    pub const CACHE_MISSES: &str = "ks_core.cache.misses";
    /// LRU evictions, as in `CacheStats::evictions`.
    pub const CACHE_EVICTIONS: &str = "ks_core.cache.evictions";
    /// Calls that blocked on another thread's in-flight compilation.
    pub const CACHE_DEDUP_WAITS: &str = "ks_core.cache.dedup_waits";
    /// Successful `Compiler::compile` calls. At quiescence,
    /// `CACHE_HITS + CACHE_MISSES == COMPILE_REQUESTS`.
    pub const COMPILE_REQUESTS: &str = "ks_core.compile.requests";
    /// End-to-end compile latency histogram (µs), misses only.
    pub const COMPILE_TOTAL_US: &str = "ks_core.compile.total_us";
    /// Per-phase compile latency histogram name (µs), misses only.
    pub fn compile_phase_us(phase: &str) -> String {
        format!("ks_core.compile.phase_us.{phase}")
    }
    /// Translation-validation comparisons performed (function × env ×
    /// stage), misses only, when validation is enabled.
    pub const VERIFY_CHECKS: &str = "ks_verify.checks";
    /// Translation-validation *error* findings (KSV0xx): a pass or a
    /// specialization changed observable behavior.
    pub const VERIFY_DIFFS: &str = "ks_verify.diffs";
    /// Inconclusive verification outcomes (KSV101): budgets stopped
    /// evaluation before a verdict.
    pub const VERIFY_INCONCLUSIVE: &str = "ks_verify.inconclusive";
    /// Simulator launches completed.
    pub const SIM_LAUNCHES: &str = "ks_sim.launches";
    /// Dynamic instructions, summed over launches (`ExecStats::dyn_insts`).
    pub const SIM_DYN_INSTS: &str = "ks_sim.dyn_insts";
    /// Global-memory bytes moved (`ExecStats::global_bytes`).
    pub const SIM_GLOBAL_BYTES: &str = "ks_sim.global_bytes";
    /// Divergent branches (`ExecStats::divergent_branches`).
    pub const SIM_DIVERGENT_BRANCHES: &str = "ks_sim.divergent_branches";
    /// Barriers executed (`ExecStats::barriers`).
    pub const SIM_BARRIERS: &str = "ks_sim.barriers";
    /// Simulated kernel time histogram (µs of simulated time).
    pub const SIM_TIME_US: &str = "ks_sim.time_us";
    /// Occupancy of the most recent launch (gauge, 0..=1).
    pub const SIM_OCCUPANCY: &str = "ks_sim.occupancy";
    /// Distinct autotuner evaluations performed.
    pub const TUNE_EVALUATIONS: &str = "ks_tune.evaluations";
    /// GPU-PF pipeline iterations executed.
    pub const PF_ITERATIONS: &str = "gpu_pf.iterations";
    /// GPU-PF refresh phases completed.
    pub const PF_REFRESHES: &str = "gpu_pf.refreshes";
    /// Compile retry attempts after a leader failure
    /// (`CacheStats::retries`).
    pub const COMPILE_RETRIES: &str = "ks_core.compile.retries";
    /// `Compiler::compile` calls that returned an error
    /// (`CacheStats::failures`). Failures are itemized outside the
    /// `hits + misses == requests` invariant, which counts successes.
    pub const CACHE_FAILURES: &str = "ks_core.cache.failures";
    /// Calls fast-failed from a quarantined (recently failed) entry
    /// without re-compiling (`CacheStats::quarantined`).
    pub const CACHE_QUARANTINED: &str = "ks_core.cache.quarantined";
    /// Per-variant circuit-breaker open transitions
    /// (`CacheStats::breaker_opens`).
    pub const BREAKER_OPEN: &str = "ks_core.breaker.open";
    /// Compile calls served from the persistent artifact store
    /// (`CacheStats::disk_hits`; each is also counted in `CACHE_HITS`).
    pub const STORE_DISK_HITS: &str = "ks_core.store.disk_hits";
    /// Leader compiles that probed an attached store and found no
    /// record (`CacheStats::disk_misses`).
    pub const STORE_DISK_MISSES: &str = "ks_core.store.disk_misses";
    /// Store read/write failures degraded to a recompile
    /// (`CacheStats::store_errors`).
    pub const STORE_ERRORS: &str = "ks_core.store.errors";
    /// Device faults injected by an active `ks_fault::FaultPlan`.
    pub const SIM_FAULTS_INJECTED: &str = "ks_sim.faults_injected";
    /// GPU-PF refreshes that degraded a module to the generic
    /// (unspecialized) kernel binary after a failed specialized compile.
    pub const PF_FALLBACK_GENERIC: &str = "gpu_pf.fallback.generic";
    /// GPU-PF refreshes that kept a module's last-known-good binary
    /// after a failed specialized compile.
    pub const PF_FALLBACK_LAST_GOOD: &str = "gpu_pf.fallback.last_good";
    /// GPU-PF kernel launches retried after a transient device fault.
    pub const PF_LAUNCH_RETRIES: &str = "gpu_pf.launch.retries";
    /// Background compile tickets enqueued via `Compiler::spawn_compile`.
    /// At quiescence, `ASYNC_SPAWNED == ASYNC_COMPLETED + ASYNC_FAILED +
    /// ASYNC_CANCELLED`.
    pub const ASYNC_SPAWNED: &str = "ks_core.async.spawned";
    /// Background compiles that resolved with a binary.
    pub const ASYNC_COMPLETED: &str = "ks_core.async.completed";
    /// Background compiles that resolved with a `CompileError` (including
    /// worker-site injected faults and dropped compilers).
    pub const ASYNC_FAILED: &str = "ks_core.async.failed";
    /// Tickets cancelled before their job ran (superseded promotions).
    pub const ASYNC_CANCELLED: &str = "ks_core.async.cancelled";
    /// Queue wait histogram (µs): enqueue → worker pickup.
    pub const ASYNC_QUEUE_WAIT_US: &str = "ks_core.async.queue_wait_us";
    /// GPU-PF modules hot-swapped from a fallback tier to their
    /// specialized binary (`tier_swap` spans mark each one).
    pub const PF_PROMOTIONS: &str = "gpu_pf.promotions";
    /// GPU-PF promotions whose background compile failed; the module
    /// keeps its fallback binary and retries on the next refresh.
    pub const PF_PROMOTIONS_FAILED: &str = "gpu_pf.promotions.failed";
    /// In-flight promotions superseded because the module was re-dirtied
    /// before the ticket resolved; the stale ticket is cancelled and its
    /// result (if any) discarded.
    pub const PF_PROMOTIONS_SUPERSEDED: &str = "gpu_pf.promotions.superseded";
    /// Promotion latency histogram (µs): ticket spawn → hot-swap. The
    /// same interval the `tier_swap` spans record, always-on.
    pub const PF_PROMOTION_LATENCY_US: &str = "gpu_pf.promotion.latency_us";
    /// Per-iteration pipeline wall time histogram (µs). Scoped
    /// per-pipeline, this is the windowed-p95 readout `ks-prof watch`
    /// displays.
    pub const PF_ITERATION_US: &str = "gpu_pf.iteration_us";
    /// Time-in-tier dwell histogram name (µs) for one tier
    /// (`generic` / `promoting` / `specialized` / `failed`): how long a
    /// module sat on that tier before transitioning off it.
    pub fn pf_tier_dwell_us(tier: &str) -> String {
        format!("gpu_pf.tier.dwell_us.{tier}")
    }
    /// Typed SLO-breach events emitted by the [`crate::Watchdog`].
    pub const SLO_BREACHES: &str = "ks_trace.slo.breaches";
    /// SLO recoveries (breached metric back under budget).
    pub const SLO_RECOVERIES: &str = "ks_trace.slo.recoveries";
    /// Lines dropped by bounded [`crate::StreamSink`]s (ring full; the
    /// hot path never blocks on a slow consumer).
    pub const SINK_DROPPED: &str = "ks_trace.sink.dropped";
    /// Silent bit flips actually applied to device memory by an active
    /// `ks_fault::FaultPlan` (`FaultKind::SilentFlip`). Counted only
    /// when a bit changed, so a drill can reconcile corruptions applied
    /// vs. detected exactly.
    pub const SIM_SILENT_FLIPS: &str = "ks_sim.silent_flips";
    /// GPU-PF integrity checks performed (one per integrity-checked
    /// exec launch: checksum and, when scheduled, witness comparison).
    pub const PF_INTEGRITY_CHECKS: &str = "gpu_pf.integrity.checks";
    /// Witness launches: the generic (RE) binary re-run on the saved
    /// pre-launch inputs to referee the specialized output.
    pub const PF_INTEGRITY_WITNESS: &str = "gpu_pf.integrity.witness_launches";
    /// Typed `IntegrityViolation`s raised (golden-checksum or witness
    /// mismatch). The SDC-rate watchdog rule breaches on this counter.
    pub const PF_INTEGRITY_VIOLATIONS: &str = "gpu_pf.integrity.violations";
    /// Violations triaged as transient device flips by N-of-M
    /// re-execution voting (the binary reproduced the witness output).
    pub const PF_INTEGRITY_TRANSIENT: &str = "gpu_pf.integrity.transient_flips";
    /// Violations triaged as corrupt binaries (re-executions kept
    /// disagreeing with the witness); the variant is quarantined through
    /// the degradation ladder.
    pub const PF_INTEGRITY_CORRUPT: &str = "gpu_pf.integrity.corrupt_binaries";
    /// Violations fully recovered: the iteration re-executed cleanly and
    /// the output now matches the witness.
    pub const PF_INTEGRITY_RECOVERED: &str = "gpu_pf.integrity.recovered";
    /// Launches re-executed during violation triage and recovery
    /// (voting re-runs plus the final clean re-execution).
    pub const PF_INTEGRITY_REEXECS: &str = "gpu_pf.integrity.reexecutions";
    /// Records visited by a `ks_store` scrub walk.
    pub const STORE_SCRUB_SCANNED: &str = "ks_store.scrub.scanned";
    /// Records a scrub walk moved into `quarantine/` (corrupt payload,
    /// bad header, or unparsable name).
    pub const STORE_SCRUB_QUARANTINED: &str = "ks_store.scrub.quarantined";
}
