//! Process-wide metrics registry: named counters, gauges, and
//! log-scale histograms.
//!
//! Unlike spans, metrics are **always on** — each publish is one or two
//! atomic operations, cheap enough for the compile and launch hot
//! paths. Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`s
//! into the registry, so call sites can look a metric up once (e.g. in
//! a `OnceLock`) and publish lock-free afterwards.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

struct CounterInner {
    value: AtomicU64,
    /// Scoped metrics chain to their parent (the next-outer label set,
    /// ending at the unlabeled global), so one publish lands in every
    /// aggregate and roll-up parity holds by construction.
    parent: Option<Counter>,
}

/// Monotonically increasing event count.
#[derive(Clone)]
pub struct Counter(Arc<CounterInner>);

impl Counter {
    fn new(parent: Option<Counter>) -> Self {
        Counter(Arc::new(CounterInner {
            value: AtomicU64::new(0),
            parent,
        }))
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        let mut cur = self;
        loop {
            cur.0.value.fetch_add(n, Ordering::Relaxed);
            match &cur.0.parent {
                Some(p) => cur = p,
                None => break,
            }
        }
    }

    pub fn get(&self) -> u64 {
        self.0.value.load(Ordering::Relaxed)
    }
}

struct GaugeInner {
    bits: AtomicU64,
    parent: Option<Gauge>,
}

/// Last-write-wins floating-point level (e.g. occupancy).
#[derive(Clone)]
pub struct Gauge(Arc<GaugeInner>);

impl Gauge {
    fn new(parent: Option<Gauge>) -> Self {
        Gauge(Arc::new(GaugeInner {
            bits: AtomicU64::new(0f64.to_bits()),
            parent,
        }))
    }

    pub fn set(&self, v: f64) {
        let mut cur = self;
        loop {
            cur.0.bits.store(v.to_bits(), Ordering::Relaxed);
            match &cur.0.parent {
                Some(p) => cur = p,
                None => break,
            }
        }
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.bits.load(Ordering::Relaxed))
    }
}

/// Subbucket resolution: 2^4 = 16 subbuckets per power of two, i.e.
/// bucket boundaries track values to within ~6.25% relative error.
const SUB_BITS: u32 = 4;
const SUBBUCKETS: usize = 1 << SUB_BITS;
/// Values below `SUBBUCKETS` get one exact bucket each; above that,
/// each octave `[2^m, 2^(m+1))` for `m in 4..=63` splits into 16.
const BUCKETS: usize = SUBBUCKETS + (64 - SUB_BITS as usize) * SUBBUCKETS;

struct HistogramInner {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    parent: Option<Histogram>,
}

/// Fixed-memory log-scale histogram of `u64` samples (HDR-style:
/// 16 subbuckets per octave, so quantile answers carry at most ~6.25%
/// relative error). Recording is lock-free.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    fn new(parent: Option<Histogram>) -> Self {
        Histogram(Arc::new(HistogramInner {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            parent,
        }))
    }

    /// Bucket index for a value: exact below 16, then
    /// `(msb - 3) * 16 + subbucket` where the subbucket is the 4 bits
    /// below the most significant one.
    pub fn bucket_index(v: u64) -> usize {
        if v < SUBBUCKETS as u64 {
            return v as usize;
        }
        let msb = 63 - v.leading_zeros();
        let sub = (v >> (msb - SUB_BITS)) as usize - SUBBUCKETS;
        (msb - (SUB_BITS - 1)) as usize * SUBBUCKETS + sub
    }

    /// Largest value mapping to `index` — the representative returned
    /// by quantile queries, so reported quantiles never understate.
    pub fn bucket_value(index: usize) -> u64 {
        if index < SUBBUCKETS {
            return index as u64;
        }
        let msb = (index / SUBBUCKETS) as u32 + (SUB_BITS - 1);
        let sub = (index % SUBBUCKETS) as u64;
        let lower = (SUBBUCKETS as u64 + sub) << (msb - SUB_BITS);
        lower + ((1u64 << (msb - SUB_BITS)) - 1)
    }

    pub fn record(&self, v: u64) {
        let bucket = Self::bucket_index(v);
        let mut cur = self;
        loop {
            let inner = &cur.0;
            inner.buckets[bucket].fetch_add(1, Ordering::Relaxed);
            inner.count.fetch_add(1, Ordering::Relaxed);
            inner.sum.fetch_add(v, Ordering::Relaxed);
            inner.min.fetch_min(v, Ordering::Relaxed);
            inner.max.fetch_max(v, Ordering::Relaxed);
            match &inner.parent {
                Some(p) => cur = p,
                None => break,
            }
        }
    }

    /// Record a `Duration` in whole microseconds.
    pub fn record_duration_us(&self, d: std::time::Duration) {
        self.record(d.as_micros() as u64);
    }

    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Nearest-rank quantile (`q` in `[0, 1]`), answered from the
    /// bucket containing the ranked sample and reported as that
    /// bucket's upper bound. Returns `None` while empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, b) in self.0.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Some(Self::bucket_value(i));
            }
        }
        // Counts are bumped after the bucket cell under concurrency;
        // fall back to the recorded max.
        Some(self.0.max.load(Ordering::Relaxed))
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count();
        HistogramSnapshot {
            count,
            sum: self.sum(),
            min: if count == 0 {
                0
            } else {
                self.0.min.load(Ordering::Relaxed)
            },
            max: self.0.max.load(Ordering::Relaxed),
            p50: self.quantile(0.50).unwrap_or(0),
            p95: self.quantile(0.95).unwrap_or(0),
            p99: self.quantile(0.99).unwrap_or(0),
        }
    }

    /// Sparse copy of the non-empty buckets, the raw material for
    /// windowed (delta) quantiles in [`crate::window`]. Cell indices
    /// invert through [`Histogram::bucket_value`].
    pub fn cells(&self) -> HistogramCells {
        let cells: Vec<(u32, u64)> = self
            .0
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n != 0).then_some((i as u32, n))
            })
            .collect();
        HistogramCells {
            count: self.count(),
            sum: self.sum(),
            cells,
        }
    }
}

/// Sparse bucket-level copy of one histogram: `(bucket index, count)`
/// pairs for every non-empty bucket, plus the cumulative count/sum.
/// Two of these subtract into an exact per-interval delta because
/// bucket counts are monotone.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramCells {
    pub count: u64,
    pub sum: u64,
    pub cells: Vec<(u32, u64)>,
}

impl HistogramCells {
    /// Nearest-rank quantile over the cells, using the cell total (not
    /// `count`, which can transiently run ahead under concurrency).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total: u64 = self.cells.iter().map(|&(_, n)| n).sum();
        if total == 0 {
            return None;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for &(i, n) in &self.cells {
            seen += n;
            if seen >= rank {
                return Some(Histogram::bucket_value(i as usize));
            }
        }
        None
    }
}

/// Point-in-time summary of one histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
}

impl HistogramSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Named-metric store. Obtain the process-wide instance via
/// [`registry()`]; fresh instances (for tests) via [`Registry::new`].
pub struct Registry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl Registry {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Registry {
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
        }
    }

    /// Fetch-or-create the counter called `name`.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with_parent(name, None)
    }

    pub(crate) fn counter_with_parent(&self, name: &str, parent: Option<Counter>) -> Counter {
        let mut map = self.counters.lock();
        match map.get(name) {
            Some(c) => c.clone(),
            None => {
                let c = Counter::new(parent);
                map.insert(name.to_string(), c.clone());
                c
            }
        }
    }

    /// Fetch-or-create the gauge called `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with_parent(name, None)
    }

    pub(crate) fn gauge_with_parent(&self, name: &str, parent: Option<Gauge>) -> Gauge {
        let mut map = self.gauges.lock();
        match map.get(name) {
            Some(g) => g.clone(),
            None => {
                let g = Gauge::new(parent);
                map.insert(name.to_string(), g.clone());
                g
            }
        }
    }

    /// Fetch-or-create the histogram called `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with_parent(name, None)
    }

    pub(crate) fn histogram_with_parent(&self, name: &str, parent: Option<Histogram>) -> Histogram {
        let mut map = self.histograms.lock();
        match map.get(name) {
            Some(h) => h.clone(),
            None => {
                let h = Histogram::new(parent);
                map.insert(name.to_string(), h.clone());
                h
            }
        }
    }

    /// Current value of a counter, without creating it (0 if absent).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.lock().get(name).map_or(0, Counter::get)
    }

    /// Sparse bucket-level copy of every registered histogram — the
    /// input [`crate::window::History::tick_at`] diffs per tick.
    pub fn cells_snapshot(&self) -> BTreeMap<String, HistogramCells> {
        self.histograms
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.cells()))
            .collect()
    }

    /// Consistent point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// Point-in-time copy of the registry, ready for export or diffing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Per-counter increase from `earlier` to `self`. Counters are
    /// monotonic, so saturating is only a guard against snapshot
    /// misuse.
    pub fn counters_since(&self, earlier: &MetricsSnapshot) -> BTreeMap<String, u64> {
        self.counters
            .iter()
            .map(|(k, v)| (k.clone(), v.saturating_sub(earlier.counter(k))))
            .collect()
    }
}

/// The process-wide registry every subsystem publishes into.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = Registry::new();
        let c = r.counter("c");
        c.inc();
        c.add(4);
        assert_eq!(r.counter("c").get(), 5);
        assert_eq!(r.counter_value("c"), 5);
        assert_eq!(r.counter_value("absent"), 0);
        let g = r.gauge("g");
        g.set(0.75);
        assert_eq!(r.gauge("g").get(), 0.75);
    }

    #[test]
    fn bucket_index_is_monotone_and_inverts() {
        let mut prev = 0usize;
        for v in 0u64..4096 {
            let i = Histogram::bucket_index(v);
            assert!(i >= prev, "index must not decrease: v={v}");
            prev = i;
            let rep = Histogram::bucket_value(i);
            assert!(rep >= v, "representative below sample: v={v} rep={rep}");
            assert_eq!(Histogram::bucket_index(rep), i, "v={v}");
        }
        // Extremes stay in range.
        assert!(Histogram::bucket_index(u64::MAX) < BUCKETS);
        assert_eq!(
            Histogram::bucket_index(Histogram::bucket_value(BUCKETS - 1)),
            BUCKETS - 1
        );
    }

    #[test]
    fn small_values_are_exact() {
        let r = Registry::new();
        let h = r.histogram("h");
        for v in [3u64, 3, 3, 7] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), Some(3));
        assert_eq!(h.quantile(1.0), Some(7));
        let snap = h.snapshot();
        assert_eq!(snap.count, 4);
        assert_eq!(snap.sum, 16);
        assert_eq!(snap.min, 3);
        assert_eq!(snap.max, 7);
        assert_eq!(snap.p50, 3);
        assert!((snap.mean() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_snapshot_is_zero() {
        let r = Registry::new();
        let h = r.histogram("empty");
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
    }

    #[test]
    fn quantiles_respect_relative_error_bound() {
        let r = Registry::new();
        let h = r.histogram("lat");
        let samples: Vec<u64> = (1..=1000).map(|i| i * 37).collect();
        for &s in &samples {
            h.record(s);
        }
        for q in [0.5, 0.95, 0.99] {
            let rank = ((q * samples.len() as f64).ceil() as usize).max(1);
            let exact = samples[rank - 1];
            let approx = h.quantile(q).unwrap();
            assert!(approx >= exact, "q={q}: approx {approx} < exact {exact}");
            assert!(
                (approx - exact) as f64 <= exact as f64 / 16.0 + 1.0,
                "q={q}: approx {approx} too far above exact {exact}"
            );
        }
    }

    #[test]
    fn snapshot_diffs_counters() {
        let r = Registry::new();
        r.counter("a").add(2);
        let before = r.snapshot();
        r.counter("a").add(3);
        r.counter("b").inc();
        let after = r.snapshot();
        let delta = after.counters_since(&before);
        assert_eq!(delta.get("a"), Some(&3));
        assert_eq!(delta.get("b"), Some(&1));
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let r = Registry::new();
        let h = r.histogram("h");
        let c = r.counter("c");
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let h = h.clone();
                let c = c.clone();
                std::thread::spawn(move || {
                    for v in 0..1000u64 {
                        h.record(v);
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 8000);
        assert_eq!(c.get(), 8000);
    }
}
