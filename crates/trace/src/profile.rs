//! `KernelProfile`: the joined observability report for one
//! specialized kernel, plus schema validation for its JSON-lines
//! export.
//!
//! A profile stitches together what the subsystems each know about a
//! single kernel specialization: per-phase compile timing (ks-core's
//! `CompileMetrics`), cache behaviour (`CacheStats`), simulated
//! execution counters (ks-sim's `ExecStats`), analysis diagnostics,
//! and the raw span tree. The structs here are plain data — the
//! producing crates copy their fields in so ks-trace stays a leaf
//! dependency.

use crate::json::Json;
use crate::metrics::MetricsSnapshot;
use crate::span::SpanRecord;
use std::collections::BTreeMap;

/// One module compilation's phase breakdown (all times in µs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompileProfile {
    /// Module / kernel-source name.
    pub module: String,
    /// True when this request was served from the binary cache.
    pub cached: bool,
    /// End-to-end compile latency.
    pub total_us: u64,
    /// Ordered `(phase, µs)` pairs: preproc, parse, sema, lower, opt,
    /// analysis, regalloc.
    pub phases: Vec<(String, u64)>,
}

impl CompileProfile {
    pub fn phase_sum_us(&self) -> u64 {
        self.phases.iter().map(|(_, us)| us).sum()
    }
}

/// Binary-cache counters, mirroring `CacheStats` field-for-field.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    pub hits: u64,
    pub misses: u64,
    pub dedup_waits: u64,
    pub evictions: u64,
    /// Compile calls that returned an error (itemized outside
    /// `hits + misses == requests`, which counts successes).
    pub failures: u64,
    /// Calls fast-failed from a quarantined entry without re-compiling.
    pub quarantined: u64,
    /// Retry attempts after a leader failure.
    pub retries: u64,
    /// Circuit-breaker open transitions.
    pub breaker_opens: u64,
}

impl CacheCounters {
    pub fn requests(&self) -> u64 {
        self.hits + self.misses
    }

    pub fn hit_rate(&self) -> f64 {
        if self.requests() == 0 {
            0.0
        } else {
            self.hits as f64 / self.requests() as f64
        }
    }
}

/// Simulator execution counters, mirroring `ExecStats` plus the
/// launch-level occupancy/time results.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExecCounters {
    pub launches: u64,
    pub dyn_insts: u64,
    pub global_bytes: u64,
    pub divergent_branches: u64,
    pub barriers: u64,
    /// Total simulated kernel time, µs.
    pub sim_time_us: u64,
    /// Occupancy of the (last) launch, `0..=1`.
    pub occupancy: f64,
}

/// The full observability report for one specialized kernel.
#[derive(Debug, Clone, Default)]
pub struct KernelProfile {
    pub kernel: String,
    pub device: String,
    pub variant: String,
    /// The specialization `-D` defines, name-sorted.
    pub defines: Vec<(String, String)>,
    pub compiles: Vec<CompileProfile>,
    pub cache: CacheCounters,
    pub exec: ExecCounters,
    /// Analysis diagnostics (empty for a clean kernel).
    pub diagnostics: Vec<String>,
    /// Span tree captured while profiling (empty if tracing was off).
    pub spans: Vec<SpanRecord>,
    /// Registry snapshot at capture time.
    pub metrics: MetricsSnapshot,
}

impl KernelProfile {
    /// JSON-lines rendering: one `profile` header line, then one line
    /// per compile, the `cache` and `exec` counter lines, and one line
    /// per span. [`validate_profile_jsonl`] checks this schema.
    pub fn to_jsonl(&self) -> String {
        let mut lines = Vec::new();
        lines.push(
            Json::obj(vec![
                ("type", Json::str("profile")),
                ("kernel", Json::str(&self.kernel)),
                ("device", Json::str(&self.device)),
                ("variant", Json::str(&self.variant)),
                (
                    "defines",
                    Json::Obj(
                        self.defines
                            .iter()
                            .map(|(k, v)| (k.clone(), Json::str(v)))
                            .collect(),
                    ),
                ),
                ("diagnostics", Json::u64(self.diagnostics.len() as u64)),
            ])
            .render(),
        );
        for c in &self.compiles {
            lines.push(
                Json::obj(vec![
                    ("type", Json::str("compile")),
                    ("module", Json::str(&c.module)),
                    ("cached", Json::Bool(c.cached)),
                    ("total_us", Json::u64(c.total_us)),
                    (
                        "phases",
                        Json::Obj(
                            c.phases
                                .iter()
                                .map(|(k, us)| (k.clone(), Json::u64(*us)))
                                .collect(),
                        ),
                    ),
                ])
                .render(),
            );
        }
        lines.push(
            Json::obj(vec![
                ("type", Json::str("cache")),
                ("hits", Json::u64(self.cache.hits)),
                ("misses", Json::u64(self.cache.misses)),
                ("dedup_waits", Json::u64(self.cache.dedup_waits)),
                ("evictions", Json::u64(self.cache.evictions)),
                ("failures", Json::u64(self.cache.failures)),
                ("quarantined", Json::u64(self.cache.quarantined)),
                ("retries", Json::u64(self.cache.retries)),
                ("breaker_opens", Json::u64(self.cache.breaker_opens)),
                ("hit_rate", Json::num(self.cache.hit_rate())),
            ])
            .render(),
        );
        lines.push(
            Json::obj(vec![
                ("type", Json::str("exec")),
                ("launches", Json::u64(self.exec.launches)),
                ("dyn_insts", Json::u64(self.exec.dyn_insts)),
                ("global_bytes", Json::u64(self.exec.global_bytes)),
                (
                    "divergent_branches",
                    Json::u64(self.exec.divergent_branches),
                ),
                ("barriers", Json::u64(self.exec.barriers)),
                ("sim_time_us", Json::u64(self.exec.sim_time_us)),
                ("occupancy", Json::num(self.exec.occupancy)),
            ])
            .render(),
        );
        for d in &self.diagnostics {
            lines.push(
                Json::obj(vec![
                    ("type", Json::str("diagnostic")),
                    ("message", Json::str(d)),
                ])
                .render(),
            );
        }
        for s in &self.spans {
            lines.push(span_to_json(s).render());
        }
        lines.join("\n") + "\n"
    }
}

pub(crate) fn span_to_json(s: &SpanRecord) -> Json {
    Json::obj(vec![
        ("type", Json::str("span")),
        ("id", Json::u64(s.id)),
        ("parent", s.parent.map_or(Json::Null, Json::u64)),
        ("name", Json::str(&s.name)),
        ("depth", Json::u64(s.depth as u64)),
        ("start_ns", Json::u64(s.start_ns)),
        ("dur_ns", Json::u64(s.dur_ns)),
        ("thread", Json::u64(s.thread)),
        (
            "fields",
            Json::Obj(
                s.fields
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::str(v)))
                    .collect(),
            ),
        ),
    ])
}

/// Slack allowed when checking span containment and phase coverage.
const NESTING_SLACK_NS: u64 = 1_000;

/// Validate a [`KernelProfile::to_jsonl`] document:
///
/// * every line parses as a JSON object with a known `type`;
/// * exactly one `profile` header with `kernel` and `device`;
/// * `cache` / `exec` lines present with all counter keys as
///   non-negative integers;
/// * every `span` line has non-negative integral timing, its `parent`
///   refers to an emitted span, `depth == parent.depth + 1`, and the
///   child's interval lies within its parent's (same-thread nesting);
/// * for each `compile` span with phase children, the children's
///   durations sum to no more than the compile span and cover it to
///   within `max(total/4, 1ms)` — the per-phase breakdown must
///   account for the total.
pub fn validate_profile_jsonl(text: &str) -> Result<(), String> {
    let mut profile_headers = 0usize;
    let mut cache_lines = 0usize;
    let mut exec_lines = 0usize;
    let mut spans: Vec<(u64, Option<u64>, String, u64, u64, u64)> = Vec::new();

    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        if line.trim().is_empty() {
            continue;
        }
        let doc = Json::parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
        let ty = doc
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {lineno}: missing \"type\""))?;
        match ty {
            "profile" => {
                profile_headers += 1;
                for key in ["kernel", "device", "variant"] {
                    if doc.get(key).and_then(Json::as_str).is_none() {
                        return Err(format!("line {lineno}: profile missing \"{key}\""));
                    }
                }
            }
            "compile" => {
                let total = req_u64(&doc, "total_us", lineno)?;
                let phases = doc
                    .get("phases")
                    .ok_or_else(|| format!("line {lineno}: compile missing \"phases\""))?;
                let Json::Obj(fields) = phases else {
                    return Err(format!("line {lineno}: \"phases\" is not an object"));
                };
                let mut sum = 0u64;
                for (name, v) in fields {
                    sum += v
                        .as_u64()
                        .ok_or_else(|| format!("line {lineno}: phase \"{name}\" not a u64"))?;
                }
                let cached = matches!(doc.get("cached"), Some(Json::Bool(true)));
                if !cached && sum > total {
                    return Err(format!(
                        "line {lineno}: phase sum {sum}µs exceeds total {total}µs"
                    ));
                }
            }
            "cache" => {
                cache_lines += 1;
                let hits = req_u64(&doc, "hits", lineno)?;
                let misses = req_u64(&doc, "misses", lineno)?;
                req_u64(&doc, "dedup_waits", lineno)?;
                req_u64(&doc, "evictions", lineno)?;
                req_u64(&doc, "failures", lineno)?;
                req_u64(&doc, "quarantined", lineno)?;
                req_u64(&doc, "retries", lineno)?;
                req_u64(&doc, "breaker_opens", lineno)?;
                let rate = doc
                    .get("hit_rate")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("line {lineno}: cache missing \"hit_rate\""))?;
                if !(0.0..=1.0).contains(&rate) {
                    return Err(format!("line {lineno}: hit_rate {rate} out of [0,1]"));
                }
                if hits + misses > 0 {
                    let expect = hits as f64 / (hits + misses) as f64;
                    if (rate - expect).abs() > 1e-9 {
                        return Err(format!(
                            "line {lineno}: hit_rate {rate} != hits/(hits+misses) {expect}"
                        ));
                    }
                }
            }
            "exec" => {
                exec_lines += 1;
                for key in [
                    "launches",
                    "dyn_insts",
                    "global_bytes",
                    "divergent_branches",
                    "barriers",
                    "sim_time_us",
                ] {
                    req_u64(&doc, key, lineno)?;
                }
                let occ = doc
                    .get("occupancy")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("line {lineno}: exec missing \"occupancy\""))?;
                if !(0.0..=1.0).contains(&occ) {
                    return Err(format!("line {lineno}: occupancy {occ} out of [0,1]"));
                }
            }
            "diagnostic" => {
                if doc.get("message").and_then(Json::as_str).is_none() {
                    return Err(format!("line {lineno}: diagnostic missing \"message\""));
                }
            }
            "span" => {
                let id = req_u64(&doc, "id", lineno)?;
                let depth = req_u64(&doc, "depth", lineno)?;
                let start = req_u64(&doc, "start_ns", lineno)?;
                let dur = req_u64(&doc, "dur_ns", lineno)?;
                let name = doc
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("line {lineno}: span missing \"name\""))?;
                let parent =
                    match doc.get("parent") {
                        Some(Json::Null) | None => None,
                        Some(p) => Some(p.as_u64().ok_or_else(|| {
                            format!("line {lineno}: span parent not a u64 or null")
                        })?),
                    };
                spans.push((id, parent, name.to_string(), depth, start, dur));
            }
            other => return Err(format!("line {lineno}: unknown type \"{other}\"")),
        }
    }

    if profile_headers != 1 {
        return Err(format!(
            "expected 1 profile header, found {profile_headers}"
        ));
    }
    if cache_lines != 1 || exec_lines != 1 {
        return Err(format!(
            "expected 1 cache and 1 exec line, found {cache_lines} and {exec_lines}"
        ));
    }

    let by_id: BTreeMap<u64, usize> = spans.iter().enumerate().map(|(i, s)| (s.0, i)).collect();
    if by_id.len() != spans.len() {
        return Err("duplicate span ids".to_string());
    }
    for (id, parent, name, depth, start, dur) in &spans {
        let Some(pid) = parent else {
            if *depth != 0 {
                return Err(format!("root span {id} (\"{name}\") has depth {depth}"));
            }
            continue;
        };
        let pi = by_id
            .get(pid)
            .ok_or_else(|| format!("span {id} (\"{name}\") parent {pid} not emitted"))?;
        let (_, _, pname, pdepth, pstart, pdur) = &spans[*pi];
        if *depth != pdepth + 1 {
            return Err(format!(
                "span {id} (\"{name}\") depth {depth} != parent \"{pname}\" depth {pdepth} + 1"
            ));
        }
        if *start + NESTING_SLACK_NS < *pstart || start + dur > pstart + pdur + NESTING_SLACK_NS {
            return Err(format!(
                "span {id} (\"{name}\") [{start}, {}] escapes parent \"{pname}\" [{pstart}, {}]",
                start + dur,
                pstart + pdur
            ));
        }
    }

    // Per-phase coverage: a compile span's direct children must
    // account for its duration.
    for (id, _, name, _, _, dur) in &spans {
        if name != "compile" {
            continue;
        }
        let child_sum: u64 = spans
            .iter()
            .filter(|(_, p, ..)| *p == Some(*id))
            .map(|(.., d)| *d)
            .sum();
        if child_sum == 0 {
            continue; // cache hit: no phase children
        }
        if child_sum > dur + NESTING_SLACK_NS {
            return Err(format!(
                "compile span {id}: children sum {child_sum}ns exceeds span {dur}ns"
            ));
        }
        let tolerance = (dur / 4).max(1_000_000);
        if dur.saturating_sub(child_sum) > tolerance {
            return Err(format!(
                "compile span {id}: phases cover {child_sum}ns of {dur}ns (unaccounted > {tolerance}ns)"
            ));
        }
    }

    Ok(())
}

fn req_u64(doc: &Json, key: &str, lineno: usize) -> Result<u64, String> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("line {lineno}: missing non-negative integer \"{key}\""))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_profile() -> KernelProfile {
        KernelProfile {
            kernel: "template_match".to_string(),
            device: "c2070".to_string(),
            variant: "specialized".to_string(),
            defines: vec![("TW".to_string(), "64".to_string())],
            compiles: vec![CompileProfile {
                module: "region0".to_string(),
                cached: false,
                total_us: 100,
                phases: vec![("parse".to_string(), 40), ("sema".to_string(), 50)],
            }],
            cache: CacheCounters {
                hits: 3,
                misses: 1,
                ..CacheCounters::default()
            },
            exec: ExecCounters {
                launches: 1,
                dyn_insts: 1000,
                global_bytes: 4096,
                divergent_branches: 2,
                barriers: 8,
                sim_time_us: 1234,
                occupancy: 0.75,
            },
            diagnostics: vec![],
            spans: vec![
                SpanRecord {
                    id: 1,
                    parent: None,
                    name: "compile".to_string(),
                    depth: 0,
                    start_ns: 0,
                    dur_ns: 100_000,
                    thread: 0,
                    fields: vec![],
                },
                SpanRecord {
                    id: 2,
                    parent: Some(1),
                    name: "parse".to_string(),
                    depth: 1,
                    start_ns: 10,
                    dur_ns: 99_000,
                    thread: 0,
                    fields: vec![("module".to_string(), "region0".to_string())],
                },
            ],
            metrics: MetricsSnapshot::default(),
        }
    }

    #[test]
    fn valid_profile_roundtrips() {
        let jsonl = sample_profile().to_jsonl();
        validate_profile_jsonl(&jsonl).unwrap();
    }

    #[test]
    fn rejects_orphan_span() {
        let mut p = sample_profile();
        p.spans[1].parent = Some(99);
        let err = validate_profile_jsonl(&p.to_jsonl()).unwrap_err();
        assert!(err.contains("parent 99 not emitted"), "{err}");
    }

    #[test]
    fn rejects_bad_depth() {
        let mut p = sample_profile();
        p.spans[1].depth = 3;
        let err = validate_profile_jsonl(&p.to_jsonl()).unwrap_err();
        assert!(err.contains("depth"), "{err}");
    }

    #[test]
    fn rejects_child_escaping_parent() {
        let mut p = sample_profile();
        p.spans[1].dur_ns = 10_000_000;
        let err = validate_profile_jsonl(&p.to_jsonl()).unwrap_err();
        assert!(err.contains("escapes parent"), "{err}");
    }

    #[test]
    fn rejects_uncovered_compile_span() {
        let mut p = sample_profile();
        // Child covers 1% of a 10s compile span: unaccounted time blows
        // through max(total/4, 1ms).
        p.spans[0].dur_ns = 10_000_000_000;
        p.spans[1].dur_ns = 100_000_000;
        let err = validate_profile_jsonl(&p.to_jsonl()).unwrap_err();
        assert!(err.contains("phases cover"), "{err}");
    }

    #[test]
    fn rejects_missing_counter_keys() {
        let p = sample_profile();
        let jsonl = p
            .to_jsonl()
            .lines()
            .map(|l| {
                if l.contains("\"type\":\"cache\"") {
                    l.replace("\"dedup_waits\":0,", "")
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        let err = validate_profile_jsonl(&jsonl).unwrap_err();
        assert!(err.contains("dedup_waits"), "{err}");
    }

    #[test]
    fn rejects_phase_sum_over_total() {
        let mut p = sample_profile();
        p.compiles[0].phases.push(("opt".to_string(), 100));
        let err = validate_profile_jsonl(&p.to_jsonl()).unwrap_err();
        assert!(err.contains("exceeds total"), "{err}");
    }

    #[test]
    fn hit_rate_helpers() {
        let c = CacheCounters {
            hits: 3,
            misses: 1,
            ..CacheCounters::default()
        };
        assert_eq!(c.requests(), 4);
        assert!((c.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheCounters::default().hit_rate(), 0.0);
    }
}
