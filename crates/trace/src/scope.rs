//! Labeled metric scopes with exact roll-up.
//!
//! [`Registry::scoped`] returns a [`Scope`] — a labeled view of the
//! registry. A metric obtained through a scope is registered under
//! `name{k=v,...}` (label keys sorted) and its handle chains to the
//! parent scope's handle and ultimately to the plain, unlabeled global
//! metric. Every publish walks that chain, so **the sum of the child
//! scopes equals the global aggregate exactly, by construction**, under
//! any interleaving — the same discipline the `ks_core.*` counters keep
//! against their subsystem stats.
//!
//! ```
//! use ks_trace::Registry;
//!
//! let r = Registry::new();
//! let p0 = r.scoped(&[("pipeline", "p0")]);
//! let p1 = r.scoped(&[("pipeline", "p1")]);
//! p0.counter("gpu_pf.iterations").add(3);
//! p1.counter("gpu_pf.iterations").add(4);
//! assert_eq!(r.counter_value("gpu_pf.iterations"), 7);
//! assert_eq!(r.counter_value("gpu_pf.iterations{pipeline=p0}"), 3);
//! ```
//!
//! Scopes nest: `scope.scoped(&[("module", "2")])` adds a label level;
//! publishes then land in the module cell, the pipeline cell, and the
//! global, keeping parity at every level of the tree.

use crate::metrics::{Counter, Gauge, Histogram, MetricsSnapshot, Registry};

/// Replace characters that would collide with the `name{k=v,...}`
/// encoding (or Prometheus label syntax) so hostile label values cannot
/// forge metrics.
fn sanitize(part: &str) -> String {
    part.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | ':' | '-' | '/') {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Render a scoped metric name: `base{k=v,k2=v2}` with keys sorted.
/// The empty label set renders as the bare base name.
pub fn scoped_name(base: &str, labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return base.to_string();
    }
    let rendered: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
    format!("{base}{{{}}}", rendered.join(","))
}

/// Split a (possibly scoped) metric name into its base and label pairs.
/// Unlabeled names return an empty label list.
pub fn parse_scoped_name(full: &str) -> (&str, Vec<(&str, &str)>) {
    let Some(open) = full.find('{') else {
        return (full, Vec::new());
    };
    let Some(inner) = full[open..]
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
    else {
        return (full, Vec::new());
    };
    let labels = inner
        .split(',')
        .filter_map(|pair| pair.split_once('='))
        .collect();
    (&full[..open], labels)
}

/// A labeled view of a [`Registry`]. Cheap to create (one small Vec per
/// level); metric lookups go through the registry's fetch-or-create
/// maps, so hold the returned handles on hot paths just like global
/// ones.
#[derive(Clone)]
pub struct Scope<'r> {
    registry: &'r Registry,
    /// Cumulative label sets, outermost first. Each level's metrics
    /// parent into the previous level's (level 0 parents into the
    /// unlabeled global).
    levels: Vec<Vec<(String, String)>>,
}

impl Registry {
    /// A labeled child scope of this registry. Metrics published
    /// through it roll up exactly into the unlabeled global metrics.
    pub fn scoped(&self, labels: &[(&str, &str)]) -> Scope<'_> {
        Scope {
            registry: self,
            levels: Vec::new(),
        }
        .scoped(labels)
    }
}

impl<'r> Scope<'r> {
    /// A nested scope carrying this scope's labels plus `labels`
    /// (same-key labels override, keys stay sorted).
    pub fn scoped(&self, labels: &[(&str, &str)]) -> Scope<'r> {
        let mut merged = self.labels().to_vec();
        for (k, v) in labels {
            let (k, v) = (sanitize(k), sanitize(v));
            match merged.binary_search_by(|(mk, _)| mk.as_str().cmp(&k)) {
                Ok(i) => merged[i].1 = v,
                Err(i) => merged.insert(i, (k, v)),
            }
        }
        let mut levels = self.levels.clone();
        levels.push(merged);
        Scope {
            registry: self.registry,
            levels,
        }
    }

    /// The full (cumulative) label set of this scope, sorted by key.
    pub fn labels(&self) -> &[(String, String)] {
        self.levels.last().map_or(&[], Vec::as_slice)
    }

    /// The registry this scope publishes into.
    pub fn registry(&self) -> &'r Registry {
        self.registry
    }

    /// Fetch-or-create the scoped counter `name{...}`, chained through
    /// every enclosing scope down to the global `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut handle = self.registry.counter(name);
        for level in &self.levels {
            handle = self
                .registry
                .counter_with_parent(&scoped_name(name, level), Some(handle));
        }
        handle
    }

    /// Fetch-or-create the scoped gauge `name{...}` (sets also write
    /// through to the enclosing scopes, last-write-wins).
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut handle = self.registry.gauge(name);
        for level in &self.levels {
            handle = self
                .registry
                .gauge_with_parent(&scoped_name(name, level), Some(handle));
        }
        handle
    }

    /// Fetch-or-create the scoped histogram `name{...}`, chained so a
    /// recorded sample lands in every enclosing aggregate.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut handle = self.registry.histogram(name);
        for level in &self.levels {
            handle = self
                .registry
                .histogram_with_parent(&scoped_name(name, level), Some(handle));
        }
        handle
    }
}

/// All labeled variants of `base` in a snapshot's counters, as
/// `(labels, value)` rows.
pub fn scoped_counters<'s>(
    snapshot: &'s MetricsSnapshot,
    base: &str,
) -> Vec<(Vec<(&'s str, &'s str)>, u64)> {
    snapshot
        .counters
        .iter()
        .filter_map(|(name, v)| {
            let (b, labels) = parse_scoped_name(name);
            (b == base && !labels.is_empty()).then_some((labels, *v))
        })
        .collect()
}

/// Sum of `base` over the single-label scopes keyed by `label_key` —
/// the roll-up parity probe's left-hand side. Nested (multi-label)
/// cells are excluded so nothing is double-counted.
pub fn scoped_counter_sum(snapshot: &MetricsSnapshot, base: &str, label_key: &str) -> u64 {
    scoped_counters(snapshot, base)
        .into_iter()
        .filter(|(labels, _)| labels.len() == 1 && labels[0].0 == label_key)
        .map(|(_, v)| v)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_counters_roll_up_exactly() {
        let r = Registry::new();
        let a = r.scoped(&[("pipeline", "a")]);
        let b = r.scoped(&[("pipeline", "b")]);
        a.counter("it").add(5);
        b.counter("it").add(7);
        assert_eq!(r.counter_value("it"), 12);
        assert_eq!(r.counter_value("it{pipeline=a}"), 5);
        assert_eq!(r.counter_value("it{pipeline=b}"), 7);
        let snap = r.snapshot();
        assert_eq!(scoped_counter_sum(&snap, "it", "pipeline"), 12);
        assert_eq!(snap.counter("it"), 12);
    }

    #[test]
    fn nested_scopes_chain_through_every_level() {
        let r = Registry::new();
        let pipe = r.scoped(&[("pipeline", "p0")]);
        let m0 = pipe.scoped(&[("module", "0")]);
        let m1 = pipe.scoped(&[("module", "1")]);
        m0.counter("x").add(2);
        m1.counter("x").add(3);
        assert_eq!(r.counter_value("x{module=0,pipeline=p0}"), 2);
        assert_eq!(r.counter_value("x{module=1,pipeline=p0}"), 3);
        assert_eq!(r.counter_value("x{pipeline=p0}"), 5);
        assert_eq!(r.counter_value("x"), 5);
        // The single-label sum sees only the pipeline level.
        assert_eq!(scoped_counter_sum(&r.snapshot(), "x", "pipeline"), 5);
    }

    #[test]
    fn scoped_histograms_aggregate_samples() {
        let r = Registry::new();
        let a = r.scoped(&[("lane", "a")]);
        let b = r.scoped(&[("lane", "b")]);
        for v in [10u64, 20, 30] {
            a.histogram("lat").record(v);
        }
        b.histogram("lat").record(1000);
        let global = r.histogram("lat").snapshot();
        assert_eq!(global.count, 4);
        assert_eq!(global.sum, 1060);
        let a_snap = r.histogram("lat{lane=a}").snapshot();
        assert_eq!(a_snap.count, 3);
        assert_eq!(a_snap.max, 30);
    }

    #[test]
    fn gauge_writes_through_scopes() {
        let r = Registry::new();
        let s = r.scoped(&[("dev", "c2070")]);
        s.gauge("occ").set(0.5);
        assert_eq!(r.gauge("occ").get(), 0.5);
        assert_eq!(r.gauge("occ{dev=c2070}").get(), 0.5);
    }

    #[test]
    fn labels_sort_dedup_and_sanitize() {
        let r = Registry::new();
        let s = r.scoped(&[("b", "2"), ("a", "1")]);
        assert_eq!(scoped_name("m", s.labels()), "m{a=1,b=2}");
        let s2 = s.scoped(&[("a", "overridden")]);
        assert_eq!(scoped_name("m", s2.labels()), "m{a=overridden,b=2}");
        let hostile = r.scoped(&[("k=y", "v{1,2}")]);
        assert_eq!(scoped_name("m", hostile.labels()), "m{k_y=v_1_2_}");
    }

    #[test]
    fn scoped_name_parses_back() {
        let full = scoped_name(
            "gpu_pf.iterations",
            &[
                ("module".to_string(), "3".to_string()),
                ("pipeline".to_string(), "p0".to_string()),
            ],
        );
        let (base, labels) = parse_scoped_name(&full);
        assert_eq!(base, "gpu_pf.iterations");
        assert_eq!(labels, vec![("module", "3"), ("pipeline", "p0")]);
        assert_eq!(parse_scoped_name("plain"), ("plain", vec![]));
    }
}
