//! Span-based tracing: monotonic, nested timing records.
//!
//! Spans form a per-thread stack: a [`SpanGuard`] created while another
//! guard is live on the same thread records that guard's span as its
//! parent. Records land in a process-wide collector on drop, so the
//! full tree (across compile phases, cache lookups, launches, and
//! pipeline iterations) can be drained, validated, and exported at any
//! point. Tracing is **disabled by default**: a disabled guard never
//! reads the clock, takes no lock, and allocates nothing.

use parking_lot::Mutex;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is span tracing currently enabled?
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Globally enable or disable span tracing. Metrics (counters, gauges,
/// histograms) are always on; only spans are gated.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// One finished span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Unique (process-lifetime) span id.
    pub id: u64,
    /// Id of the enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    pub name: String,
    /// Nesting depth (root = 0); always `parent.depth + 1` for children.
    pub depth: u32,
    /// Start, in nanoseconds since the collector epoch (monotonic clock).
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Small dense id of the recording thread.
    pub thread: u64,
    /// Free-form key/value annotations.
    pub fields: Vec<(String, String)>,
}

impl SpanRecord {
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }
}

struct Collector {
    epoch: Instant,
    records: Mutex<Vec<SpanRecord>>,
}

static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);

fn collector() -> &'static Collector {
    static COLLECTOR: OnceLock<Collector> = OnceLock::new();
    COLLECTOR.get_or_init(|| Collector {
        epoch: Instant::now(),
        records: Mutex::new(Vec::new()),
    })
}

thread_local! {
    /// (span id, depth) stack of live spans on this thread.
    static STACK: RefCell<Vec<(u64, u32)>> = const { RefCell::new(Vec::new()) };
    static THREAD_ID: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
}

/// RAII guard for a live span; records the span when dropped. Inert
/// (and allocation-free) when tracing is disabled at creation time.
pub struct SpanGuard {
    live: Option<LiveSpan>,
}

struct LiveSpan {
    id: u64,
    parent: Option<u64>,
    depth: u32,
    name: String,
    start: Instant,
    start_ns: u64,
    fields: Vec<(String, String)>,
}

/// Start a span. See [`span_fields`] to attach annotations.
pub fn span(name: &str) -> SpanGuard {
    span_fields(name, Vec::new)
}

/// Start a span with lazily built key/value fields; `fields` is only
/// invoked when tracing is enabled, so call sites pay nothing for the
/// annotation strings while tracing is off.
pub fn span_fields(name: &str, fields: impl FnOnce() -> Vec<(String, String)>) -> SpanGuard {
    if !enabled() {
        return SpanGuard { live: None };
    }
    let c = collector();
    let start = Instant::now();
    let start_ns = start.saturating_duration_since(c.epoch).as_nanos() as u64;
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let (parent, depth) = STACK.with(|s| {
        let mut s = s.borrow_mut();
        let (parent, depth) = match s.last() {
            Some(&(pid, pdepth)) => (Some(pid), pdepth + 1),
            None => (None, 0),
        };
        s.push((id, depth));
        (parent, depth)
    });
    SpanGuard {
        live: Some(LiveSpan {
            id,
            parent,
            depth,
            name: name.to_string(),
            start,
            start_ns,
            fields: fields(),
        }),
    }
}

impl SpanGuard {
    /// Whether this guard is actually recording.
    pub fn is_recording(&self) -> bool {
        self.live.is_some()
    }

    /// Attach a field after creation (no-op when not recording).
    pub fn field(&mut self, key: &str, value: impl std::fmt::Display) {
        if let Some(live) = &mut self.live {
            live.fields.push((key.to_string(), value.to_string()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        let dur_ns = live.start.elapsed().as_nanos() as u64;
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Guards drop LIFO under normal use; tolerate out-of-order
            // drops by removing this span's entry wherever it sits.
            if let Some(pos) = s.iter().rposition(|&(id, _)| id == live.id) {
                s.remove(pos);
            }
        });
        let record = SpanRecord {
            id: live.id,
            parent: live.parent,
            name: live.name,
            depth: live.depth,
            start_ns: live.start_ns,
            dur_ns,
            thread: THREAD_ID.with(|t| *t),
            fields: live.fields,
        };
        collector().records.lock().push(record);
    }
}

/// Record an already-timed interval as a completed span, parented to
/// the innermost live span on this thread. Used where RAII guards
/// cannot wrap the timed region — e.g. per-pass timing inside the
/// optimizer's observer callback. No-op while tracing is disabled.
pub fn complete_span(name: &str, started: Instant) {
    if !enabled() {
        return;
    }
    let c = collector();
    let dur_ns = started.elapsed().as_nanos() as u64;
    let start_ns = started.saturating_duration_since(c.epoch).as_nanos() as u64;
    let (parent, depth) = STACK.with(|s| match s.borrow().last() {
        Some(&(pid, pdepth)) => (Some(pid), pdepth + 1),
        None => (None, 0),
    });
    let record = SpanRecord {
        id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
        parent,
        name: name.to_string(),
        depth,
        start_ns,
        dur_ns,
        thread: THREAD_ID.with(|t| *t),
        fields: Vec::new(),
    };
    c.records.lock().push(record);
}

/// Take every finished span recorded so far, clearing the collector.
pub fn drain_spans() -> Vec<SpanRecord> {
    std::mem::take(&mut *collector().records.lock())
}

/// Copy of the finished spans recorded so far (collector unchanged).
pub fn snapshot_spans() -> Vec<SpanRecord> {
    collector().records.lock().clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The collector and the enabled flag are process-global; span tests
    /// serialize on this lock so they never steal each other's records.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = TEST_LOCK.lock();
        set_enabled(false);
        let before = snapshot_spans().len();
        {
            let mut s = span("nope");
            assert!(!s.is_recording());
            s.field("k", "v");
        }
        complete_span("also-nope", Instant::now());
        assert_eq!(snapshot_spans().len(), before);
    }

    #[test]
    fn nesting_links_parent_and_depth() {
        let _g = TEST_LOCK.lock();
        set_enabled(true);
        drain_spans();
        {
            let _outer = span_fields("outer", || vec![("kernel".into(), "k".into())]);
            {
                let _inner = span("inner");
                complete_span("leaf", Instant::now());
            }
        }
        set_enabled(false);
        let spans = drain_spans();
        assert_eq!(spans.len(), 3);
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        let leaf = spans.iter().find(|s| s.name == "leaf").unwrap();
        assert_eq!(outer.depth, 0);
        assert_eq!(outer.parent, None);
        assert_eq!(outer.fields, vec![("kernel".to_string(), "k".to_string())]);
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(inner.depth, 1);
        assert_eq!(leaf.parent, Some(inner.id));
        assert_eq!(leaf.depth, 2);
        // Children close before (or when) their parents do, on the same
        // monotonic clock: strict containment.
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.end_ns() <= outer.end_ns());
        assert!(leaf.end_ns() <= inner.end_ns());
    }

    #[test]
    fn drain_clears_the_collector() {
        let _g = TEST_LOCK.lock();
        set_enabled(true);
        drain_spans();
        drop(span("one"));
        set_enabled(false);
        assert_eq!(drain_spans().len(), 1);
        assert!(drain_spans().is_empty());
    }

    #[test]
    fn threads_record_independent_stacks() {
        let _g = TEST_LOCK.lock();
        set_enabled(true);
        drain_spans();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let _s = span_fields("worker", || vec![("i".into(), i.to_string())]);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        set_enabled(false);
        let spans = drain_spans();
        assert_eq!(spans.len(), 4);
        // All roots: no cross-thread parenting.
        assert!(spans.iter().all(|s| s.parent.is_none() && s.depth == 0));
        let threads: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.thread).collect();
        assert_eq!(threads.len(), 4);
    }
}
