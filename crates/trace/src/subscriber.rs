//! Line-event subscriber interface.
//!
//! Subsystems that emit human-readable log lines (gpu-pf's refresh
//! logger, most prominently) publish through [`Subscriber`] instead of
//! holding a raw writer. This keeps the formatting contract (gpu-pf's
//! Appendix-G output is byte-compatible) while letting tests and tools
//! substitute counting or capturing sinks.

use parking_lot::Mutex;
use std::io::Write;

/// A sink for complete log lines (no trailing newline in `text`).
pub trait Subscriber: Send + Sync {
    fn line(&self, text: &str);
}

/// A [`Subscriber`] that appends each line (plus `\n`) to a writer and
/// flushes, preserving the behaviour of a plain `Box<dyn Write>` sink.
pub struct WriterSink {
    writer: Mutex<Box<dyn Write + Send>>,
}

impl WriterSink {
    pub fn new(writer: Box<dyn Write + Send>) -> Self {
        WriterSink {
            writer: Mutex::new(writer),
        }
    }

    /// Sink to the process's stderr.
    pub fn stderr() -> Self {
        WriterSink::new(Box::new(std::io::stderr()))
    }
}

impl Subscriber for WriterSink {
    fn line(&self, text: &str) {
        let mut w = self.writer.lock();
        let _ = writeln!(w, "{text}");
        let _ = w.flush();
    }
}

/// Bounded, never-blocking streaming JSONL sink.
///
/// Producers [`offer`](StreamSink::offer) pre-rendered JSONL lines (or
/// publish through [`Subscriber::line`], which wraps the text as a
/// `{"type":"log",...}` object). When the ring is full the **newest
/// offer is dropped** — the hot path never waits on a slow consumer —
/// and the loss is self-accounted: a local drop counter plus the
/// `ks_trace.sink.dropped` registry counter, so overflow is visible in
/// the same exposition the sink feeds.
pub struct StreamSink {
    queue: Mutex<std::collections::VecDeque<String>>,
    cap: usize,
    dropped: std::sync::atomic::AtomicU64,
    dropped_counter: crate::Counter,
}

impl StreamSink {
    /// A sink retaining at most `cap` pending lines (`cap >= 1`),
    /// accounting drops into `registry`.
    pub fn with_registry(cap: usize, registry: &crate::Registry) -> Self {
        StreamSink {
            queue: Mutex::new(std::collections::VecDeque::new()),
            cap: cap.max(1),
            dropped: std::sync::atomic::AtomicU64::new(0),
            dropped_counter: registry.counter(crate::names::SINK_DROPPED),
        }
    }

    /// A sink accounting drops into the process-wide registry.
    pub fn new(cap: usize) -> Self {
        Self::with_registry(cap, crate::registry())
    }

    /// Enqueue one line; returns `false` (and counts the drop) when the
    /// ring is full. Never blocks beyond the queue mutex.
    pub fn offer(&self, line: impl Into<String>) -> bool {
        let line = line.into();
        {
            let mut q = self.queue.lock();
            if q.len() < self.cap {
                q.push_back(line);
                return true;
            }
        }
        self.dropped
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.dropped_counter.inc();
        false
    }

    /// Lines dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Lines currently queued.
    pub fn pending(&self) -> usize {
        self.queue.lock().len()
    }

    /// Take every pending line, oldest first.
    pub fn drain(&self) -> Vec<String> {
        self.queue.lock().drain(..).collect()
    }

    /// Flush pending lines (one per line, `\n`-terminated) to `w`;
    /// returns how many were written.
    pub fn drain_to(&self, w: &mut dyn Write) -> std::io::Result<usize> {
        let lines = self.drain();
        for line in &lines {
            writeln!(w, "{line}")?;
        }
        w.flush()?;
        Ok(lines.len())
    }
}

impl Subscriber for StreamSink {
    fn line(&self, text: &str) {
        self.offer(
            crate::Json::obj(vec![
                ("type", crate::Json::str("log")),
                ("line", crate::Json::str(text)),
            ])
            .render(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn writer_sink_appends_newline_per_line() {
        let buf = SharedBuf::default();
        let sink = WriterSink::new(Box::new(buf.clone()));
        sink.line("[gpu-pf] hello");
        sink.line("[gpu-pf] world");
        let text = String::from_utf8(buf.0.lock().clone()).unwrap();
        assert_eq!(text, "[gpu-pf] hello\n[gpu-pf] world\n");
    }

    #[test]
    fn stream_sink_bounds_drops_and_accounts_them() {
        let r = crate::Registry::new();
        let sink = StreamSink::with_registry(4, &r);
        for i in 0..10 {
            sink.offer(format!("{{\"i\":{i}}}"));
        }
        assert_eq!(sink.pending(), 4);
        assert_eq!(sink.dropped(), 6);
        assert_eq!(r.counter_value(crate::names::SINK_DROPPED), 6);
        // Oldest lines survive; each drained line is valid JSON.
        let lines = sink.drain();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "{\"i\":0}");
        for l in &lines {
            crate::Json::parse(l).unwrap();
        }
        // Draining frees capacity again.
        assert!(sink.offer("{}"));
        let mut buf = Vec::new();
        assert_eq!(sink.drain_to(&mut buf).unwrap(), 1);
        assert_eq!(String::from_utf8(buf).unwrap(), "{}\n");
    }

    #[test]
    fn stream_sink_subscriber_wraps_lines_as_json() {
        let r = crate::Registry::new();
        let sink = StreamSink::with_registry(8, &r);
        Subscriber::line(&sink, "[gpu-pf] refresh");
        let lines = sink.drain();
        let doc = crate::Json::parse(&lines[0]).unwrap();
        assert_eq!(doc.get("type").and_then(crate::Json::as_str), Some("log"));
        assert_eq!(
            doc.get("line").and_then(crate::Json::as_str),
            Some("[gpu-pf] refresh")
        );
    }

    #[test]
    fn stream_sink_never_blocks_under_contention() {
        let r = crate::Registry::new();
        let sink = Arc::new(StreamSink::with_registry(16, &r));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let sink = sink.clone();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        sink.offer(format!("{{\"t\":{t},\"i\":{i}}}"));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Conservation: everything offered is either pending or counted
        // as dropped.
        assert_eq!(sink.pending() as u64 + sink.dropped(), 800);
        assert_eq!(sink.pending(), 16);
    }

    #[test]
    fn writer_sink_is_shareable_across_threads() {
        let buf = SharedBuf::default();
        let sink = Arc::new(WriterSink::new(Box::new(buf.clone())));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let sink = sink.clone();
                std::thread::spawn(move || sink.line(&format!("line {i}")))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let text = String::from_utf8(buf.0.lock().clone()).unwrap();
        assert_eq!(text.lines().count(), 4);
    }
}
