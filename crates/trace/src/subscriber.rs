//! Line-event subscriber interface.
//!
//! Subsystems that emit human-readable log lines (gpu-pf's refresh
//! logger, most prominently) publish through [`Subscriber`] instead of
//! holding a raw writer. This keeps the formatting contract (gpu-pf's
//! Appendix-G output is byte-compatible) while letting tests and tools
//! substitute counting or capturing sinks.

use parking_lot::Mutex;
use std::io::Write;

/// A sink for complete log lines (no trailing newline in `text`).
pub trait Subscriber: Send + Sync {
    fn line(&self, text: &str);
}

/// A [`Subscriber`] that appends each line (plus `\n`) to a writer and
/// flushes, preserving the behaviour of a plain `Box<dyn Write>` sink.
pub struct WriterSink {
    writer: Mutex<Box<dyn Write + Send>>,
}

impl WriterSink {
    pub fn new(writer: Box<dyn Write + Send>) -> Self {
        WriterSink {
            writer: Mutex::new(writer),
        }
    }

    /// Sink to the process's stderr.
    pub fn stderr() -> Self {
        WriterSink::new(Box::new(std::io::stderr()))
    }
}

impl Subscriber for WriterSink {
    fn line(&self, text: &str) {
        let mut w = self.writer.lock();
        let _ = writeln!(w, "{text}");
        let _ = w.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn writer_sink_appends_newline_per_line() {
        let buf = SharedBuf::default();
        let sink = WriterSink::new(Box::new(buf.clone()));
        sink.line("[gpu-pf] hello");
        sink.line("[gpu-pf] world");
        let text = String::from_utf8(buf.0.lock().clone()).unwrap();
        assert_eq!(text, "[gpu-pf] hello\n[gpu-pf] world\n");
    }

    #[test]
    fn writer_sink_is_shareable_across_threads() {
        let buf = SharedBuf::default();
        let sink = Arc::new(WriterSink::new(Box::new(buf.clone())));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let sink = sink.clone();
                std::thread::spawn(move || sink.line(&format!("line {i}")))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let text = String::from_utf8(buf.0.lock().clone()).unwrap();
        assert_eq!(text.lines().count(), 4);
    }
}
