//! Live SLO watchdog over windowed latency quantiles.
//!
//! `ks-perfgate` checks per-phase compile latency against the
//! checked-in `ci/perf-baseline.txt` once per CI run; the watchdog
//! applies the same budgets **continuously**: each evaluation compares
//! the windowed p95 of every watched histogram (from a
//! [`crate::window::WindowView`]) against `baseline_p95 × ratio`,
//! floored so machine variance on microsecond phases cannot flake.
//! Breaches are **edge-triggered** — one typed [`SloEvent::Breach`] per
//! excursion, one [`SloEvent::Recover`] when the metric returns under
//! budget — so a seeded drill fires exactly once, not once per tick.

use crate::window::WindowView;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Per-phase p50/p95 budgets parsed from `ci/perf-baseline.txt`
/// (`phase p50_us p95_us` lines, `#` comments) — the same file and
/// format ks-perfgate checks.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    pub phases: BTreeMap<String, (u64, u64)>,
}

impl Baseline {
    /// Parse baseline text; rejects malformed lines with a message
    /// naming the offending line.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut phases = BTreeMap::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (Some(phase), Some(p50), Some(p95), None) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                return Err(format!(
                    "baseline line {}: want `phase p50 p95`",
                    lineno + 1
                ));
            };
            let p50: u64 = p50
                .parse()
                .map_err(|e| format!("baseline line {}: bad p50: {e}", lineno + 1))?;
            let p95: u64 = p95
                .parse()
                .map_err(|e| format!("baseline line {}: bad p95: {e}", lineno + 1))?;
            phases.insert(phase.to_string(), (p50, p95));
        }
        Ok(Baseline { phases })
    }
}

/// Breach thresholds, mirroring ks-perfgate: a metric breaches only
/// past `baseline_p95 × ratio` AND the absolute floor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloPolicy {
    pub ratio: f64,
    pub floor_us: u64,
}

impl Default for SloPolicy {
    fn default() -> Self {
        SloPolicy {
            ratio: 10.0,
            floor_us: 2_000,
        }
    }
}

/// One watched histogram: windowed p95 of `metric` is judged against
/// baseline phase `phase`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloRule {
    pub metric: String,
    pub phase: String,
}

/// One watched *counter*: the windowed event count of `metric` is
/// judged against an absolute per-window budget instead of a latency
/// baseline. This is how rate-style SLOs (e.g. silent-data-corruption
/// detections) ride the same edge-triggered machinery as latency p95s:
/// `budget_per_window = 0` breaches on the first detection in a window
/// and recovers once a whole window passes clean.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterRule {
    pub metric: String,
    /// Human-readable rule label, used where latency rules print their
    /// baseline phase.
    pub label: String,
    /// Highest windowed count that is still healthy.
    pub budget_per_window: u64,
}

/// Typed watchdog verdict for one metric at one evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SloEvent {
    Breach(SloBreach),
    /// A [`CounterRule`] exceeded its per-window event budget.
    CounterBreach {
        metric: String,
        label: String,
        observed: u64,
        budget: u64,
        window_ticks: usize,
        seq: u64,
    },
    Recover {
        metric: String,
        seq: u64,
    },
}

/// An SLO excursion: the windowed p95 exceeded the budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloBreach {
    pub metric: String,
    pub phase: String,
    pub observed_p95_us: u64,
    pub budget_us: u64,
    pub baseline_p95_us: u64,
    pub window_ticks: usize,
    pub seq: u64,
}

impl fmt::Display for SloEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SloEvent::Breach(b) => write!(
                f,
                "SLO breach: {} windowed p95 {}µs > budget {}µs \
                 (baseline {} p95 {}µs, window {} ticks, seq {})",
                b.metric,
                b.observed_p95_us,
                b.budget_us,
                b.phase,
                b.baseline_p95_us,
                b.window_ticks,
                b.seq
            ),
            SloEvent::CounterBreach {
                metric,
                label,
                observed,
                budget,
                window_ticks,
                seq,
            } => write!(
                f,
                "SLO breach: {metric} count {observed} in window > budget {budget} \
                 (rule {label}, window {window_ticks} ticks, seq {seq})"
            ),
            SloEvent::Recover { metric, seq } => {
                write!(f, "SLO recovered: {metric} back under budget (seq {seq})")
            }
        }
    }
}

/// Edge-triggered evaluator: feed it windows, collect typed events.
pub struct Watchdog {
    baseline: Baseline,
    policy: SloPolicy,
    rules: Vec<SloRule>,
    counter_rules: Vec<CounterRule>,
    breached: BTreeSet<String>,
}

impl Watchdog {
    pub fn new(baseline: Baseline, policy: SloPolicy, rules: Vec<SloRule>) -> Self {
        Watchdog {
            baseline,
            policy,
            rules,
            counter_rules: Vec::new(),
            breached: BTreeSet::new(),
        }
    }

    /// Add a [`CounterRule`] (builder style).
    pub fn with_counter_rule(mut self, rule: CounterRule) -> Self {
        self.counter_rules.push(rule);
        self
    }

    /// The standard SDC-rate rule: any `gpu_pf.integrity.violations`
    /// event inside the window is a breach — a fleet member that is
    /// silently corrupting data should page, not just self-heal.
    pub fn sdc_rule() -> CounterRule {
        CounterRule {
            metric: crate::names::PF_INTEGRITY_VIOLATIONS.to_string(),
            label: "sdc-rate".to_string(),
            budget_per_window: 0,
        }
    }

    /// A watchdog wired with the standard rule set: every compile phase
    /// in the baseline maps to its `ks_core.compile.phase_us.*`
    /// histogram, `total` to `ks_core.compile.total_us`, and
    /// `promotion` to `gpu_pf.promotion.latency_us`. Baseline phases
    /// with no live histogram (e.g. `store`) are skipped. The
    /// [`Watchdog::sdc_rule`] counter rule is always included.
    pub fn standard(baseline: Baseline, policy: SloPolicy) -> Self {
        let rules = baseline
            .phases
            .keys()
            .filter_map(|phase| {
                let metric = match phase.as_str() {
                    "total" => crate::names::COMPILE_TOTAL_US.to_string(),
                    "promotion" => crate::names::PF_PROMOTION_LATENCY_US.to_string(),
                    "store" => return None,
                    p => crate::names::compile_phase_us(p),
                };
                Some(SloRule {
                    metric,
                    phase: phase.clone(),
                })
            })
            .collect();
        Watchdog::new(baseline, policy, rules).with_counter_rule(Watchdog::sdc_rule())
    }

    pub fn rules(&self) -> &[SloRule] {
        &self.rules
    }

    pub fn counter_rules(&self) -> &[CounterRule] {
        &self.counter_rules
    }

    /// The budget (µs) a rule's windowed p95 must stay under.
    pub fn budget_us(&self, rule: &SloRule) -> Option<u64> {
        let (_, p95) = self.baseline.phases.get(&rule.phase)?;
        Some(((*p95 as f64 * self.policy.ratio) as u64).max(self.policy.floor_us))
    }

    /// Judge one window. Emits `Breach` on the first evaluation a
    /// metric exceeds budget, `Recover` on the first evaluation it is
    /// back under (metrics silent in the window keep their state).
    pub fn evaluate(&mut self, window: &WindowView) -> Vec<SloEvent> {
        let mut events = Vec::new();
        for rule in &self.rules {
            let Some(budget) = self.baseline.phases.get(&rule.phase).map(|&(_, p95)| {
                ((p95 as f64 * self.policy.ratio) as u64).max(self.policy.floor_us)
            }) else {
                continue;
            };
            let Some(observed) = window.quantile(&rule.metric, 0.95) else {
                continue; // no samples in window: state unchanged
            };
            let over = observed > budget;
            let was = self.breached.contains(&rule.metric);
            if over && !was {
                self.breached.insert(rule.metric.clone());
                events.push(SloEvent::Breach(SloBreach {
                    metric: rule.metric.clone(),
                    phase: rule.phase.clone(),
                    observed_p95_us: observed,
                    budget_us: budget,
                    baseline_p95_us: self.baseline.phases[&rule.phase].1,
                    window_ticks: window.ticks,
                    seq: window.last_seq,
                }));
            } else if !over && was {
                self.breached.remove(&rule.metric);
                events.push(SloEvent::Recover {
                    metric: rule.metric.clone(),
                    seq: window.last_seq,
                });
            }
        }
        for rule in &self.counter_rules {
            // Unlike histograms, an absent counter really means "no
            // events this window" (deltas, not samples), so 0 is a
            // valid healthy observation and drives recovery.
            let observed = window.counter(&rule.metric);
            let over = observed > rule.budget_per_window;
            let was = self.breached.contains(&rule.metric);
            if over && !was {
                self.breached.insert(rule.metric.clone());
                events.push(SloEvent::CounterBreach {
                    metric: rule.metric.clone(),
                    label: rule.label.clone(),
                    observed,
                    budget: rule.budget_per_window,
                    window_ticks: window.ticks,
                    seq: window.last_seq,
                });
            } else if !over && was {
                self.breached.remove(&rule.metric);
                events.push(SloEvent::Recover {
                    metric: rule.metric.clone(),
                    seq: window.last_seq,
                });
            }
        }
        events
    }

    /// Metrics currently in breach.
    pub fn breached(&self) -> impl Iterator<Item = &str> {
        self.breached.iter().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;
    use crate::window::History;

    fn baseline() -> Baseline {
        Baseline::parse("# header\nopt 100 200\ntotal 1000 2000\n").unwrap()
    }

    #[test]
    fn baseline_parses_and_rejects_garbage() {
        let b = baseline();
        assert_eq!(b.phases["opt"], (100, 200));
        assert_eq!(b.phases["total"], (1000, 2000));
        assert!(Baseline::parse("opt 1").is_err());
        assert!(Baseline::parse("opt one 2").is_err());
        assert!(Baseline::parse("opt 1 2 3").is_err());
    }

    #[test]
    fn breach_fires_once_then_recovers_once() {
        let r = Registry::new();
        let mut hist = History::new(4);
        let mut dog = Watchdog::new(
            baseline(),
            SloPolicy::default(),
            vec![SloRule {
                metric: "ks_core.compile.total_us".to_string(),
                phase: "total".to_string(),
            }],
        );
        let h = r.histogram("ks_core.compile.total_us");
        // Clean tick: under budget (2000 * 10 = 20000 µs).
        h.record(1000);
        hist.tick_at(&r, 0);
        assert!(dog.evaluate(&hist.window(2)).is_empty());
        // Spike: breach fires exactly once...
        h.record(10_000_000);
        hist.tick_at(&r, 1000);
        let events = dog.evaluate(&hist.window(2));
        assert_eq!(events.len(), 1);
        let SloEvent::Breach(b) = &events[0] else {
            panic!("want breach, got {events:?}");
        };
        assert_eq!(b.budget_us, 20_000);
        assert!(b.observed_p95_us >= 10_000_000);
        assert!(format!("{}", events[0]).starts_with("SLO breach: "));
        // ...and not again while the spike is still in the window.
        hist.tick_at(&r, 2000);
        assert!(dog.evaluate(&hist.window(2)).is_empty());
        // New clean samples after the spike rotates out: one recover.
        h.record(500);
        hist.tick_at(&r, 3000);
        h.record(500);
        hist.tick_at(&r, 4000);
        let events = dog.evaluate(&hist.window(2));
        assert_eq!(
            events,
            vec![SloEvent::Recover {
                metric: "ks_core.compile.total_us".to_string(),
                seq: 5,
            }]
        );
    }

    #[test]
    fn floor_suppresses_microsecond_noise() {
        let mut dog = Watchdog::new(
            Baseline::parse("parse 10 20").unwrap(),
            SloPolicy::default(),
            vec![SloRule {
                metric: "m".to_string(),
                phase: "parse".to_string(),
            }],
        );
        // ratio alone would put the budget at 200µs; the floor keeps it
        // at 2000µs, so a 1500µs p95 is not a breach.
        let r = Registry::new();
        let mut hist = History::new(2);
        r.histogram("m").record(1500);
        hist.tick_at(&r, 0);
        assert!(dog.evaluate(&hist.window(1)).is_empty());
        assert_eq!(
            dog.budget_us(&SloRule {
                metric: "m".to_string(),
                phase: "parse".to_string(),
            }),
            Some(2000)
        );
    }

    #[test]
    fn standard_rules_cover_known_phases_and_skip_store() {
        let b = Baseline::parse("opt 1 2\ntotal 3 4\npromotion 5 6\nstore 7 8").unwrap();
        let dog = Watchdog::standard(b, SloPolicy::default());
        let metrics: Vec<&str> = dog.rules().iter().map(|r| r.metric.as_str()).collect();
        assert!(metrics.contains(&"ks_core.compile.phase_us.opt"));
        assert!(metrics.contains(&"ks_core.compile.total_us"));
        assert!(metrics.contains(&"gpu_pf.promotion.latency_us"));
        assert_eq!(metrics.len(), 3, "{metrics:?}");
    }

    #[test]
    fn counter_rule_breaches_on_rate_and_recovers_on_clean_window() {
        let r = Registry::new();
        let mut hist = History::new(4);
        let mut dog = Watchdog::new(baseline(), SloPolicy::default(), vec![])
            .with_counter_rule(Watchdog::sdc_rule());
        let c = r.counter(crate::names::PF_INTEGRITY_VIOLATIONS);
        // Clean window: zero violations, no breach.
        hist.tick_at(&r, 0);
        assert!(dog.evaluate(&hist.window(2)).is_empty());
        // One violation: a zero-budget rule breaches exactly once.
        c.inc();
        hist.tick_at(&r, 1000);
        let events = dog.evaluate(&hist.window(2));
        let [SloEvent::CounterBreach {
            metric,
            observed: 1,
            budget: 0,
            ..
        }] = events.as_slice()
        else {
            panic!("want one counter breach, got {events:?}");
        };
        assert_eq!(metric, crate::names::PF_INTEGRITY_VIOLATIONS);
        assert!(events[0].to_string().starts_with("SLO breach: "));
        // Still inside the window: edge-triggered, no repeat.
        hist.tick_at(&r, 2000);
        assert!(dog.evaluate(&hist.window(2)).is_empty());
        // The violation rotates out: one recovery.
        hist.tick_at(&r, 3000);
        hist.tick_at(&r, 4000);
        let events = dog.evaluate(&hist.window(2));
        assert!(
            matches!(events.as_slice(), [SloEvent::Recover { .. }]),
            "{events:?}"
        );
    }

    #[test]
    fn silent_window_keeps_state() {
        let r = Registry::new();
        let mut hist = History::new(2);
        let mut dog = Watchdog::new(
            baseline(),
            SloPolicy::default(),
            vec![SloRule {
                metric: "ks_core.compile.total_us".to_string(),
                phase: "total".to_string(),
            }],
        );
        r.histogram("ks_core.compile.total_us").record(99_000_000);
        hist.tick_at(&r, 0);
        assert_eq!(dog.evaluate(&hist.window(1)).len(), 1);
        // Quiet ticks: the metric disappears from the window, but no
        // phantom recover is emitted.
        hist.tick_at(&r, 1000);
        hist.tick_at(&r, 2000);
        assert!(dog.evaluate(&hist.window(1)).is_empty());
        assert_eq!(dog.breached().count(), 1);
    }
}
