//! Rolling-window aggregation over registry snapshots.
//!
//! The registry is cumulative-since-process-start; continuous traffic
//! wants "the last N ticks". [`History`] keeps a bounded ring of
//! per-tick **deltas** — counter increases and sparse histogram bucket
//! increases — and [`History::window`] merges the most recent N into a
//! [`WindowView`] with rates and windowed p50/p95/p99.
//!
//! Ticks are driven by the caller with an explicit timestamp
//! ([`History::tick_at`]), so tests replay a deterministic clock and
//! production code passes elapsed milliseconds from any monotonic
//! source. Nothing here reads the wall clock.

use crate::metrics::{Histogram, HistogramCells, Registry};
use std::collections::BTreeMap;

/// One tick's worth of metric deltas.
#[derive(Debug, Clone, Default)]
pub struct TickDelta {
    /// 1-based tick sequence number within this `History`.
    pub seq: u64,
    /// Caller-supplied timestamp (milliseconds on any monotonic axis).
    pub at_ms: u64,
    /// Counter increases since the previous tick (zero rows dropped).
    pub counters: BTreeMap<String, u64>,
    /// Histogram bucket/count/sum increases since the previous tick
    /// (histograms with no new samples dropped).
    pub histograms: BTreeMap<String, HistogramCells>,
}

/// Bounded ring of [`TickDelta`]s plus the cumulative baselines needed
/// to produce the next delta.
pub struct History {
    cap: usize,
    ticks: std::collections::VecDeque<TickDelta>,
    seq: u64,
    last_counters: BTreeMap<String, u64>,
    last_cells: BTreeMap<String, HistogramCells>,
}

impl History {
    /// A history retaining the most recent `cap` ticks (`cap >= 1`).
    pub fn new(cap: usize) -> Self {
        History {
            cap: cap.max(1),
            ticks: std::collections::VecDeque::new(),
            seq: 0,
            last_counters: BTreeMap::new(),
            last_cells: BTreeMap::new(),
        }
    }

    /// Snapshot `registry`, record the delta against the previous tick
    /// at caller-time `at_ms`, and rotate out the oldest tick past
    /// capacity. Returns the new tick's sequence number.
    pub fn tick_at(&mut self, registry: &Registry, at_ms: u64) -> u64 {
        let counters_now: BTreeMap<String, u64> = registry
            .snapshot()
            .counters
            .into_iter()
            .collect::<BTreeMap<_, _>>();
        let cells_now = registry.cells_snapshot();

        let mut counters = BTreeMap::new();
        for (name, now) in &counters_now {
            let before = self.last_counters.get(name).copied().unwrap_or(0);
            let d = now.saturating_sub(before);
            if d != 0 {
                counters.insert(name.clone(), d);
            }
        }

        let mut histograms = BTreeMap::new();
        for (name, now) in &cells_now {
            let delta = match self.last_cells.get(name) {
                Some(before) => diff_cells(now, before),
                None => now.clone(),
            };
            if delta.count != 0 || !delta.cells.is_empty() {
                histograms.insert(name.clone(), delta);
            }
        }

        self.seq += 1;
        self.ticks.push_back(TickDelta {
            seq: self.seq,
            at_ms,
            counters,
            histograms,
        });
        while self.ticks.len() > self.cap {
            self.ticks.pop_front();
        }
        self.last_counters = counters_now;
        self.last_cells = cells_now;
        self.seq
    }

    /// Number of ticks currently retained.
    pub fn len(&self) -> usize {
        self.ticks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ticks.is_empty()
    }

    /// Merge the most recent `n` ticks (all of them if fewer) into one
    /// aggregated view.
    pub fn window(&self, n: usize) -> WindowView {
        let take = n.min(self.ticks.len());
        let slice: Vec<&TickDelta> = self.ticks.iter().rev().take(take).collect();
        let mut view = WindowView {
            ticks: take,
            ..WindowView::default()
        };
        for (i, t) in slice.iter().enumerate() {
            if i == 0 {
                view.last_seq = t.seq;
                view.until_ms = t.at_ms;
            }
            view.first_seq = t.seq;
            view.from_ms = t.at_ms;
            for (name, d) in &t.counters {
                *view.counters.entry(name.clone()).or_insert(0) += d;
            }
            for (name, d) in &t.histograms {
                merge_cells(view.histograms.entry(name.clone()).or_default(), d);
            }
        }
        view
    }
}

/// `now - before` per bucket (and count/sum), saturating so a torn read
/// under concurrency can never go negative.
fn diff_cells(now: &HistogramCells, before: &HistogramCells) -> HistogramCells {
    let before_map: BTreeMap<u32, u64> = before.cells.iter().copied().collect();
    let cells = now
        .cells
        .iter()
        .filter_map(|&(i, n)| {
            let d = n.saturating_sub(before_map.get(&i).copied().unwrap_or(0));
            (d != 0).then_some((i, d))
        })
        .collect();
    HistogramCells {
        count: now.count.saturating_sub(before.count),
        sum: now.sum.saturating_sub(before.sum),
        cells,
    }
}

fn merge_cells(acc: &mut HistogramCells, d: &HistogramCells) {
    acc.count += d.count;
    acc.sum += d.sum;
    let mut map: BTreeMap<u32, u64> = acc.cells.iter().copied().collect();
    for &(i, n) in &d.cells {
        *map.entry(i).or_insert(0) += n;
    }
    acc.cells = map.into_iter().collect();
}

/// Aggregated deltas over the last N ticks of a [`History`].
#[derive(Debug, Clone, Default)]
pub struct WindowView {
    /// Ticks actually merged (≤ the requested window size).
    pub ticks: usize,
    pub first_seq: u64,
    pub last_seq: u64,
    /// Timestamp of the oldest merged tick.
    pub from_ms: u64,
    /// Timestamp of the newest merged tick.
    pub until_ms: u64,
    pub counters: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, HistogramCells>,
}

impl WindowView {
    /// Total increase of `name` across the window.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Events per second for counter `name`, using the window's
    /// timestamp span. `None` when the span is zero (a single tick).
    pub fn rate(&self, name: &str) -> Option<f64> {
        let span_ms = self.until_ms.saturating_sub(self.from_ms);
        (span_ms > 0).then(|| self.counter(name) as f64 * 1000.0 / span_ms as f64)
    }

    /// Windowed nearest-rank quantile of histogram `name` (`None` if it
    /// recorded nothing inside the window).
    pub fn quantile(&self, name: &str, q: f64) -> Option<u64> {
        self.histograms.get(name)?.quantile(q)
    }

    /// Windowed p50/p95/p99 + count/sum summary of histogram `name`.
    pub fn summary(&self, name: &str) -> Option<WindowSummary> {
        let h = self.histograms.get(name)?;
        Some(WindowSummary {
            count: h.cells.iter().map(|&(_, n)| n).sum(),
            sum: h.sum,
            p50: h.quantile(0.50).unwrap_or(0),
            p95: h.quantile(0.95).unwrap_or(0),
            p99: h.quantile(0.99).unwrap_or(0),
        })
    }
}

/// Windowed histogram summary (delta-only, unlike the cumulative
/// [`crate::HistogramSnapshot`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WindowSummary {
    pub count: u64,
    pub sum: u64,
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
}

impl WindowSummary {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// The bucket representative a windowed quantile would report for an
/// exact sample value — handy for tests comparing windowed answers to
/// known inputs without re-deriving the bucket math.
pub fn bucket_representative(v: u64) -> u64 {
    Histogram::bucket_value(Histogram::bucket_index(v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_capture_deltas_not_cumulatives() {
        let r = Registry::new();
        let mut h = History::new(8);
        r.counter("c").add(5);
        h.tick_at(&r, 1000);
        r.counter("c").add(2);
        h.tick_at(&r, 2000);
        let w = h.window(1);
        assert_eq!(w.counter("c"), 2);
        let w2 = h.window(2);
        assert_eq!(w2.counter("c"), 7);
        assert_eq!(w2.rate("c"), Some(7.0));
    }

    #[test]
    fn rotation_drops_oldest_ticks() {
        let r = Registry::new();
        let mut h = History::new(2);
        for i in 0..5u64 {
            r.counter("c").inc();
            h.tick_at(&r, i * 10);
        }
        assert_eq!(h.len(), 2);
        let w = h.window(10);
        assert_eq!(w.ticks, 2);
        assert_eq!(w.counter("c"), 2);
        assert_eq!(w.first_seq, 4);
        assert_eq!(w.last_seq, 5);
    }

    #[test]
    fn windowed_quantiles_see_only_recent_samples() {
        let r = Registry::new();
        let mut h = History::new(8);
        let lat = r.histogram("lat");
        for _ in 0..100 {
            lat.record(10);
        }
        h.tick_at(&r, 0);
        for _ in 0..5 {
            lat.record(100_000);
        }
        h.tick_at(&r, 1000);
        // The cumulative p95 is still dominated by the 10s (5 spikes in
        // 105 samples sit above the p95 rank)...
        assert_eq!(lat.quantile(0.95), Some(10));
        // ...but the last tick saw only the spike.
        let w = h.window(1);
        assert_eq!(
            w.quantile("lat", 0.95),
            Some(bucket_representative(100_000))
        );
        let s = w.summary("lat").unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 500_000);
    }

    #[test]
    fn empty_and_quiet_ticks_are_cheap() {
        let r = Registry::new();
        let mut h = History::new(4);
        r.counter("c").inc();
        h.tick_at(&r, 0);
        h.tick_at(&r, 10); // nothing changed
        let w = h.window(1);
        assert!(w.counters.is_empty());
        assert!(w.histograms.is_empty());
        assert_eq!(w.quantile("absent", 0.5), None);
        assert_eq!(w.rate("c"), None); // single tick: zero span
    }
}
