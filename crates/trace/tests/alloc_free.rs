//! Disabled-path overhead guard: once metric handles exist, publishing
//! through them — and constructing disabled spans — must not allocate.
//! A counting global allocator proves it: the telemetry hot path is
//! atomics only, so "always-on counters" cannot become an allocation
//! tax on the compile or pipeline hot paths.
//!
//! This lives in its own integration-test binary so the process-wide
//! allocator counter sees only this test's traffic.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

const OPS: u64 = 100_000;

#[test]
fn publishing_through_warm_handles_is_allocation_free() {
    // Warm-up: the first fetch of each handle allocates (name interning,
    // registry map nodes), as does the scoped chain construction. All of
    // that happens once, at setup.
    let r = ks_trace::Registry::new();
    let scope = r.scoped(&[("pipeline", "alloc-test")]);
    let counter = scope.counter("af.ops");
    let gauge = scope.gauge("af.gauge");
    let hist = scope.histogram("af.lat");
    counter.inc();
    gauge.set(1.0);
    hist.record(42);
    assert!(!ks_trace::enabled(), "spans must default to disabled");
    drop(ks_trace::span("warmup"));

    // Steady state: counters, gauges, histograms (three-level scoped
    // chains included) and disabled spans are allocation-free.
    let before = ALLOCS.load(Ordering::Relaxed);
    for i in 0..OPS {
        counter.inc();
        gauge.set(i as f64);
        hist.record(1 + (i % 10_000));
        let _span = ks_trace::span("disabled-hot-path");
    }
    let delta = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(
        delta, 0,
        "hot-path publishes allocated {delta} times over {OPS} iterations"
    );

    // Sanity: the publishes actually landed, at every chain level.
    assert_eq!(counter.get(), 1 + OPS);
    assert_eq!(r.counter_value("af.ops"), 1 + OPS);
    assert_eq!(r.histogram("af.lat").snapshot().count, 1 + OPS);
    assert_eq!(
        r.histogram("af.lat{pipeline=alloc-test}").snapshot().count,
        1 + OPS
    );
}

#[test]
fn overhead_microbench_reports_cost_per_publish() {
    // Not a pass/fail latency gate (CI machines vary wildly) — this
    // measures the disabled-span and enabled-publish cost so the
    // EXPERIMENTS overhead table can cite a reproducible number:
    // `cargo test -p ks-trace --test alloc_free -- --nocapture`.
    let r = ks_trace::Registry::new();
    let scope = r.scoped(&[("pipeline", "bench")]);
    let counter = scope.counter("ob.ops");
    let hist = scope.histogram("ob.lat");
    counter.inc();
    hist.record(1);

    let time = |label: &str, f: &mut dyn FnMut()| {
        let t0 = std::time::Instant::now();
        for _ in 0..OPS {
            f();
        }
        let ns = t0.elapsed().as_nanos() as f64 / OPS as f64;
        println!("overhead: {label}: {ns:.1} ns/op");
        ns
    };
    let span_ns = time("disabled span", &mut || {
        let _s = ks_trace::span("bench");
    });
    let counter_ns = time("scoped counter inc (2-level chain)", &mut || counter.inc());
    let hist_ns = time("scoped histogram record (2-level chain)", &mut || {
        hist.record(4096)
    });
    // Generous ceilings: these paths are a handful of atomics. If one
    // regresses past 2µs/op something structural broke (a lock or an
    // allocation crept in), which is worth failing loudly over even on
    // a noisy machine.
    for (label, ns) in [
        ("disabled span", span_ns),
        ("counter", counter_ns),
        ("histogram", hist_ns),
    ] {
        assert!(ns < 2_000.0, "{label} path regressed to {ns:.0} ns/op");
    }
}
