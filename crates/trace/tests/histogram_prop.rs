//! Property test: histogram quantiles agree with a sorted-reference
//! nearest-rank computation, up to bucket resolution. The log-scale
//! buckets quantize values, so the check is bucket identity — the
//! histogram's reported quantile must land in the same bucket as the
//! exact order statistic — plus exactness of count/sum/min/max.

use ks_trace::{Histogram, Registry};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..Default::default() })]

    #[test]
    fn quantiles_match_sorted_reference_bucket(
        values in prop::collection::vec(1u64..1_000_000_000, 1..200),
        qsel in 0usize..5,
    ) {
        let q = [0.0, 0.5, 0.9, 0.95, 0.99][qsel];
        let r = Registry::new();
        let h = r.histogram("prop");
        for &v in &values {
            h.record(v);
        }

        let mut sorted = values.clone();
        sorted.sort_unstable();
        let n = sorted.len() as u64;
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let exact = sorted[(rank - 1) as usize];

        let got = h.quantile(q).unwrap();
        prop_assert_eq!(
            Histogram::bucket_index(got),
            Histogram::bucket_index(exact),
            "q={} got {} exact {}",
            q,
            got,
            exact
        );
        // The reported quantile is a bucket upper bound, so it never
        // understates the exact order statistic.
        prop_assert!(got >= exact);

        // Non-bucketed aggregates are exact.
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, n);
        prop_assert_eq!(snap.sum, values.iter().sum::<u64>());
        prop_assert_eq!(snap.min, sorted[0]);
        prop_assert_eq!(snap.max, *sorted.last().unwrap());
    }
}
