//! Concurrency herd over labeled scopes: N publisher threads hammer
//! per-thread scopes while reader threads race snapshots and rolling-
//! window rotations against them. The scoped roll-up must be **exact**
//! at every level once the herd joins — parent-chained handles mean a
//! publish lands atomically in its cell and every enclosing aggregate,
//! so no interleaving can lose or double-count an increment.

use ks_trace::{scoped_counter_sum, History, Registry};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const THREADS: usize = 8;
const OPS_PER_THREAD: u64 = 5_000;

#[test]
fn herd_publishes_roll_up_exactly_under_racing_snapshots() {
    let r = Arc::new(Registry::new());
    let stop = Arc::new(AtomicBool::new(false));

    // Readers: one racing full snapshots, one racing window rotations.
    // Their observations may be torn across metrics, but each must be
    // internally sane (no cell ever exceeds the global it chains into).
    let snap_reader = {
        let (r, stop) = (r.clone(), stop.clone());
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let snap = r.snapshot();
                let global = snap.counter("herd.ops");
                let sum = scoped_counter_sum(&snap, "herd.ops", "worker");
                assert!(
                    sum <= global,
                    "scoped sum {sum} overtook the global {global}"
                );
                let c = snap
                    .histograms
                    .get("herd.lat{worker=w0}")
                    .map_or(0, |h| h.count);
                let a = snap.histograms.get("herd.lat").map_or(0, |h| h.count);
                assert!(c <= a, "scoped histogram count {c} overtook global {a}");
            }
        })
    };
    let window_reader = {
        let (r, stop) = (r.clone(), stop.clone());
        std::thread::spawn(move || {
            let mut h = History::new(4);
            let mut at = 0u64;
            while !stop.load(Ordering::Relaxed) {
                at += 100;
                h.tick_at(&r, at);
                let w = h.window(4);
                // Windowed deltas are saturating: never negative, and a
                // windowed quantile on a live histogram never panics.
                let _ = w.quantile("herd.lat", 0.95);
                let _ = w.counter("herd.ops");
            }
        })
    };

    let publishers: Vec<_> = (0..THREADS)
        .map(|t| {
            let r = r.clone();
            std::thread::spawn(move || {
                let scope = r.scoped(&[("worker", &format!("w{t}"))]);
                let ops = scope.counter("herd.ops");
                let lat = scope.histogram("herd.lat");
                // Half the publishes go through a nested sub-scope, so
                // the chain is exercised three levels deep.
                let nested = scope.scoped(&[("shard", "s0")]);
                let nested_ops = nested.counter("herd.ops");
                for i in 0..OPS_PER_THREAD {
                    if i % 2 == 0 {
                        ops.inc();
                    } else {
                        nested_ops.inc();
                    }
                    lat.record(1 + (i % 977));
                }
            })
        })
        .collect();
    for p in publishers {
        p.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    snap_reader.join().unwrap();
    window_reader.join().unwrap();

    // Quiesced: parity is exact at every level.
    let total = THREADS as u64 * OPS_PER_THREAD;
    let snap = r.snapshot();
    assert_eq!(snap.counter("herd.ops"), total);
    assert_eq!(scoped_counter_sum(&snap, "herd.ops", "worker"), total);
    for t in 0..THREADS {
        assert_eq!(
            snap.counter(&format!("herd.ops{{worker=w{t}}}")),
            OPS_PER_THREAD
        );
        assert_eq!(
            snap.counter(&format!("herd.ops{{shard=s0,worker=w{t}}}")),
            OPS_PER_THREAD / 2
        );
    }
    let global = r.histogram("herd.lat").snapshot();
    assert_eq!(global.count, total);
    let per_worker: u64 = (0..THREADS)
        .map(|t| {
            r.histogram(&format!("herd.lat{{worker=w{t}}}"))
                .snapshot()
                .count
        })
        .sum();
    assert_eq!(per_worker, total);

    // A final full-history window over a fresh History sees exactly the
    // herd's publishes as one delta.
    let mut h = History::new(2);
    h.tick_at(&r, 0);
    assert_eq!(h.window(1).counter("herd.ops"), total);
}
