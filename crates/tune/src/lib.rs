//! # ks-tune — implementation-parameter autotuning
//!
//! The dissertation positions kernel specialization as *complementary* to
//! autotuning (§3.2, §3.4): "by using highly parameterized CUDA kernels
//! that are specialized quickly at run time, autotuning tools can be used
//! to characterize the performance of a given implementation so that
//! effective parameters can be selected quickly and used to compile a
//! specialized kernel." This crate is that missing companion: a small,
//! application-agnostic search over discrete implementation-parameter
//! spaces (tile sizes, register-blocking factors, thread counts, …) whose
//! evaluation function typically compiles a specialized kernel and runs
//! it on the simulator.
//!
//! Strategies:
//! * [`Strategy::Exhaustive`] — measure every point (ground truth).
//! * [`Strategy::Greedy`] — coordinate-descent hill climbing with random
//!   restarts: a few dozen evaluations instead of the full cross product,
//!   matching how CUDA kernels are tuned in practice when each evaluation
//!   costs a compile + launch.
//!
//! All evaluations are memoized, so a greedy search that revisits a point
//! (or an exhaustive pass after a greedy one) never re-measures.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Registry counter for distinct (non-memoized) evaluations, published
/// so profiling tools can see autotuner effort alongside compile and
/// launch metrics.
fn evaluation_counter() -> &'static ks_trace::Counter {
    static HANDLE: std::sync::OnceLock<ks_trace::Counter> = std::sync::OnceLock::new();
    HANDLE.get_or_init(|| ks_trace::registry().counter(ks_trace::names::TUNE_EVALUATIONS))
}

/// A discrete parameter dimension: a name and its candidate values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dim {
    pub name: String,
    pub values: Vec<i64>,
}

/// The cross product of dimensions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParamSpace {
    pub dims: Vec<Dim>,
}

impl ParamSpace {
    pub fn new() -> ParamSpace {
        ParamSpace::default()
    }

    /// Add a dimension. Values must be non-empty.
    pub fn dim(mut self, name: &str, values: impl Into<Vec<i64>>) -> ParamSpace {
        let values = values.into();
        assert!(!values.is_empty(), "dimension {name} has no values");
        self.dims.push(Dim {
            name: name.to_string(),
            values,
        });
        self
    }

    /// Total number of points.
    pub fn size(&self) -> usize {
        self.dims.iter().map(|d| d.values.len()).product()
    }

    /// The point at the given per-dimension indices.
    fn point(&self, idx: &[usize]) -> Config {
        Config(
            self.dims
                .iter()
                .zip(idx)
                .map(|(d, &i)| (d.name.clone(), d.values[i]))
                .collect(),
        )
    }

    /// Every point of the cross product, in odometer order. Sweep
    /// drivers use this to precompile a whole candidate set through
    /// `Compiler::compile_batch` before (or instead of) walking it.
    pub fn configs(&self) -> Vec<Config> {
        assert!(!self.dims.is_empty(), "empty parameter space");
        let mut out = Vec::with_capacity(self.size());
        let mut idx = vec![0usize; self.dims.len()];
        loop {
            out.push(self.point(&idx));
            let mut d = 0;
            loop {
                idx[d] += 1;
                if idx[d] < self.dims[d].values.len() {
                    break;
                }
                idx[d] = 0;
                d += 1;
                if d == self.dims.len() {
                    return out;
                }
            }
        }
    }
}

/// A concrete assignment of every dimension.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Config(pub Vec<(String, i64)>);

impl Config {
    /// Value of a named parameter.
    pub fn get(&self, name: &str) -> i64 {
        self.0
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("no parameter named {name}"))
    }
}

impl std::fmt::Display for Config {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let parts: Vec<String> = self.0.iter().map(|(n, v)| format!("{n}={v}")).collect();
        write!(f, "{}", parts.join(", "))
    }
}

/// Search strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Evaluate the full cross product.
    Exhaustive,
    /// Coordinate-descent hill climbing with `restarts` random starting
    /// points (deterministic via `seed`).
    Greedy { restarts: u32, seed: u64 },
}

/// Outcome of a tuning run.
#[derive(Debug, Clone)]
pub struct TuneResult {
    pub best: Config,
    pub best_cost: f64,
    /// Number of *distinct* evaluations performed (memoized hits excluded).
    pub evaluations: usize,
    /// Every distinct point measured, in evaluation order.
    pub trace: Vec<(Config, f64)>,
}

/// Exhaustive search with candidate evaluations fanned out across
/// threads (rayon). The natural companion of `ks-core`'s concurrent
/// compile service: an evaluation function that compiles a specialized
/// kernel per point can share one `&Compiler` across all workers — the
/// sharded single-flight cache deduplicates identical specializations
/// and compiles distinct ones in parallel.
///
/// Equivalent to [`Strategy::Exhaustive`] (same points, same best), but
/// the trace is in odometer order rather than evaluation-completion
/// order, and `eval` must be `Fn + Sync` instead of `FnMut`.
pub fn tune_parallel<E: Send>(
    space: &ParamSpace,
    eval: impl Fn(&Config) -> Result<f64, E> + Sync,
) -> Result<TuneResult, E> {
    use rayon::prelude::*;
    let configs = space.configs();
    let costs: Vec<Result<f64, E>> = configs
        .par_iter()
        .map(|cfg| {
            let cost = eval(cfg);
            if cost.is_ok() {
                evaluation_counter().inc();
            }
            cost
        })
        .collect();
    let mut trace = Vec::with_capacity(configs.len());
    for (cfg, cost) in configs.into_iter().zip(costs) {
        trace.push((cfg, cost?));
    }
    let (best, best_cost) = trace
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .map(|(c, v)| (c.clone(), *v))
        .expect("nonempty space");
    Ok(TuneResult {
        best,
        best_cost,
        evaluations: trace.len(),
        trace,
    })
}

/// Errors surfaced by the evaluation function abort the search.
pub fn tune<E>(
    space: &ParamSpace,
    strategy: Strategy,
    mut eval: impl FnMut(&Config) -> Result<f64, E>,
) -> Result<TuneResult, E> {
    assert!(!space.dims.is_empty(), "empty parameter space");
    let mut memo: HashMap<Vec<usize>, f64> = HashMap::new();
    let mut trace: Vec<(Config, f64)> = Vec::new();

    // Memoized evaluation by index vector.
    let measure = |idx: &[usize],
                   memo: &mut HashMap<Vec<usize>, f64>,
                   trace: &mut Vec<(Config, f64)>,
                   eval: &mut dyn FnMut(&Config) -> Result<f64, E>|
     -> Result<f64, E> {
        if let Some(&c) = memo.get(idx) {
            return Ok(c);
        }
        let cfg = space.point(idx);
        let cost = eval(&cfg)?;
        evaluation_counter().inc();
        memo.insert(idx.to_vec(), cost);
        trace.push((cfg, cost));
        Ok(cost)
    };

    match strategy {
        Strategy::Exhaustive => {
            let mut idx = vec![0usize; space.dims.len()];
            loop {
                measure(&idx, &mut memo, &mut trace, &mut eval)?;
                // Odometer increment.
                let mut d = 0;
                loop {
                    idx[d] += 1;
                    if idx[d] < space.dims[d].values.len() {
                        break;
                    }
                    idx[d] = 0;
                    d += 1;
                    if d == space.dims.len() {
                        let (best_idx, &best_cost) = memo
                            .iter()
                            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                            .expect("nonempty");
                        return Ok(TuneResult {
                            best: space.point(best_idx),
                            best_cost,
                            evaluations: trace.len(),
                            trace,
                        });
                    }
                }
            }
        }
        Strategy::Greedy { restarts, seed } => {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut global_best: Option<(Vec<usize>, f64)> = None;
            for _ in 0..restarts.max(1) {
                let mut cur: Vec<usize> = space
                    .dims
                    .iter()
                    .map(|d| rng.gen_range(0..d.values.len()))
                    .collect();
                let mut cur_cost = measure(&cur, &mut memo, &mut trace, &mut eval)?;
                loop {
                    // Best single-coordinate move.
                    let mut best_move: Option<(Vec<usize>, f64)> = None;
                    for d in 0..space.dims.len() {
                        for delta in [-1i64, 1] {
                            let ni = cur[d] as i64 + delta;
                            if ni < 0 || ni as usize >= space.dims[d].values.len() {
                                continue;
                            }
                            let mut cand = cur.clone();
                            cand[d] = ni as usize;
                            let c = measure(&cand, &mut memo, &mut trace, &mut eval)?;
                            if c < cur_cost && best_move.as_ref().is_none_or(|(_, bc)| c < *bc) {
                                best_move = Some((cand, c));
                            }
                        }
                    }
                    match best_move {
                        Some((next, c)) => {
                            cur = next;
                            cur_cost = c;
                        }
                        None => break, // local optimum
                    }
                }
                if global_best.as_ref().is_none_or(|(_, b)| cur_cost < *b) {
                    global_best = Some((cur, cur_cost));
                }
            }
            let (best_idx, best_cost) = global_best.expect("at least one restart");
            Ok(TuneResult {
                best: space.point(&best_idx),
                best_cost,
                evaluations: trace.len(),
                trace,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::convert::Infallible;

    fn space2d() -> ParamSpace {
        ParamSpace::new()
            .dim("x", (0..10).collect::<Vec<_>>())
            .dim("y", (0..10).collect::<Vec<_>>())
    }

    /// Convex bowl with minimum at (7, 2).
    fn bowl(c: &Config) -> Result<f64, Infallible> {
        let (x, y) = (c.get("x") as f64, c.get("y") as f64);
        Ok((x - 7.0).powi(2) + (y - 2.0).powi(2))
    }

    #[test]
    fn exhaustive_finds_global_minimum() {
        let r = tune(&space2d(), Strategy::Exhaustive, bowl).unwrap();
        assert_eq!(r.best.get("x"), 7);
        assert_eq!(r.best.get("y"), 2);
        assert_eq!(r.evaluations, 100);
        assert_eq!(r.best_cost, 0.0);
    }

    #[test]
    fn parallel_exhaustive_matches_sequential() {
        let seq = tune(&space2d(), Strategy::Exhaustive, bowl).unwrap();
        let par = tune_parallel(&space2d(), bowl).unwrap();
        assert_eq!(par.best, seq.best);
        assert_eq!(par.best_cost, seq.best_cost);
        assert_eq!(par.evaluations, 100);
        // Odometer-ordered trace covering every point exactly once.
        assert_eq!(par.trace.len(), 100);
        let mut seen: Vec<_> = par.trace.iter().map(|(c, _)| c.clone()).collect();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 100);
    }

    #[test]
    fn parallel_errors_propagate() {
        let space = ParamSpace::new().dim("x", vec![1, 2, 3]);
        let r = tune_parallel(&space, |c: &Config| {
            if c.get("x") == 2 {
                Err("boom")
            } else {
                Ok(0.0)
            }
        });
        assert_eq!(r.unwrap_err(), "boom");
    }

    #[test]
    fn configs_enumerate_the_cross_product() {
        let space = ParamSpace::new()
            .dim("a", vec![1, 2])
            .dim("b", vec![10, 20, 30]);
        let pts = space.configs();
        assert_eq!(pts.len(), 6);
        assert_eq!(pts[0].get("a"), 1);
        assert_eq!(pts[0].get("b"), 10);
        // First dimension cycles fastest (odometer order).
        assert_eq!(pts[1].get("a"), 2);
        assert_eq!(pts[1].get("b"), 10);
        assert_eq!(pts[5].get("a"), 2);
        assert_eq!(pts[5].get("b"), 30);
    }

    #[test]
    fn greedy_finds_convex_minimum_with_few_evaluations() {
        let r = tune(
            &space2d(),
            Strategy::Greedy {
                restarts: 2,
                seed: 7,
            },
            bowl,
        )
        .unwrap();
        assert_eq!(r.best.get("x"), 7);
        assert_eq!(r.best.get("y"), 2);
        assert!(
            r.evaluations < 60,
            "greedy should beat exhaustive's 100 evals, used {}",
            r.evaluations
        );
    }

    #[test]
    fn greedy_with_restarts_escapes_local_minima() {
        // Two basins: a shallow one at x=1 and the global one at x=8.
        let space = ParamSpace::new().dim("x", (0..10).collect::<Vec<_>>());
        let f = |c: &Config| -> Result<f64, Infallible> {
            let x = c.get("x") as f64;
            Ok(((x - 1.0).powi(2)).min((x - 8.0).powi(2) - 3.0))
        };
        let r = tune(
            &space,
            Strategy::Greedy {
                restarts: 6,
                seed: 3,
            },
            f,
        )
        .unwrap();
        assert_eq!(r.best.get("x"), 8);
    }

    #[test]
    fn memoization_dedupes_evaluations() {
        let mut calls = 0usize;
        let space = ParamSpace::new().dim("x", vec![1, 2, 3]);
        let r = tune(
            &space,
            Strategy::Greedy {
                restarts: 10,
                seed: 1,
            },
            |c: &Config| -> Result<f64, Infallible> {
                calls += 1;
                Ok(c.get("x") as f64)
            },
        )
        .unwrap();
        assert_eq!(calls, r.evaluations);
        assert!(calls <= 3, "only 3 distinct points exist, called {calls}");
        assert_eq!(r.best.get("x"), 1);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig {
            cases: 32, ..Default::default()
        })]

        /// Greedy never reports a better-than-true optimum, exhaustive
        /// always finds the true optimum, and both agree with a brute-force
        /// scan of the random cost table.
        #[test]
        fn greedy_bounded_by_exhaustive(
            costs in proptest::collection::vec(0u32..1000, 4..30),
            seed in 0u64..1000,
        ) {
            let space = ParamSpace::new()
                .dim("x", (0..costs.len() as i64).collect::<Vec<_>>());
            let eval = |c: &Config| -> Result<f64, std::convert::Infallible> {
                Ok(costs[c.get("x") as usize] as f64)
            };
            let true_min = *costs.iter().min().unwrap() as f64;
            let ex = tune(&space, Strategy::Exhaustive, eval).unwrap();
            proptest::prop_assert_eq!(ex.best_cost, true_min);
            let gr = tune(&space, Strategy::Greedy { restarts: 3, seed }, eval).unwrap();
            proptest::prop_assert!(gr.best_cost >= true_min);
            proptest::prop_assert!(gr.evaluations <= ex.evaluations.max(gr.evaluations));
            // Every trace cost matches the table.
            for (cfg, cost) in &gr.trace {
                proptest::prop_assert_eq!(*cost, costs[cfg.get("x") as usize] as f64);
            }
        }
    }

    #[test]
    fn evaluation_errors_propagate() {
        let space = ParamSpace::new().dim("x", vec![1, 2]);
        let r = tune(&space, Strategy::Exhaustive, |c: &Config| {
            if c.get("x") == 2 {
                Err("boom")
            } else {
                Ok(0.0)
            }
        });
        assert_eq!(r.unwrap_err(), "boom");
    }

    #[test]
    fn config_display_and_access() {
        let c = Config(vec![("rb".into(), 4), ("threads".into(), 128)]);
        assert_eq!(c.to_string(), "rb=4, threads=128");
        assert_eq!(c.get("threads"), 128);
    }
}
