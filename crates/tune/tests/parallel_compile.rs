//! The §3.2/§3.4 composition under concurrency: an exhaustive autotuning
//! pass over a 64-point space where every candidate evaluation compiles a
//! specialized kernel through one shared `ks_core::Compiler`. The space
//! is precompiled in parallel via the batch API, then the parallel search
//! itself re-requests every specialization — all hits, with per-phase
//! `CompileMetrics` attached to every binary.

use ks_core::{Compiler, Defines};
use ks_sim::DeviceConfig;
use ks_tune::{tune_parallel, ParamSpace};

const KERNEL: &str = r#"
    #ifndef LOOP_COUNT
    #define LOOP_COUNT loopCount
    #endif
    #ifndef STRIDE
    #define STRIDE stride
    #endif
    __global__ void k(int* in, int* out, int loopCount, int stride) {
        int acc = 0;
        const unsigned int offset = blockIdx.x * blockDim.x + threadIdx.x;
        for (int i = 0; i < LOOP_COUNT; i++) {
            acc += *(in + offset + i * STRIDE);
        }
        *(out + offset) = acc;
    }
"#;

fn defines(c: &ks_tune::Config) -> Defines {
    Defines::new()
        .def("LOOP_COUNT", c.get("loop"))
        .def("STRIDE", c.get("stride"))
}

#[test]
fn exhaustive_64_point_space_through_the_batch_api() {
    let space = ParamSpace::new()
        .dim("loop", (1..=8).collect::<Vec<_>>())
        .dim("stride", (1..=8).collect::<Vec<_>>());
    assert_eq!(space.size(), 64);

    let compiler = Compiler::new(DeviceConfig::tesla_c1060());

    // Phase 1: precompile the full candidate set in parallel.
    let jobs: Vec<(&str, Defines)> = space
        .configs()
        .iter()
        .map(|c| (KERNEL, defines(c)))
        .collect();
    compiler.precompile(&jobs).unwrap();
    let warmed = compiler.cache_stats();
    assert_eq!(
        warmed.misses, 64,
        "one compilation per distinct point: {warmed}"
    );
    assert_eq!(warmed.hits + warmed.misses, 64, "{warmed}");

    // Phase 2: the exhaustive parallel search re-requests every
    // specialization — all cache hits, zero extra compiles.
    let result = tune_parallel(&space, |c| -> Result<f64, ks_core::CompileError> {
        let bin = compiler.compile(KERNEL, defines(c))?;
        // Per-phase metrics ride on every binary.
        assert!(bin.metrics.total > std::time::Duration::ZERO);
        assert!(bin.metrics.summary().contains("preproc"));
        // Cost model: prefer the fewest static instructions.
        Ok(bin.static_insts("k") as f64)
    })
    .unwrap();
    assert_eq!(result.evaluations, 64);
    // Fully unrolled single-iteration loop is the smallest kernel.
    assert_eq!(result.best.get("loop"), 1);

    let s = compiler.cache_stats();
    assert_eq!(s.misses, 64, "search must not recompile: {s}");
    assert_eq!(s.hits + s.misses, 128, "{s}");
}
