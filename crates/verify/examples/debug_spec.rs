//! Scratch driver: print where RE and SK summaries diverge for one kernel.

use ks_codegen::CodegenOptions;
use ks_verify::summary::{Effect, PathEnd};
use ks_verify::{derive_bindings, Arena, Env, Limits, Summarizer};

fn main() {
    let src = include_str!("../../apps/src/kernels/template_match.cu");
    let defines: Vec<(String, String)> = [
        ("TILE_W", "16"),
        ("TILE_H", "16"),
        ("SHIFT_W", "16"),
        ("NUM_TILES", "16"),
        ("TEMPL_W", "64"),
        ("TEMPL_H", "56"),
        ("THREADS", "128"),
    ]
    .iter()
    .map(|(k, v)| (k.to_string(), v.to_string()))
    .collect();
    let target: String = std::env::args().nth(1).unwrap_or("sum_partials".into());
    let envsel: String = std::env::args().nth(2).unwrap_or("tid0".into());

    let re = {
        let p = ks_lang::frontend(src, &[]).unwrap();
        ks_codegen::compile(&p, &CodegenOptions::default()).unwrap()
    };
    let sk = {
        let p = ks_lang::frontend(src, &defines).unwrap();
        ks_codegen::compile(&p, &CodegenOptions::default()).unwrap()
    };
    let derived = derive_bindings(src, &defines);
    println!("derived: {derived:?}");

    let mut env = match envsel.as_str() {
        "sym" => Env::symbolic(),
        _ => Env::sample([0, 0, 0], [0, 0, 0]),
    };
    derived.apply(&mut env);

    let rf = re.functions.iter().find(|f| f.name == target).unwrap();
    let sf = sk.functions.iter().find(|f| f.name == target).unwrap();
    let mut arena = Arena::new();
    let mut s = Summarizer::new(&mut arena, Limits::default());
    let a = s.summarize(rf, &re, &env);
    let b = s.summarize(sf, &sk, &env);
    println!(
        "RE paths={} complete={} | SK paths={} complete={}",
        a.paths.len(),
        a.complete,
        b.paths.len(),
        b.complete
    );
    for (i, (pa, pb)) in a.paths.iter().zip(b.paths.iter()).enumerate() {
        if pa == pb {
            continue;
        }
        println!(
            "== path {i}: conds {} vs {}, effects {} vs {}, end {:?} vs {:?}",
            pa.conds.len(),
            pb.conds.len(),
            pa.effects.len(),
            pb.effects.len(),
            pa.end,
            pb.end
        );
        for (j, (ca, cb)) in pa.conds.iter().zip(pb.conds.iter()).enumerate() {
            if ca != cb {
                println!(
                    "  cond {j}: RE {} ({}) vs SK {} ({})",
                    arena.render(ca.0),
                    ca.1,
                    arena.render(cb.0),
                    cb.1
                );
                break;
            }
        }
        if pa.conds.len() != pb.conds.len() {
            let n = pa.conds.len().min(pb.conds.len());
            for (side, p) in [("RE", pa), ("SK", pb)] {
                if p.conds.len() > n {
                    println!(
                        "  extra cond[{n}] on {side}: {} ({})",
                        arena.render(p.conds[n].0),
                        p.conds[n].1
                    );
                }
            }
        }
        for (j, (ea, eb)) in pa.effects.iter().zip(pb.effects.iter()).enumerate() {
            if ea == eb {
                continue;
            }
            match (ea, eb) {
                (
                    Effect::Store {
                        addr: aa,
                        value: va,
                        ..
                    },
                    Effect::Store {
                        addr: ab,
                        value: vb,
                        ..
                    },
                ) => {
                    if aa != ab {
                        let (na, nb) = ks_verify::diff::narrow(&arena, *aa, *ab);
                        println!(
                            "  effect {j} addr diverges:\n    RE {}\n    SK {}",
                            arena.render(na),
                            arena.render(nb)
                        );
                    } else {
                        let (na, nb) = ks_verify::diff::narrow(&arena, *va, *vb);
                        println!(
                            "  effect {j} value diverges:\n    RE {}\n    SK {}",
                            arena.render(na),
                            arena.render(nb)
                        );
                    }
                }
                _ => println!("  effect {j} kind differs: {ea:?} vs {eb:?}"),
            }
            break;
        }
        if let PathEnd::Truncated { forks } = pa.end {
            let _ = forks;
        }
        break;
    }
}
