//! Derivation of symbolic bindings from a kernel's specialization idiom.
//!
//! The shipped kernels all follow the dissertation's pattern:
//!
//! ```c
//! #ifndef RB
//! #define RB rb              // RE build: read the kernel parameter
//! #endif
//! #ifndef THREADS
//! #define THREADS (int)blockDim.x   // RE build: read blockDim
//! #endif
//! ```
//!
//! Compiling with `-D RB=4 -D THREADS=64` replaces those reads with
//! constants. Specialization equivalence therefore means: the RE module's
//! summary, evaluated with parameter `rb` bound to 4 and `ntid.x` bound to
//! 64, must equal the SK module's summary. This module scans the source
//! for the `#ifndef` fallbacks of each define and turns the `-D` values
//! into exactly those bindings.

use crate::summary::{Env, Val};
use ks_ir::SpecialReg;

/// One derived binding.
#[derive(Debug, Clone, PartialEq)]
pub enum Binding {
    /// The define's RE fallback reads this kernel parameter.
    Param(String, Val),
    /// The define's RE fallback reads a block-dimension special register.
    Special(SpecialReg, i64),
    /// The define has no RE-visible fallback we can bind (e.g. it only
    /// changes an allocation size); recorded for diagnostics.
    Unbound(String),
}

/// Bindings derived from a source + define set.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DerivedBindings {
    pub bindings: Vec<Binding>,
    /// Block dimensions fixed by the defines (x, y, z), when known.
    pub ntid: [Option<i64>; 3],
}

impl DerivedBindings {
    /// Apply the derived bindings on top of `env` (param and blockDim
    /// bindings; thread samples remain whatever `env` carries).
    pub fn apply(&self, env: &mut Env) {
        for b in &self.bindings {
            match b {
                Binding::Param(name, v) => env.bind_param(name, *v),
                Binding::Special(r, v) => env.bind_special(*r, *v),
                Binding::Unbound(_) => {}
            }
        }
    }
}

/// Parse a `-D` value string into a concrete value.
fn parse_val(s: &str) -> Option<Val> {
    let t = s.trim();
    if t.is_empty() {
        return Some(Val::I(1)); // flag define
    }
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        if let Ok(v) = i64::from_str_radix(hex, 16) {
            return Some(Val::I(v));
        }
    }
    if let Ok(v) = t.parse::<i64>() {
        return Some(Val::I(v));
    }
    let ft = t.strip_suffix('f').unwrap_or(t);
    if let Ok(v) = ft.parse::<f32>() {
        return Some(Val::F(v));
    }
    None
}

/// Scan `source` for the `#ifndef NAME … #define NAME <fallback>` idiom and
/// derive bindings for each `(name, value)` define pair.
pub fn derive_bindings(source: &str, defines: &[(String, String)]) -> DerivedBindings {
    let mut out = DerivedBindings::default();
    for (name, value) in defines {
        let Some(val) = parse_val(value) else {
            out.bindings.push(Binding::Unbound(name.clone()));
            continue;
        };
        match fallback_of(source, name) {
            Some(body) => {
                let body = body.trim();
                if let Some(axis) = blockdim_axis(body) {
                    let reg = [SpecialReg::NtidX, SpecialReg::NtidY, SpecialReg::NtidZ][axis];
                    if let Val::I(v) = val {
                        out.ntid[axis] = Some(v);
                        out.bindings.push(Binding::Special(reg, v));
                    } else {
                        out.bindings.push(Binding::Unbound(name.clone()));
                    }
                } else if is_identifier(body) {
                    out.bindings.push(Binding::Param(body.to_string(), val));
                } else {
                    out.bindings.push(Binding::Unbound(name.clone()));
                }
            }
            None => out.bindings.push(Binding::Unbound(name.clone())),
        }
    }
    out
}

/// Find the body of `#define name <body>` inside the `#ifndef name` block.
fn fallback_of(source: &str, name: &str) -> Option<String> {
    let mut inside = false;
    for line in source.lines() {
        let t = line.trim();
        if t.strip_prefix("#ifndef").is_some() {
            // Fallbacks may be grouped: `#ifndef THREADS` defines both
            // THREADS and THREADS_ALLOC. Any `#ifndef` block counts.
            inside = true;
            continue;
        }
        if t.starts_with("#else") || t.starts_with("#endif") {
            inside = false;
            continue;
        }
        if inside {
            if let Some(rest) = t.strip_prefix("#define") {
                let rest = rest.trim();
                if let Some(body) = rest.strip_prefix(name) {
                    // Require an exact token match: "#define THREADS ..."
                    // must not match "#define THREADS_ALLOC ...".
                    if body.starts_with(|c: char| c.is_whitespace()) || body.is_empty() {
                        return Some(body.trim().to_string());
                    }
                }
            }
        }
    }
    None
}

/// Recognize `blockDim.x` (optionally wrapped in casts/parens); returns the
/// axis index.
fn blockdim_axis(body: &str) -> Option<usize> {
    let cleaned: String = body
        .chars()
        .filter(|c| !c.is_whitespace() && *c != '(' && *c != ')')
        .collect();
    let cleaned = cleaned.strip_prefix("int").unwrap_or(&cleaned).to_string();
    match cleaned.as_str() {
        "blockDim.x" => Some(0),
        "blockDim.y" => Some(1),
        "blockDim.z" => Some(2),
        _ => None,
    }
}

fn is_identifier(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
#ifndef RB
#define RB rb
#define RB_MAX 16
#else
#define RB_MAX RB
#endif
#ifndef THREADS
#define THREADS_ALLOC 512
#define THREADS (int)blockDim.x
#else
#define THREADS_ALLOC THREADS
#endif
#ifndef SCALE
#define SCALE 2.5f
#endif
"#;

    #[test]
    fn derives_param_and_blockdim_bindings() {
        let defines = vec![
            ("RB".to_string(), "4".to_string()),
            ("THREADS".to_string(), "64".to_string()),
        ];
        let d = derive_bindings(SRC, &defines);
        assert!(d.bindings.contains(&Binding::Param("rb".into(), Val::I(4))));
        assert!(d
            .bindings
            .contains(&Binding::Special(SpecialReg::NtidX, 64)));
        assert_eq!(d.ntid[0], Some(64));
    }

    #[test]
    fn literal_fallback_is_unbound() {
        let defines = vec![("SCALE".to_string(), "3.0f".to_string())];
        let d = derive_bindings(SRC, &defines);
        assert_eq!(d.bindings, vec![Binding::Unbound("SCALE".into())]);
    }

    #[test]
    fn threads_prefix_does_not_match_threads_alloc() {
        assert_eq!(
            fallback_of(SRC, "THREADS").as_deref(),
            Some("(int)blockDim.x")
        );
        assert_eq!(fallback_of(SRC, "THREADS_ALLOC").as_deref(), Some("512"));
    }

    #[test]
    fn value_parsing() {
        assert_eq!(parse_val("64"), Some(Val::I(64)));
        assert_eq!(parse_val("0x10"), Some(Val::I(16)));
        assert_eq!(parse_val("2.5f"), Some(Val::F(2.5)));
        assert_eq!(parse_val(""), Some(Val::I(1)));
        assert_eq!(parse_val("a+b"), None);
    }
}
