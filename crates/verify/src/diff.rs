//! Typed comparison of two function summaries, pinpointing the first
//! diverging value or effect.

use crate::expr::{Arena, Expr, ExprId};
use crate::summary::{Effect, FnSummary, PathEnd, PathSummary};
use std::fmt;

/// What diverged first between two summaries (`a` = pre/reference,
/// `b` = post/candidate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffKind {
    /// Control-path sets differ (a path exists on one side only).
    PathCount { a: usize, b: usize },
    /// The `index`-th branch condition of a path differs.
    Cond { path: usize, index: usize },
    /// A path's effect traces differ in length.
    EffectCount { path: usize, a: usize, b: usize },
    /// Effect `index` differs in kind (store vs barrier) or store shape.
    EffectKind { path: usize, index: usize },
    /// Effect `index` stores to different addresses.
    StoreAddr { path: usize, index: usize },
    /// Effect `index` stores different values.
    StoreValue { path: usize, index: usize },
    /// A path ended differently (ret vs truncation depth).
    End { path: usize },
}

/// A translation-validation finding: the first point where two summaries
/// of supposedly equivalent code disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyDiff {
    pub function: String,
    pub kind: DiffKind,
    /// Rendered expressions / context for the diverging point.
    pub detail: String,
}

impl fmt::Display for VerifyDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {:?}: {}", self.function, self.kind, self.detail)
    }
}

/// Result of comparing two summaries.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    Equal,
    /// Budgets stopped one side before a verdict was possible; the common
    /// prefix matched.
    Inconclusive(String),
    Diff(VerifyDiff),
}

impl Outcome {
    pub fn is_diff(&self) -> bool {
        matches!(self, Outcome::Diff(_))
    }
}

/// Descend into two differing expressions while exactly one child pair
/// differs, returning the smallest differing subexpression pair. This is
/// what makes `StoreValue` diffs readable when the divergence is buried in
/// a deep accumulation chain.
pub fn narrow(arena: &Arena, mut a: ExprId, mut b: ExprId) -> (ExprId, ExprId) {
    fn children(e: &Expr) -> Vec<ExprId> {
        match e {
            Expr::Bin { a, b, .. } | Expr::Cmp { a, b, .. } => vec![*a, *b],
            Expr::Un { a, .. } | Expr::Cvt { a, .. } => vec![*a],
            Expr::Sel { pred, a, b, .. } => vec![*pred, *a, *b],
            Expr::Load { addr, .. } => vec![*addr],
            Expr::Tex { idx, .. } => vec![*idx],
            Expr::Lin { terms, .. } => terms.iter().map(|&(t, _)| t).collect(),
            _ => vec![],
        }
    }
    loop {
        let (ea, eb) = (arena.get(a), arena.get(b));
        if std::mem::discriminant(ea) != std::mem::discriminant(eb) {
            return (a, b);
        }
        let (ca, cb) = (children(ea), children(eb));
        if ca.len() != cb.len() {
            return (a, b);
        }
        let diffs: Vec<usize> = (0..ca.len()).filter(|&i| ca[i] != cb[i]).collect();
        if diffs.len() != 1 {
            return (a, b);
        }
        a = ca[diffs[0]];
        b = cb[diffs[0]];
    }
}

/// Compare two summaries produced in the same [`Arena`].
///
/// Paths are aligned by their branch-condition sequence, not by discovery
/// order: a transform like loop unrolling turns one fork *site* into many,
/// so the two sides may truncate their exploration at different depths. A
/// path that ended early (fork budget / step budget) on one side is
/// validated against every path extending its condition sequence on the
/// other side — its effect trace must be a prefix of each extension's.
pub fn compare(arena: &Arena, a: &FnSummary, b: &FnSummary) -> Outcome {
    let mut used_a = vec![false; a.paths.len()];
    let mut used_b = vec![false; b.paths.len()];
    let mut partial: Option<String> = None;

    // 1. Exact condition-sequence matches compare strictly.
    for (i, pa) in a.paths.iter().enumerate() {
        let Some(j) = (0..b.paths.len()).find(|&j| !used_b[j] && b.paths[j].conds == pa.conds)
        else {
            continue;
        };
        used_a[i] = true;
        used_b[j] = true;
        match compare_path(arena, &a.function, i, pa, &b.paths[j]) {
            Outcome::Equal => {}
            Outcome::Inconclusive(m) => partial = Some(m),
            diff => return diff,
        }
    }

    // 2. Early-ended paths absorb the other side's extensions.
    for (i, pa) in a.paths.iter().enumerate() {
        if used_a[i] || !ended_early(pa) {
            continue;
        }
        let (matched, outcome) = absorb(arena, &a.function, i, pa, &b.paths, &mut used_b, false);
        match outcome {
            Outcome::Equal => {}
            Outcome::Inconclusive(m) => partial = Some(m),
            diff => return diff,
        }
        if matched {
            used_a[i] = true;
        }
    }
    for (j, pb) in b.paths.iter().enumerate() {
        if used_b[j] || !ended_early(pb) {
            continue;
        }
        let (matched, outcome) = absorb(arena, &a.function, j, pb, &a.paths, &mut used_a, true);
        match outcome {
            Outcome::Equal => {}
            Outcome::Inconclusive(m) => partial = Some(m),
            diff => return diff,
        }
        if matched {
            used_b[j] = true;
        }
    }

    // 3. Leftover paths exist on one side only.
    let leftover_a = used_a.iter().filter(|u| !**u).count();
    let leftover_b = used_b.iter().filter(|u| !**u).count();
    if leftover_a + leftover_b > 0 {
        // Incomplete exploration (or a leftover that itself ended early,
        // whose counterpart the other side never reached) is inconclusive,
        // not a miscompile.
        let early_leftover = used_a
            .iter()
            .enumerate()
            .any(|(i, u)| !*u && ended_early(&a.paths[i]))
            || used_b
                .iter()
                .enumerate()
                .any(|(j, u)| !*u && ended_early(&b.paths[j]));
        if !a.complete || !b.complete || early_leftover {
            return Outcome::Inconclusive(format!(
                "path exploration truncated ({} vs {} paths)",
                a.paths.len(),
                b.paths.len()
            ));
        }
        let detail = used_a
            .iter()
            .position(|u| !*u)
            .map(|i| (&a.paths[i], "pre"))
            .or_else(|| {
                used_b
                    .iter()
                    .position(|u| !*u)
                    .map(|j| (&b.paths[j], "post"))
            })
            .map(|(p, side)| {
                let conds: Vec<String> = p
                    .conds
                    .iter()
                    .map(|(c, taken)| format!("{}={}", arena.render(*c), taken))
                    .collect();
                format!("path only in {side}: [{}]", conds.join(", "))
            })
            .unwrap_or_default();
        return Outcome::Diff(VerifyDiff {
            function: a.function.clone(),
            kind: DiffKind::PathCount {
                a: a.paths.len(),
                b: b.paths.len(),
            },
            detail,
        });
    }
    if a.inconclusive() || b.inconclusive() {
        return Outcome::Inconclusive(
            partial.unwrap_or_else(|| "exploration budget exhausted on some path".into()),
        );
    }
    match partial {
        Some(m) => Outcome::Inconclusive(m),
        None => Outcome::Equal,
    }
}

fn ended_early(p: &PathSummary) -> bool {
    matches!(p.end, PathEnd::Truncated { .. } | PathEnd::StepBudget)
}

/// Validate an early-ended path `p` against every unused path of `others`
/// whose condition sequence extends `p.conds`: the explored effect prefix
/// must agree. Returns whether any extension was found, plus the outcome.
/// `swapped` flips pre/post labels in reported diffs.
fn absorb(
    arena: &Arena,
    function: &str,
    path: usize,
    p: &PathSummary,
    others: &[PathSummary],
    used: &mut [bool],
    swapped: bool,
) -> (bool, Outcome) {
    let mut any = false;
    for (j, q) in others.iter().enumerate() {
        if used[j] || q.conds.len() < p.conds.len() || q.conds[..p.conds.len()] != p.conds[..] {
            continue;
        }
        used[j] = true;
        any = true;
        let n = p.effects.len().min(q.effects.len());
        for i in 0..n {
            let (ea, eb) = if swapped {
                (&q.effects[i], &p.effects[i])
            } else {
                (&p.effects[i], &q.effects[i])
            };
            match compare_effect(arena, function, path, i, ea, eb) {
                Outcome::Equal => {}
                other => return (any, other),
            }
        }
        if q.effects.len() < p.effects.len() && !ended_early(q) {
            let (a_len, b_len) = if swapped {
                (q.effects.len(), p.effects.len())
            } else {
                (p.effects.len(), q.effects.len())
            };
            return (
                any,
                Outcome::Diff(VerifyDiff {
                    function: function.to_string(),
                    kind: DiffKind::EffectCount {
                        path,
                        a: a_len,
                        b: b_len,
                    },
                    detail: "extension path has fewer effects than the truncated prefix".into(),
                }),
            );
        }
    }
    if any {
        (
            true,
            Outcome::Inconclusive(format!(
                "path {path} compared only up to its truncation point"
            )),
        )
    } else {
        (false, Outcome::Equal)
    }
}

/// Compare two paths whose branch-condition sequences already matched.
fn compare_path(
    arena: &Arena,
    function: &str,
    path: usize,
    a: &PathSummary,
    b: &PathSummary,
) -> Outcome {
    // If either side ended early, only the common prefix is comparable.
    let lenient = ended_early(a) || ended_early(b);

    let ne = a.effects.len().min(b.effects.len());
    for i in 0..ne {
        match compare_effect(arena, function, path, i, &a.effects[i], &b.effects[i]) {
            Outcome::Equal => {}
            other => return other,
        }
    }
    if a.effects.len() != b.effects.len() {
        if lenient {
            return Outcome::Inconclusive(format!(
                "path {path} compared only up to its truncation point"
            ));
        }
        return Outcome::Diff(VerifyDiff {
            function: function.to_string(),
            kind: DiffKind::EffectCount {
                path,
                a: a.effects.len(),
                b: b.effects.len(),
            },
            detail: "observable effect traces differ in length".into(),
        });
    }
    if a.end != b.end {
        if lenient {
            return Outcome::Inconclusive(format!(
                "path {path} ended early on one side ({:?} vs {:?})",
                a.end, b.end
            ));
        }
        return Outcome::Diff(VerifyDiff {
            function: function.to_string(),
            kind: DiffKind::End { path },
            detail: format!("pre: {:?}, post: {:?}", a.end, b.end),
        });
    }
    Outcome::Equal
}

/// Compare one effect pair.
fn compare_effect(
    arena: &Arena,
    function: &str,
    path: usize,
    index: usize,
    a: &Effect,
    b: &Effect,
) -> Outcome {
    let diff = |kind: DiffKind, detail: String| {
        Outcome::Diff(VerifyDiff {
            function: function.to_string(),
            kind,
            detail,
        })
    };
    match (a, b) {
        (Effect::Barrier, Effect::Barrier) => Outcome::Equal,
        (
            Effect::Store {
                space: sa,
                ty: ta,
                addr: aa,
                value: va,
            },
            Effect::Store {
                space: sb,
                ty: tb,
                addr: ab,
                value: vb,
            },
        ) => {
            if sa != sb || ta != tb {
                return diff(
                    DiffKind::EffectKind { path, index },
                    format!("pre: st.{sa}.{ta}, post: st.{sb}.{tb}"),
                );
            }
            if aa != ab {
                let (na, nb) = narrow(arena, *aa, *ab);
                return diff(
                    DiffKind::StoreAddr { path, index },
                    format!(
                        "st.{sa} address pre: {}, post: {} (diverging at pre: {}, post: {})",
                        arena.render(*aa),
                        arena.render(*ab),
                        arena.render(na),
                        arena.render(nb)
                    ),
                );
            }
            if va != vb {
                let (na, nb) = narrow(arena, *va, *vb);
                return diff(
                    DiffKind::StoreValue { path, index },
                    format!(
                        "st.{sa}[{}] value diverging at pre: {}, post: {}",
                        arena.render(*aa),
                        arena.render(na),
                        arena.render(nb)
                    ),
                );
            }
            Outcome::Equal
        }
        _ => diff(
            DiffKind::EffectKind { path, index },
            "store vs barrier".into(),
        ),
    }
}
