//! Hash-consed symbolic expressions with canonicalizing constructors.
//!
//! Every expression lives in an [`Arena`]; structurally equal expressions
//! get the same [`ExprId`], so semantic comparison of two kernel summaries
//! reduces to integer equality. The smart constructors canonicalize as they
//! build, absorbing exactly the rewrites the optimizer is allowed to do:
//!
//! * constant folding through the shared [`ks_opt::eval`] semantics (the
//!   same functions the constfold pass calls, so folder and validator can
//!   never disagree about arithmetic);
//! * integer/pointer `add`/`sub`/`mul`-by-constant/`shl`-by-constant
//!   normalize into a linear-combination node [`Expr::Lin`] (Σ cᵢ·tᵢ + k,
//!   computed modulo 2³², or 2⁶⁴ for pointers), which identifies
//!   `x*8` ≡ `x<<3` and `(r+16)` ≡ address-folded `[r]+16`;
//! * unsigned division/remainder by powers of two normalize to the
//!   shift/mask form the strength-reduction pass produces;
//! * commutative *integer* operations order their operands by id.
//!
//! Floating-point expressions are folded only when fully constant and are
//! **never** reassociated or reordered: the passes preserve f32 evaluation
//! order exactly, and so does the canonical form.

use ks_ir::{BinOp, CmpOp, Space, SpecialReg, Ty, UnOp};
use ks_opt::eval;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Interned expression handle. Equal ids ⟺ structurally equal expressions
/// (within one arena).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprId(pub u32);

/// Interned name handle (parameter, shared/const declaration, texture).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

/// Bit width of an integer domain: every 32-bit type (s32/u32/pred) shares
/// `W32` — IR add/sub/mul are sign-agnostic at the bit level — and pointer
/// arithmetic is `W64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Width {
    W32,
    W64,
}

impl Width {
    pub fn of(ty: Ty) -> Width {
        match ty {
            Ty::Ptr(_) => Width::W64,
            _ => Width::W32,
        }
    }

    fn mask(self, v: u64) -> u64 {
        match self {
            Width::W32 => v & 0xFFFF_FFFF,
            Width::W64 => v,
        }
    }
}

/// A canonical symbolic expression node.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Integer/pointer constant, stored as canonical bits of its width.
    ConstI {
        w: Width,
        bits: u64,
    },
    /// f32 constant, keyed by bit pattern.
    ConstF(u32),
    /// The run-time value of a named kernel parameter.
    Param(Symbol),
    /// A thread/block special register left symbolic.
    Special(SpecialReg),
    /// Base address of a named shared/const declaration. Addresses into
    /// these windows are expressed relative to the declaration so RE and SK
    /// modules with different allocation sizes still align.
    Base(Space, Symbol),
    /// Base of the per-thread local-memory window.
    LocalBase,
    /// An unresolved memory read; `version` counts prior may-visible writes
    /// to the space, so reads separated by a potentially aliasing store (or
    /// a barrier, for shared/global) stay distinct.
    Load {
        space: Space,
        ty: Ty,
        addr: ExprId,
        version: u32,
    },
    /// A texture fetch, keyed by texture name.
    Tex {
        tex: Symbol,
        ty: Ty,
        idx: ExprId,
        version: u32,
    },
    /// A register whose definition was never executed on this path (should
    /// not occur in verifier-clean IR; kept so summarization is total).
    Undef(u32),
    Bin {
        op: BinOp,
        ty: Ty,
        a: ExprId,
        b: ExprId,
    },
    Un {
        op: UnOp,
        ty: Ty,
        a: ExprId,
    },
    Cmp {
        cmp: CmpOp,
        ty: Ty,
        a: ExprId,
        b: ExprId,
    },
    Sel {
        ty: Ty,
        pred: ExprId,
        a: ExprId,
        b: ExprId,
    },
    Cvt {
        dst: Ty,
        src: Ty,
        a: ExprId,
    },
    /// Canonical linear combination Σ coeffᵢ·termᵢ + k over one integer
    /// width; terms are sorted by id, coefficients nonzero.
    Lin {
        w: Width,
        terms: Box<[(ExprId, u64)]>,
        k: u64,
    },
}

/// Hash-consing arena.
#[derive(Default)]
pub struct Arena {
    exprs: Vec<Expr>,
    map: HashMap<Expr, ExprId>,
    names: Vec<String>,
    name_map: HashMap<String, Symbol>,
}

impl Arena {
    pub fn new() -> Arena {
        Arena::default()
    }

    pub fn get(&self, id: ExprId) -> &Expr {
        &self.exprs[id.0 as usize]
    }

    pub fn name(&self, s: Symbol) -> &str {
        &self.names[s.0 as usize]
    }

    pub fn symbol(&mut self, name: &str) -> Symbol {
        if let Some(&s) = self.name_map.get(name) {
            return s;
        }
        let s = Symbol(self.names.len() as u32);
        self.names.push(name.to_string());
        self.name_map.insert(name.to_string(), s);
        s
    }

    pub fn intern(&mut self, e: Expr) -> ExprId {
        if let Some(&id) = self.map.get(&e) {
            return id;
        }
        let id = ExprId(self.exprs.len() as u32);
        self.exprs.push(e.clone());
        self.map.insert(e, id);
        id
    }

    // ---- constants ------------------------------------------------------

    /// Integer constant of the given type, normalized to canonical bits.
    pub fn cint(&mut self, ty: Ty, v: i64) -> ExprId {
        let w = Width::of(ty);
        self.cint_w(w, v)
    }

    pub fn cint_w(&mut self, w: Width, v: i64) -> ExprId {
        let bits = w.mask(v as u64);
        self.intern(Expr::ConstI { w, bits })
    }

    pub fn cf32(&mut self, v: f32) -> ExprId {
        self.intern(Expr::ConstF(v.to_bits()))
    }

    /// If `id` is an integer constant, its bits.
    pub fn as_const(&self, id: ExprId) -> Option<u64> {
        match self.get(id) {
            Expr::ConstI { bits, .. } => Some(*bits),
            _ => None,
        }
    }

    pub fn as_const_f(&self, id: ExprId) -> Option<f32> {
        match self.get(id) {
            Expr::ConstF(b) => Some(f32::from_bits(*b)),
            _ => None,
        }
    }

    /// Signed interpretation of a constant under `ty`, matching what the
    /// concrete evaluator in ks-opt expects as input.
    fn signed(&self, ty: Ty, bits: u64) -> i64 {
        match ty {
            Ty::S32 => bits as u32 as i32 as i64,
            Ty::U32 | Ty::Pred => bits as u32 as i64,
            _ => bits as i64,
        }
    }

    // ---- leaves ---------------------------------------------------------

    pub fn param(&mut self, name: &str) -> ExprId {
        let s = self.symbol(name);
        self.intern(Expr::Param(s))
    }

    pub fn special(&mut self, reg: SpecialReg) -> ExprId {
        self.intern(Expr::Special(reg))
    }

    pub fn base(&mut self, space: Space, name: &str) -> ExprId {
        let s = self.symbol(name);
        self.intern(Expr::Base(space, s))
    }

    pub fn local_base(&mut self) -> ExprId {
        self.intern(Expr::LocalBase)
    }

    pub fn undef(&mut self, reg: u32) -> ExprId {
        self.intern(Expr::Undef(reg))
    }

    // ---- linear combinations --------------------------------------------

    /// Decompose an expression into linear parts for width `w`.
    fn lin_parts(&self, id: ExprId, w: Width) -> (Vec<(ExprId, u64)>, u64) {
        match self.get(id) {
            Expr::ConstI { w: cw, bits } if *cw == w => (vec![], *bits),
            Expr::Lin { w: lw, terms, k } if *lw == w => (terms.to_vec(), *k),
            _ => (vec![(id, 1)], 0),
        }
    }

    /// Build the canonical node for a linear combination.
    fn lin_build(&mut self, w: Width, mut terms: Vec<(ExprId, u64)>, k: u64) -> ExprId {
        terms.sort_by_key(|&(t, _)| t);
        let mut merged: Vec<(ExprId, u64)> = Vec::with_capacity(terms.len());
        for (t, c) in terms {
            let c = w.mask(c);
            if c == 0 {
                continue;
            }
            match merged.last_mut() {
                Some((lt, lc)) if *lt == t => {
                    *lc = w.mask(lc.wrapping_add(c));
                }
                _ => merged.push((t, c)),
            }
        }
        merged.retain(|&(_, c)| c != 0);
        let k = w.mask(k);
        if merged.is_empty() {
            return self.intern(Expr::ConstI { w, bits: k });
        }
        if merged.len() == 1 && merged[0].1 == 1 && k == 0 {
            return merged[0].0;
        }
        self.intern(Expr::Lin {
            w,
            terms: merged.into_boxed_slice(),
            k,
        })
    }

    /// Build a canonical linear combination directly (used by address
    /// normalization in the summarizer).
    pub(crate) fn lin_with(&mut self, w: Width, terms: Vec<(ExprId, u64)>, k: u64) -> ExprId {
        self.lin_build(w, terms, k)
    }

    fn lin_add2(&mut self, w: Width, a: ExprId, b: ExprId, negate_b: bool) -> ExprId {
        let (mut ta, ka) = self.lin_parts(a, w);
        let (tb, kb) = self.lin_parts(b, w);
        let kb = if negate_b { kb.wrapping_neg() } else { kb };
        for (t, c) in tb {
            ta.push((t, if negate_b { c.wrapping_neg() } else { c }));
        }
        self.lin_build(w, ta, ka.wrapping_add(kb))
    }

    fn lin_scale(&mut self, w: Width, a: ExprId, c: u64) -> ExprId {
        let (terms, k) = self.lin_parts(a, w);
        let terms = terms
            .into_iter()
            .map(|(t, tc)| (t, tc.wrapping_mul(c)))
            .collect();
        self.lin_build(w, terms, k.wrapping_mul(c))
    }

    /// Absorb a byte offset into an address expression (the `[base+imm]`
    /// form of `Address`), in the base register's own integer domain so the
    /// address-folding pass's rewrite is identity here.
    pub fn addr_offset(&mut self, base: ExprId, base_ty: Ty, offset: i64) -> ExprId {
        if offset == 0 {
            return base;
        }
        let w = Width::of(base_ty);
        let off = self.cint_w(w, offset);
        self.lin_add2(w, base, off, false)
    }

    // ---- operators ------------------------------------------------------

    pub fn bin(&mut self, op: BinOp, ty: Ty, a: ExprId, b: ExprId) -> ExprId {
        // Fully constant → fold through the shared pass semantics.
        if let (Some(ba), Some(bb)) = (self.as_const(a), self.as_const(b)) {
            let (sa, sb) = (self.signed(ty, ba), self.signed(ty, bb));
            if let Some(v) = eval::eval_bin(op, ty, sa, sb) {
                return self.cint(ty, v);
            }
        }
        if ty == Ty::F32 {
            if let (Some(fa), Some(fb)) = (self.as_const_f(a), self.as_const_f(b)) {
                if let Some(v) = eval::eval_bin_f(op, fa, fb) {
                    return self.cf32(v);
                }
            }
            // Mirror the identities HIR consteval declares as axioms
            // (`x±0.0 ≡ x`, `x*1.0 ≡ x`, `x/1.0 ≡ x`, incl. the -0.0 edge
            // it ignores), so RE and unrolled-SK accumulations align.
            let (fa, fb) = (self.as_const_f(a), self.as_const_f(b));
            match op {
                BinOp::Add => {
                    if fa == Some(0.0) {
                        return b;
                    }
                    if fb == Some(0.0) {
                        return a;
                    }
                }
                BinOp::Sub if fb == Some(0.0) => return a,
                BinOp::Mul => {
                    if fa == Some(1.0) {
                        return b;
                    }
                    if fb == Some(1.0) {
                        return a;
                    }
                }
                BinOp::Div if fb == Some(1.0) => return a,
                _ => {}
            }
            // Floats keep their textual operand order: no reassociation,
            // no commutative sorting.
            return self.intern(Expr::Bin { op, ty, a, b });
        }
        let w = Width::of(ty);
        match op {
            BinOp::Add => return self.lin_add2(w, a, b, false),
            BinOp::Sub => return self.lin_add2(w, a, b, true),
            BinOp::Mul if w == Width::W32 => {
                if let Some(c) = self.as_const(b) {
                    return self.lin_scale(w, a, c);
                }
                if let Some(c) = self.as_const(a) {
                    return self.lin_scale(w, b, c);
                }
            }
            BinOp::Shl if w == Width::W32 => {
                if let Some(c) = self.as_const(b) {
                    return self.lin_scale(w, a, 1u64 << (c & 31));
                }
            }
            // `x >> 0` and `x / 1` are identities both constfold (IR) and
            // consteval (HIR) apply; fold them so mixed-stage summaries
            // align.
            BinOp::Shr if self.as_const(b) == Some(0) => return a,
            BinOp::Div if self.as_const(b) == Some(1) => return a,
            // Unsigned power-of-two division/remainder take the canonical
            // shift/mask form the strength-reduction pass emits.
            BinOp::Div if ty == Ty::U32 => {
                if let Some(c) = self.as_const(b) {
                    if c != 0 && c & (c - 1) == 0 {
                        let k = self.cint(ty, c.trailing_zeros() as i64);
                        return self.bin(BinOp::Shr, ty, a, k);
                    }
                }
            }
            BinOp::Rem if ty == Ty::U32 => {
                if let Some(c) = self.as_const(b) {
                    if c != 0 && c & (c - 1) == 0 {
                        let m = self.cint(ty, (c - 1) as i64);
                        return self.bin(BinOp::And, ty, a, m);
                    }
                }
            }
            _ => {}
        }
        // Remaining commutative integer ops sort their operands.
        let (a, b) = match op {
            BinOp::Mul
            | BinOp::Mul24
            | BinOp::And
            | BinOp::Or
            | BinOp::Xor
            | BinOp::Min
            | BinOp::Max
                if a > b =>
            {
                (b, a)
            }
            _ => (a, b),
        };
        self.intern(Expr::Bin { op, ty, a, b })
    }

    pub fn un(&mut self, op: UnOp, ty: Ty, a: ExprId) -> ExprId {
        if ty == Ty::F32 {
            if let Some(fa) = self.as_const_f(a) {
                if let Some(v) = eval::eval_un_f(op, fa) {
                    return self.cf32(v);
                }
            }
            return self.intern(Expr::Un { op, ty, a });
        }
        if let Some(bits) = self.as_const(a) {
            let s = self.signed(ty, bits);
            if let Some(v) = eval::eval_un(op, ty, s) {
                return self.cint(ty, v);
            }
        }
        if op == UnOp::Neg && ty != Ty::Pred {
            let w = Width::of(ty);
            return self.lin_scale(w, a, u64::MAX); // ×(−1 mod 2ʷ)
        }
        self.intern(Expr::Un { op, ty, a })
    }

    pub fn cmp(&mut self, cmp: CmpOp, ty: Ty, a: ExprId, b: ExprId) -> ExprId {
        if ty == Ty::F32 {
            if let (Some(fa), Some(fb)) = (self.as_const_f(a), self.as_const_f(b)) {
                let r = eval::eval_cmp_f(cmp, fa, fb);
                return self.cint(Ty::U32, i64::from(r));
            }
            return self.intern(Expr::Cmp { cmp, ty, a, b });
        }
        if let (Some(ba), Some(bb)) = (self.as_const(a), self.as_const(b)) {
            let r = eval::eval_cmp(cmp, ty, ba as i64, bb as i64);
            return self.cint(Ty::U32, i64::from(r));
        }
        // Canonical operand order: commutative compares sort, ordered ones
        // swap together with their mirrored operator.
        let (cmp, a, b) = match cmp {
            CmpOp::Eq | CmpOp::Ne if a > b => (cmp, b, a),
            CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge if a > b => (cmp.swapped(), b, a),
            _ => (cmp, a, b),
        };
        self.intern(Expr::Cmp { cmp, ty, a, b })
    }

    pub fn sel(&mut self, ty: Ty, pred: ExprId, a: ExprId, b: ExprId) -> ExprId {
        if let Some(bits) = self.as_const(pred) {
            return if bits != 0 { a } else { b };
        }
        if a == b {
            return a;
        }
        self.intern(Expr::Sel { ty, pred, a, b })
    }

    pub fn cvt(&mut self, dst: Ty, src: Ty, a: ExprId) -> ExprId {
        if dst == src {
            return a;
        }
        // int↔int of the same width is a free bit reinterpretation (the
        // lowering emits no instruction for it either).
        if dst.is_integer() && src.is_integer() {
            return a;
        }
        if let Some(bits) = self.as_const(a) {
            let imm = ks_ir::Operand::ImmI(self.signed(src, bits));
            if let Some(v) = eval::cvt_imm(dst, src, imm) {
                match v {
                    ks_ir::Operand::ImmI(v) => return self.cint(dst, v),
                    ks_ir::Operand::ImmF(v) => return self.cf32(v),
                    ks_ir::Operand::Reg(_) => unreachable!(),
                }
            }
        }
        if let Some(f) = self.as_const_f(a) {
            let imm = ks_ir::Operand::ImmF(f);
            if let Some(v) = eval::cvt_imm(dst, src, imm) {
                match v {
                    ks_ir::Operand::ImmI(v) => return self.cint(dst, v),
                    ks_ir::Operand::ImmF(v) => return self.cf32(v),
                    ks_ir::Operand::Reg(_) => unreachable!(),
                }
            }
        }
        self.intern(Expr::Cvt { dst, src, a })
    }

    // ---- rendering ------------------------------------------------------

    /// Human-readable rendering (depth-capped) for diagnostics.
    pub fn render(&self, id: ExprId) -> String {
        let mut s = String::new();
        self.render_into(id, 8, &mut s);
        s
    }

    fn render_into(&self, id: ExprId, depth: u32, out: &mut String) {
        if depth == 0 {
            out.push('…');
            return;
        }
        match self.get(id) {
            Expr::ConstI { w, bits } => {
                let v = match w {
                    Width::W32 => *bits as u32 as i32 as i64,
                    Width::W64 => *bits as i64,
                };
                let _ = write!(out, "{v}");
            }
            Expr::ConstF(b) => {
                let _ = write!(out, "{:?}f", f32::from_bits(*b));
            }
            Expr::Param(s) => {
                let _ = write!(out, "%{}", self.name(*s));
            }
            Expr::Special(r) => {
                let _ = write!(out, "{r:?}");
            }
            Expr::Base(space, s) => {
                let _ = write!(out, "&{space}:{}", self.name(*s));
            }
            Expr::LocalBase => out.push_str("&local"),
            Expr::Undef(r) => {
                let _ = write!(out, "undef(%r{r})");
            }
            Expr::Load {
                space,
                addr,
                version,
                ..
            } => {
                let _ = write!(out, "{space}[");
                self.render_into(*addr, depth - 1, out);
                let _ = write!(out, "]@{version}");
            }
            Expr::Tex {
                tex, idx, version, ..
            } => {
                let _ = write!(out, "tex:{}(", self.name(*tex));
                self.render_into(*idx, depth - 1, out);
                let _ = write!(out, ")@{version}");
            }
            Expr::Bin { op, a, b, .. } => {
                let _ = write!(out, "({op:?} ");
                self.render_into(*a, depth - 1, out);
                out.push(' ');
                self.render_into(*b, depth - 1, out);
                out.push(')');
            }
            Expr::Un { op, a, .. } => {
                let _ = write!(out, "({op:?} ");
                self.render_into(*a, depth - 1, out);
                out.push(')');
            }
            Expr::Cmp { cmp, a, b, .. } => {
                let _ = write!(out, "({cmp:?} ");
                self.render_into(*a, depth - 1, out);
                out.push(' ');
                self.render_into(*b, depth - 1, out);
                out.push(')');
            }
            Expr::Sel { pred, a, b, .. } => {
                out.push_str("(sel ");
                self.render_into(*pred, depth - 1, out);
                out.push(' ');
                self.render_into(*a, depth - 1, out);
                out.push(' ');
                self.render_into(*b, depth - 1, out);
                out.push(')');
            }
            Expr::Cvt { dst, src, a } => {
                let _ = write!(out, "(cvt.{dst}.{src} ");
                self.render_into(*a, depth - 1, out);
                out.push(')');
            }
            Expr::Lin { w, terms, k } => {
                out.push('(');
                for (i, (t, c)) in terms.iter().enumerate() {
                    if i > 0 {
                        out.push_str(" + ");
                    }
                    let cv = match w {
                        Width::W32 => *c as u32 as i32 as i64,
                        Width::W64 => *c as i64,
                    };
                    if cv != 1 {
                        let _ = write!(out, "{cv}*");
                    }
                    self.render_into(*t, depth - 1, out);
                }
                let kv = match w {
                    Width::W32 => *k as u32 as i32 as i64,
                    Width::W64 => *k as i64,
                };
                if kv != 0 || terms.is_empty() {
                    let _ = write!(out, " + {kv}");
                }
                out.push(')');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_consing_dedupes() {
        let mut a = Arena::new();
        let x = a.param("x");
        let c1 = a.cint(Ty::S32, 5);
        let c2 = a.cint(Ty::U32, 5);
        assert_eq!(c1, c2, "s32 5 and u32 5 share canonical bits");
        let e1 = a.bin(BinOp::Add, Ty::S32, x, c1);
        let e2 = a.bin(BinOp::Add, Ty::S32, x, c2);
        assert_eq!(e1, e2);
    }

    #[test]
    fn mul_pow2_equals_shl() {
        let mut a = Arena::new();
        let x = a.param("x");
        let eight = a.cint(Ty::S32, 8);
        let three = a.cint(Ty::S32, 3);
        let mul = a.bin(BinOp::Mul, Ty::S32, x, eight);
        let shl = a.bin(BinOp::Shl, Ty::S32, x, three);
        assert_eq!(mul, shl, "strength reduction must be identity here");
    }

    #[test]
    fn udiv_pow2_equals_shr_and_rem_equals_and() {
        let mut a = Arena::new();
        let x = a.param("x");
        let c32 = a.cint(Ty::U32, 32);
        let five = a.cint(Ty::U32, 5);
        let div = a.bin(BinOp::Div, Ty::U32, x, c32);
        let shr = a.bin(BinOp::Shr, Ty::U32, x, five);
        assert_eq!(div, shr);
        let mask = a.cint(Ty::U32, 31);
        let rem = a.bin(BinOp::Rem, Ty::U32, x, c32);
        let and = a.bin(BinOp::And, Ty::U32, x, mask);
        assert_eq!(rem, and);
    }

    #[test]
    fn signed_div_stays_opaque() {
        let mut a = Arena::new();
        let x = a.param("x");
        let two = a.cint(Ty::S32, 2);
        let one = a.cint(Ty::S32, 1);
        let div = a.bin(BinOp::Div, Ty::S32, x, two);
        let shr = a.bin(BinOp::Shr, Ty::S32, x, one);
        assert_ne!(div, shr, "signed division must not strength-reduce");
    }

    #[test]
    fn add_assoc_comm_and_identity() {
        let mut a = Arena::new();
        let x = a.param("x");
        let y = a.param("y");
        let one = a.cint(Ty::S32, 1);
        let two = a.cint(Ty::S32, 2);
        // (x + 1) + (y + 2)  ==  (y + (x + 3))
        let l = a.bin(BinOp::Add, Ty::S32, x, one);
        let r = a.bin(BinOp::Add, Ty::S32, y, two);
        let lr = a.bin(BinOp::Add, Ty::S32, l, r);
        let three = a.cint(Ty::S32, 3);
        let x3 = a.bin(BinOp::Add, Ty::S32, x, three);
        let alt = a.bin(BinOp::Add, Ty::S32, y, x3);
        assert_eq!(lr, alt);
        // x + 0 == x ; x * 1 == x
        let zero = a.cint(Ty::S32, 0);
        assert_eq!(a.bin(BinOp::Add, Ty::S32, x, zero), x);
        assert_eq!(a.bin(BinOp::Mul, Ty::S32, x, one), x);
        // x - x == 0
        assert_eq!(a.bin(BinOp::Sub, Ty::S32, x, x), zero);
    }

    #[test]
    fn const_multiplier_distributes() {
        let mut a = Arena::new();
        let x = a.param("x");
        let four = a.cint(Ty::S32, 4);
        let one = a.cint(Ty::S32, 1);
        // (x + 1) * 4  ==  4x + 4  ==  (x*4) + 4
        let xp1 = a.bin(BinOp::Add, Ty::S32, x, one);
        let l = a.bin(BinOp::Mul, Ty::S32, xp1, four);
        let x4 = a.bin(BinOp::Mul, Ty::S32, x, four);
        let r = a.bin(BinOp::Add, Ty::S32, x4, four);
        assert_eq!(l, r);
    }

    #[test]
    fn floats_do_not_reassociate() {
        let mut a = Arena::new();
        let x = a.param("x");
        let y = a.param("y");
        let z = a.param("z");
        let xy = a.bin(BinOp::Add, Ty::F32, x, y);
        let l = a.bin(BinOp::Add, Ty::F32, xy, z);
        let yz = a.bin(BinOp::Add, Ty::F32, y, z);
        let r = a.bin(BinOp::Add, Ty::F32, x, yz);
        assert_ne!(l, r, "f32 addition must stay ordered");
    }

    #[test]
    fn const_folding_matches_pass_semantics() {
        let mut a = Arena::new();
        let m7 = a.cint(Ty::U32, -7);
        let two = a.cint(Ty::U32, 2);
        let div = a.bin(BinOp::Div, Ty::U32, m7, two);
        assert_eq!(a.as_const(div), Some(2147483644));
        // division by zero stays symbolic rather than folding
        let zero = a.cint(Ty::S32, 0);
        let one = a.cint(Ty::S32, 1);
        let dz = a.bin(BinOp::Div, Ty::S32, one, zero);
        assert!(a.as_const(dz).is_none());
    }

    #[test]
    fn cmp_canonicalizes_swapped_operands() {
        let mut a = Arena::new();
        let x = a.param("x");
        let y = a.param("y");
        let l = a.cmp(CmpOp::Lt, Ty::S32, x, y);
        let g = a.cmp(CmpOp::Gt, Ty::S32, y, x);
        assert_eq!(l, g);
    }

    #[test]
    fn addr_offset_absorbs_into_lin() {
        let mut a = Arena::new();
        let base = a.param("ptr");
        let sixteen = a.cint(Ty::Ptr(Space::Global), 16);
        // add r2, r1, 16 ; ld [r2]   ≡   ld [r1+16]
        let r2 = a.bin(BinOp::Add, Ty::Ptr(Space::Global), base, sixteen);
        let folded = a.addr_offset(base, Ty::Ptr(Space::Global), 16);
        assert_eq!(r2, folded);
    }
}
