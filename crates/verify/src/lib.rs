//! ks-verify: translation validation for the specialization pipeline.
//!
//! This crate checks two things the rest of the workspace can only assert
//! by testing:
//!
//! 1. **Pass-by-pass translation validation** — after each ks-opt pass and
//!    each ks-codegen HIR transform, the function must still mean the same
//!    thing. Both versions are evaluated symbolically into canonical
//!    value-graph summaries ([`summary::FnSummary`]) and compared
//!    ([`diff::compare`]); the first divergence comes back as a typed
//!    [`VerifyDiff`].
//! 2. **Specialization equivalence** — a kernel compiled with `-D`
//!    defines (SK) must match the runtime-evaluated kernel (RE) once the
//!    RE summary is evaluated *under those bindings*: defines that replace
//!    parameter reads become parameter bindings, defines that replace
//!    `blockDim.x` reads become `ntid` bindings ([`bindings`]).
//!
//! Both checkers share one hash-consed expression arena per comparison, so
//! summary equality is plain `ExprId` equality. Findings carry `KSV`
//! diagnostic codes in the same shape as ks-ir's `KSI` verifier errors and
//! the analyzer's `KSA` lints:
//!
//! * `KSV001` — an optimization/codegen stage changed observable behavior;
//! * `KSV002` — the specialized kernel diverges from the generic kernel
//!   under the given defines;
//! * `KSV003` — module shapes differ (function missing after a stage);
//! * `KSV101` — *warning*: budgets stopped evaluation before a verdict
//!   (inconclusive, not a miscompile).

pub mod bindings;
pub mod diff;
pub mod expr;
pub mod mutate;
pub mod pipeline;
pub mod summary;

pub use bindings::{derive_bindings, Binding, DerivedBindings};
pub use diff::{DiffKind, Outcome, VerifyDiff};
pub use expr::Arena;
pub use pipeline::{build_optimized, validate_pipeline};
pub use summary::{Env, FnSummary, Limits, Summarizer, Val};

use ks_ir::{Function, Module};
use std::fmt;

/// One verification finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Diagnostic code: `KSV001`/`KSV002`/`KSV003` (errors), `KSV101`
    /// (warning).
    pub code: &'static str,
    /// What was being checked ("pass constfold", "spec RB=4,THREADS=64").
    pub context: String,
    /// Environment label the divergence was observed under.
    pub env: String,
    pub function: String,
    pub message: String,
}

impl Finding {
    /// Errors deny compilation; warnings are informational.
    pub fn is_error(&self) -> bool {
        self.code.starts_with("KSV0")
    }

    /// Single-line JSON export (JSONL-friendly, mirrors ks-ir's
    /// `VerifyError::to_json`).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.chars()
                .flat_map(|c| match c {
                    '"' => "\\\"".chars().collect::<Vec<_>>(),
                    '\\' => "\\\\".chars().collect(),
                    '\n' => "\\n".chars().collect(),
                    c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
                    c => vec![c],
                })
                .collect()
        }
        format!(
            "{{\"code\":\"{}\",\"severity\":\"{}\",\"context\":\"{}\",\"env\":\"{}\",\"function\":\"{}\",\"message\":\"{}\"}}",
            self.code,
            if self.is_error() { "error" } else { "warning" },
            esc(&self.context),
            esc(&self.env),
            esc(&self.function),
            esc(&self.message)
        )
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {}: {} [{}]: {}",
            if self.is_error() { "error" } else { "warning" },
            self.code,
            self.context,
            self.function,
            self.env,
            self.message
        )
    }
}

/// Aggregate result of a verification run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VerifyReport {
    /// Number of (function × env) comparisons performed.
    pub checks: usize,
    pub findings: Vec<Finding>,
}

impl VerifyReport {
    pub fn error_count(&self) -> usize {
        self.findings.iter().filter(|f| f.is_error()).count()
    }

    pub fn warning_count(&self) -> usize {
        self.findings.len() - self.error_count()
    }

    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    pub fn merge(&mut self, other: VerifyReport) {
        self.checks += other.checks;
        self.findings.extend(other.findings);
    }
}

/// Default environment set for pass-by-pass translation validation: one
/// fully symbolic evaluation plus two concrete thread samples (which drive
/// concrete loop bounds through guards the symbolic run truncates).
pub fn default_envs() -> Vec<Env> {
    vec![
        Env::symbolic(),
        Env::sample([0, 0, 0], [0, 0, 0]),
        Env::sample([3, 1, 0], [2, 1, 0]),
    ]
}

/// Environment set for specialization checks. Thread samples are clamped
/// to the block shape the defines fix, so samples stay in-range.
pub fn spec_envs(ntid: [Option<i64>; 3]) -> Vec<Env> {
    let clamp = |v: i64, axis: usize| match ntid[axis] {
        Some(n) if n > 0 => v.min(n - 1),
        _ => v,
    };
    let mut envs = vec![Env::symbolic()];
    for (tid, ctaid) in [
        ([0, 0, 0], [0, 0, 0]),
        ([1, 0, 0], [0, 0, 0]),
        ([clamp(13, 0), clamp(3, 1), 0], [2, 1, 0]),
    ] {
        let t = [clamp(tid[0], 0), clamp(tid[1], 1), clamp(tid[2], 2)];
        let e = Env::sample(t, ctaid);
        if !envs.contains(&e) {
            envs.push(e);
        }
    }
    envs
}

/// Compare one function before/after a transform under `envs`. Every
/// comparison builds both summaries in a fresh shared arena.
pub fn check_function_pair(
    pre_f: &Function,
    pre_m: &Module,
    post_f: &Function,
    post_m: &Module,
    envs: &[Env],
    limits: Limits,
    context: &str,
) -> VerifyReport {
    let mut report = VerifyReport::default();
    for env in envs {
        report.checks += 1;
        let mut arena = Arena::new();
        let mut s = Summarizer::new(&mut arena, limits);
        let pre = s.summarize(pre_f, pre_m, env);
        let post = s.summarize(post_f, post_m, env);
        match diff::compare(&arena, &pre, &post) {
            Outcome::Equal => {}
            Outcome::Inconclusive(msg) => report.findings.push(Finding {
                code: "KSV101",
                context: context.to_string(),
                env: env.label.clone(),
                function: pre_f.name.clone(),
                message: msg,
            }),
            Outcome::Diff(d) => {
                report.findings.push(Finding {
                    code: "KSV001",
                    context: context.to_string(),
                    env: env.label.clone(),
                    function: pre_f.name.clone(),
                    message: format!("{:?}: {}", d.kind, d.detail),
                });
                // One diff per (function, env) is enough: later envs often
                // repeat the same first divergence.
            }
        }
    }
    report
}

/// Compare whole modules before/after a transform.
pub fn check_modules(
    pre: &Module,
    post: &Module,
    envs: &[Env],
    limits: Limits,
    context: &str,
) -> VerifyReport {
    let mut report = VerifyReport::default();
    for pf in &pre.functions {
        match post.functions.iter().find(|f| f.name == pf.name) {
            Some(qf) => {
                report.merge(check_function_pair(
                    pf, pre, qf, post, envs, limits, context,
                ));
            }
            None => report.findings.push(Finding {
                code: "KSV003",
                context: context.to_string(),
                env: String::new(),
                function: pf.name.clone(),
                message: "function missing after transform".into(),
            }),
        }
    }
    report
}

/// Check RE→SK specialization equivalence: the SK module (compiled with
/// `defines`) must match the RE module evaluated under the bindings those
/// defines imply (derived from `source`'s `#ifndef` fallback idiom).
pub fn check_specialization(
    re: &Module,
    sk: &Module,
    source: &str,
    defines: &[(String, String)],
    limits: Limits,
) -> VerifyReport {
    let derived = derive_bindings(source, defines);
    let label: Vec<String> = defines
        .iter()
        .map(|(k, v)| {
            if v.is_empty() {
                k.clone()
            } else {
                format!("{k}={v}")
            }
        })
        .collect();
    let context = format!("spec {}", label.join(","));
    let mut report = VerifyReport::default();
    for sf in &sk.functions {
        let Some(rf) = re.functions.iter().find(|f| f.name == sf.name) else {
            report.findings.push(Finding {
                code: "KSV003",
                context: context.clone(),
                env: String::new(),
                function: sf.name.clone(),
                message: "specialized function has no generic counterpart".into(),
            });
            continue;
        };
        for env in spec_envs(derived.ntid) {
            report.checks += 1;
            // Both sides get the derived bindings: the RE side needs them
            // to collapse parameter/blockDim reads; on the SK side the
            // bound names are already constants, so they are inert (and
            // correct for partially specialized kernels).
            let mut bound = env.clone();
            derived.apply(&mut bound);
            let mut arena = Arena::new();
            let mut s = Summarizer::new(&mut arena, limits);
            let re_sum = s.summarize(rf, re, &bound);
            let sk_sum = s.summarize(sf, sk, &bound);
            match diff::compare(&arena, &re_sum, &sk_sum) {
                Outcome::Equal => {}
                Outcome::Inconclusive(msg) => report.findings.push(Finding {
                    code: "KSV101",
                    context: context.clone(),
                    env: bound.label.clone(),
                    function: sf.name.clone(),
                    message: msg,
                }),
                Outcome::Diff(d) => report.findings.push(Finding {
                    code: "KSV002",
                    context: context.clone(),
                    env: bound.label.clone(),
                    function: sf.name.clone(),
                    message: format!("{:?}: {}", d.kind, d.detail),
                }),
            }
        }
    }
    report
}
