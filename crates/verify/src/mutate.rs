//! Seeded IR mutations for the mutation-testing harness: each mutation is
//! a small, deliberately *wrong* rewrite of the kind a buggy optimization
//! pass could make. ks-verify must flag every one of them.

use ks_ir::{BinOp, Function, Inst, Operand, Space, Terminator};

/// The kinds of miscompiles we inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationKind {
    /// Delete an observable (global/shared) store — a DCE bug.
    DropStore,
    /// Shift a load/store address by one element — an address-folding bug.
    AddrOffByFour,
    /// Swap the operands of a non-commutative binary op.
    SwapOperands,
    /// Turn `x * 2ᵏ` into the wrong shift amount — a strength-reduction bug.
    WrongShift,
    /// Invert a conditional branch — a branch-simplification bug.
    NegateBranch,
}

/// One applicable mutation site.
#[derive(Debug, Clone)]
pub struct Mutation {
    pub kind: MutationKind,
    pub block: usize,
    pub inst: usize,
    pub desc: String,
}

/// Enumerate every applicable mutation site in `f`, deterministically.
pub fn enumerate(f: &Function) -> Vec<Mutation> {
    let mut out = Vec::new();
    for (bi, b) in f.blocks.iter().enumerate() {
        for (ii, i) in b.insts.iter().enumerate() {
            match i {
                Inst::St { space, .. } if matches!(space, Space::Global | Space::Shared) => {
                    out.push(Mutation {
                        kind: MutationKind::DropStore,
                        block: bi,
                        inst: ii,
                        desc: format!("drop st.{space} at BB{bi}#{ii}"),
                    });
                    out.push(Mutation {
                        kind: MutationKind::AddrOffByFour,
                        block: bi,
                        inst: ii,
                        desc: format!("offset st.{space} address by 4 at BB{bi}#{ii}"),
                    });
                }
                Inst::Bin { op, a, b: rhs, .. }
                    if matches!(
                        op,
                        BinOp::Sub | BinOp::Div | BinOp::Rem | BinOp::Shl | BinOp::Shr
                    ) && a != rhs =>
                {
                    out.push(Mutation {
                        kind: MutationKind::SwapOperands,
                        block: bi,
                        inst: ii,
                        desc: format!("swap {op:?} operands at BB{bi}#{ii}"),
                    });
                }
                Inst::Bin {
                    op: BinOp::Shl,
                    b: Operand::ImmI(k),
                    ..
                } if *k > 0 => {
                    out.push(Mutation {
                        kind: MutationKind::WrongShift,
                        block: bi,
                        inst: ii,
                        desc: format!("shrink shl amount at BB{bi}#{ii}"),
                    });
                }
                _ => {}
            }
        }
        if matches!(b.term, Terminator::CondBr { .. }) {
            out.push(Mutation {
                kind: MutationKind::NegateBranch,
                block: bi,
                inst: usize::MAX,
                desc: format!("negate branch of BB{bi}"),
            });
        }
    }
    out
}

/// Pick a deterministic pseudo-random subset of `n` sites using a seeded
/// splitmix64 walk (no external RNG dependency).
pub fn sample(sites: &[Mutation], seed: u64, n: usize) -> Vec<Mutation> {
    let mut order: Vec<usize> = (0..sites.len()).collect();
    let mut s = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    for i in (1..order.len()).rev() {
        s = splitmix(s);
        order.swap(i, (s % (i as u64 + 1)) as usize);
    }
    order
        .into_iter()
        .take(n)
        .map(|i| sites[i].clone())
        .collect()
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Apply a mutation; returns `false` if the site no longer matches.
pub fn apply(f: &mut Function, m: &Mutation) -> bool {
    if m.kind == MutationKind::NegateBranch {
        let Some(b) = f.blocks.get_mut(m.block) else {
            return false;
        };
        if let Terminator::CondBr { negate, .. } = &mut b.term {
            *negate = !*negate;
            return true;
        }
        return false;
    }
    let Some(inst) = f
        .blocks
        .get_mut(m.block)
        .and_then(|b| b.insts.get_mut(m.inst))
    else {
        return false;
    };
    match m.kind {
        MutationKind::DropStore => {
            if matches!(inst, Inst::St { .. }) {
                f.blocks[m.block].insts.remove(m.inst);
                return true;
            }
            false
        }
        MutationKind::AddrOffByFour => {
            if let Inst::St { addr, .. } | Inst::Ld { addr, .. } = inst {
                addr.offset += 4;
                return true;
            }
            false
        }
        MutationKind::SwapOperands => {
            if let Inst::Bin { a, b, .. } = inst {
                std::mem::swap(a, b);
                return true;
            }
            false
        }
        MutationKind::WrongShift => {
            if let Inst::Bin {
                op: BinOp::Shl,
                b: Operand::ImmI(k),
                ..
            } = inst
            {
                if *k > 0 {
                    *k -= 1;
                    return true;
                }
            }
            false
        }
        MutationKind::NegateBranch => unreachable!(),
    }
}
