//! Whole-pipeline translation validation: drive the real frontend,
//! codegen, and optimizer for one source+define set and check every
//! transform along the way. This is the engine behind the `ks-verify`
//! CLI and the ci.sh verification tier; the ks-core `Compiler` performs
//! the same checks inline when built `with_validation`.

use crate::{check_function_pair, check_modules, default_envs, Limits, VerifyReport};
use ks_ir::Module;
use ks_opt::OptConfig;

/// Validate every HIR codegen stage and every IR optimization pass for
/// one compilation of `source` under `defines`. Returns the merged
/// report, or the frontend/codegen error message if the program does not
/// compile at all.
pub fn validate_pipeline(
    source: &str,
    defines: &[(String, String)],
    limits: Limits,
) -> Result<VerifyReport, String> {
    let envs = default_envs();
    let mut report = VerifyReport::default();

    // HIR stages: compare consecutive lowered snapshots.
    let prog = ks_lang::frontend(source, defines).map_err(|e| e.to_string())?;
    let mut prev: Option<Module> = None;
    let mut stage_reports = Vec::new();
    let module = ks_codegen::compile_observed(
        &prog,
        &ks_codegen::CodegenOptions::default(),
        &mut |stage, m| {
            if let Some(p) = &prev {
                stage_reports.push(check_modules(
                    p,
                    m,
                    &envs,
                    limits,
                    &format!("codegen.{stage}"),
                ));
            }
            prev = Some(m.clone());
        },
    )
    .map_err(|e| e.to_string())?;
    for r in stage_reports {
        report.merge(r);
    }

    // IR passes: observe each pass on each function. Summarization needs
    // the module only for const/texture naming, so a functions-less clone
    // serves as context while we mutate the real functions.
    let mut opt = module;
    let ctx = Module {
        functions: vec![],
        consts: opt.consts.clone(),
        textures: opt.textures.clone(),
    };
    for f in &mut opt.functions {
        let mut pass_reports = Vec::new();
        let mut prev_fn = f.clone();
        ks_opt::optimize_with_observer(f, &OptConfig::default(), &mut |pass, cur| {
            pass_reports.push(check_function_pair(
                &prev_fn,
                &ctx,
                cur,
                &ctx,
                &envs,
                limits,
                &format!("opt.{pass}"),
            ));
            prev_fn = cur.clone();
        });
        for r in pass_reports {
            report.merge(r);
        }
    }
    Ok(report)
}

/// Build the fully optimized module for `source` under `defines` — the
/// input the mutation harness and specialization checks start from.
pub fn build_optimized(source: &str, defines: &[(String, String)]) -> Result<Module, String> {
    let prog = ks_lang::frontend(source, defines).map_err(|e| e.to_string())?;
    let mut m = ks_codegen::compile(&prog, &ks_codegen::CodegenOptions::default())
        .map_err(|e| e.to_string())?;
    ks_opt::optimize_module(&mut m);
    Ok(m)
}
