//! Symbolic evaluation of an IR function into a canonical value-graph
//! summary: for each explored control path, the ordered trace of observable
//! memory effects (global/shared stores and barriers) with canonical
//! symbolic addresses and values, plus the path's branch conditions.
//!
//! The evaluator walks the CFG like the simulator walks instructions, but
//! over [`crate::expr`] expressions instead of concrete words:
//!
//! * kernel parameters evaluate to named symbols (or to constants when an
//!   [`Env`] binds them — that is how RE-vs-SK equivalence evaluates the
//!   generic kernel "under the defines");
//! * thread/block specials are symbolic by default, or concrete samples;
//! * branches on *concrete* predicates are followed without forking (this
//!   mirrors constfold's CondBr→Br simplification), branches on symbolic
//!   predicates fork both ways with a bounded per-site depth — the
//!   "bounded unroll" summary of run-time loops;
//! * loads first try store-to-load forwarding within the current barrier
//!   epoch (matching the CSE pass's invalidation model), then fall back to
//!   an opaque versioned `Load` node;
//! * shared/const addresses are re-expressed relative to the declaration
//!   they fall into, so RE and SK modules whose allocations differ in size
//!   (`THREADS_ALLOC 512` vs `THREADS`) still produce aligned addresses.

use crate::expr::{Arena, ExprId};
use ks_ir::{
    Address, BasicBlock, BlockId, Function, Inst, Module, Operand, Space, SpecialReg, Terminator,
    Ty, VReg,
};
use std::collections::HashMap;

/// Evaluation budgets. The defaults comfortably cover the shipped app
/// kernels; raising them trades time for deeper loop summaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Maximum number of control paths explored per function/env.
    pub max_paths: usize,
    /// Maximum executed instructions per path (guards concrete loops).
    pub max_steps: usize,
    /// Maximum forks taken at one branch site along a single path — the
    /// bounded unroll depth for run-time-bound loops.
    pub max_forks_per_site: u32,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_paths: 64,
            max_steps: 400_000,
            max_forks_per_site: 2,
        }
    }
}

/// A bound value for a kernel parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Val {
    I(i64),
    F(f32),
}

/// Evaluation environment: optional concrete bindings for named params and
/// special registers. Anything unbound stays symbolic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Env {
    pub params: Vec<(String, Val)>,
    pub specials: Vec<(SpecialReg, i64)>,
    /// Human-readable label used in diagnostics ("tid=(0,0,0) ctaid=(0,0,0)").
    pub label: String,
}

impl Env {
    /// Fully symbolic environment.
    pub fn symbolic() -> Env {
        Env {
            label: "symbolic".into(),
            ..Env::default()
        }
    }

    /// Concrete thread/block sample with everything else symbolic.
    pub fn sample(tid: [i64; 3], ctaid: [i64; 3]) -> Env {
        Env {
            params: vec![],
            specials: vec![
                (SpecialReg::TidX, tid[0]),
                (SpecialReg::TidY, tid[1]),
                (SpecialReg::TidZ, tid[2]),
                (SpecialReg::CtaIdX, ctaid[0]),
                (SpecialReg::CtaIdY, ctaid[1]),
                (SpecialReg::CtaIdZ, ctaid[2]),
            ],
            label: format!(
                "tid=({},{},{}) ctaid=({},{},{})",
                tid[0], tid[1], tid[2], ctaid[0], ctaid[1], ctaid[2]
            ),
        }
    }

    pub fn bind_param(&mut self, name: &str, v: Val) {
        self.params.retain(|(n, _)| n != name);
        self.params.push((name.to_string(), v));
    }

    pub fn bind_special(&mut self, r: SpecialReg, v: i64) {
        self.specials.retain(|(s, _)| *s != r);
        self.specials.push((r, v));
    }

    fn special(&self, r: SpecialReg) -> Option<i64> {
        self.specials.iter().find(|(s, _)| *s == r).map(|(_, v)| *v)
    }

    fn param(&self, name: &str) -> Option<Val> {
        self.params.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }
}

/// One observable effect along a path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effect {
    Store {
        space: Space,
        ty: Ty,
        addr: ExprId,
        value: ExprId,
    },
    Barrier,
}

/// How a path ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathEnd {
    /// Reached `ret`.
    Ret,
    /// Fork depth exhausted after `forks` symbolic branches: the remainder
    /// of this run-time loop is summarized by its explored prefix. (Keyed
    /// by fork count, not block id, so summaries stay CFG-shape
    /// independent.)
    Truncated { forks: u32 },
    /// Step budget exhausted — the summary is inconclusive on this path.
    StepBudget,
}

/// One explored control path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathSummary {
    /// Symbolic branch conditions taken, in order: (predicate expression,
    /// whether the taken edge requires it nonzero).
    pub conds: Vec<(ExprId, bool)>,
    pub effects: Vec<Effect>,
    pub end: PathEnd,
}

/// Canonical summary of one function under one environment.
#[derive(Debug, Clone, PartialEq)]
pub struct FnSummary {
    pub function: String,
    pub paths: Vec<PathSummary>,
    /// False when `max_paths` stopped exploration early (still comparable:
    /// exploration order is deterministic).
    pub complete: bool,
}

impl FnSummary {
    /// True if any path ran out of step budget.
    pub fn inconclusive(&self) -> bool {
        self.paths.iter().any(|p| p.end == PathEnd::StepBudget) || !self.complete
    }
}

#[derive(Clone)]
struct StoreRec {
    addr: ExprId,
    ty: Ty,
    value: ExprId,
    epoch: u32,
}

#[derive(Clone, Default)]
struct SpaceState {
    stores: Vec<StoreRec>,
    /// Version counter: bumped on each store and (for shared/global) each
    /// barrier. Identifies "the memory state this load observed".
    events: u32,
    epoch: u32,
}

#[derive(Clone)]
struct PathState {
    regs: HashMap<VReg, ExprId>,
    global: SpaceState,
    shared: SpaceState,
    local: SpaceState,
    conds: Vec<(ExprId, bool)>,
    effects: Vec<Effect>,
    forks_at: HashMap<BlockId, u32>,
    steps: usize,
    block: BlockId,
    inst: usize,
}

/// Summarizes functions of one module into a shared [`Arena`].
pub struct Summarizer<'a> {
    pub arena: &'a mut Arena,
    limits: Limits,
}

impl<'a> Summarizer<'a> {
    pub fn new(arena: &'a mut Arena, limits: Limits) -> Self {
        Summarizer { arena, limits }
    }

    /// Summarize `f` (from module `m`, for shared/const/texture naming)
    /// under `env`.
    pub fn summarize(&mut self, f: &Function, m: &Module, env: &Env) -> FnSummary {
        let mut paths = Vec::new();
        let mut complete = true;
        let mut stack = vec![PathState {
            regs: HashMap::new(),
            global: SpaceState::default(),
            shared: SpaceState::default(),
            local: SpaceState::default(),
            conds: vec![],
            effects: vec![],
            forks_at: HashMap::new(),
            steps: 0,
            block: BlockId(0),
            inst: 0,
        }];
        while let Some(state) = stack.pop() {
            if paths.len() >= self.limits.max_paths {
                complete = false;
                break;
            }
            let path = self.run_path(state, f, m, env, &mut stack);
            paths.push(path);
        }
        FnSummary {
            function: f.name.clone(),
            paths,
            complete,
        }
    }

    /// Execute one path to completion, pushing forked continuations onto
    /// `stack` (else-edge pushed, then-edge explored first: deterministic
    /// DFS order on both sides of every comparison).
    fn run_path(
        &mut self,
        mut st: PathState,
        f: &Function,
        m: &Module,
        env: &Env,
        stack: &mut Vec<PathState>,
    ) -> PathSummary {
        loop {
            let Some(block) = f.blocks.get(st.block.0 as usize) else {
                // Verifier-invalid CFG; end the path.
                return finish(st, PathEnd::Ret);
            };
            if let Some(end) = self.run_block(&mut st, block, f, m, env) {
                return finish(st, end);
            }
            match block.term {
                Terminator::Ret => return finish(st, PathEnd::Ret),
                Terminator::Br { target } => {
                    st.block = target;
                    st.inst = 0;
                }
                Terminator::CondBr {
                    pred,
                    negate,
                    then_t,
                    else_t,
                } => {
                    let p = self.reg(&mut st, pred);
                    if let Some(bits) = self.arena.as_const(p) {
                        let taken = (bits != 0) ^ negate;
                        st.block = if taken { then_t } else { else_t };
                        st.inst = 0;
                    } else {
                        let site = st.block;
                        let depth = st.forks_at.entry(site).or_insert(0);
                        if *depth >= self.limits.max_forks_per_site {
                            let forks = st.conds.len() as u32;
                            return finish(st, PathEnd::Truncated { forks });
                        }
                        *depth += 1;
                        // Fork: queue the else edge, continue on then.
                        let mut other = st.clone();
                        other.conds.push((p, negate));
                        other.block = else_t;
                        other.inst = 0;
                        stack.push(other);
                        st.conds.push((p, !negate));
                        st.block = then_t;
                        st.inst = 0;
                    }
                }
            }
        }
    }

    /// Run the instructions of `block`; `Some(end)` if the path terminated
    /// inside the block (budget).
    fn run_block(
        &mut self,
        st: &mut PathState,
        block: &BasicBlock,
        f: &Function,
        m: &Module,
        env: &Env,
    ) -> Option<PathEnd> {
        // st.inst is nonzero only when resuming a forked state mid-block
        // (never happens today: forks occur at terminators) — kept for
        // clarity.
        for i in &block.insts[st.inst..] {
            st.steps += 1;
            if st.steps > self.limits.max_steps {
                return Some(PathEnd::StepBudget);
            }
            self.step(st, i, f, m, env);
        }
        st.inst = 0;
        None
    }

    fn reg(&mut self, st: &mut PathState, r: VReg) -> ExprId {
        match st.regs.get(&r) {
            Some(&e) => e,
            None => self.arena.undef(r.0),
        }
    }

    fn operand(&mut self, st: &mut PathState, o: &Operand, ty: Ty) -> ExprId {
        match o {
            Operand::Reg(r) => self.reg(st, *r),
            Operand::ImmI(v) => self.arena.cint(ty, *v),
            Operand::ImmF(v) => self.arena.cf32(*v),
        }
    }

    fn step(&mut self, st: &mut PathState, i: &Inst, f: &Function, m: &Module, env: &Env) {
        match i {
            Inst::Mov { ty, dst, src } => {
                let v = self.operand(st, src, *ty);
                self.define(st, *dst, v);
            }
            Inst::Bin { op, ty, dst, a, b } => {
                let ea = self.operand(st, a, *ty);
                let eb = self.operand(st, b, *ty);
                let v = self.arena.bin(*op, *ty, ea, eb);
                self.define(st, *dst, v);
            }
            Inst::Un { op, ty, dst, a } => {
                let ea = self.operand(st, a, *ty);
                let v = self.arena.un(*op, *ty, ea);
                self.define(st, *dst, v);
            }
            Inst::Mad { ty, dst, a, b, c } => {
                let ea = self.operand(st, a, *ty);
                let eb = self.operand(st, b, *ty);
                let ec = self.operand(st, c, *ty);
                let mul = self.arena.bin(ks_ir::BinOp::Mul, *ty, ea, eb);
                let v = self.arena.bin(ks_ir::BinOp::Add, *ty, mul, ec);
                self.define(st, *dst, v);
            }
            Inst::Setp { cmp, ty, dst, a, b } => {
                let ea = self.operand(st, a, *ty);
                let eb = self.operand(st, b, *ty);
                let v = self.arena.cmp(*cmp, *ty, ea, eb);
                self.define(st, *dst, v);
            }
            Inst::Selp {
                ty,
                dst,
                a,
                b,
                pred,
            } => {
                let ea = self.operand(st, a, *ty);
                let eb = self.operand(st, b, *ty);
                let p = self.reg(st, *pred);
                let v = self.arena.sel(*ty, p, ea, eb);
                self.define(st, *dst, v);
            }
            Inst::Cvt {
                dst_ty,
                src_ty,
                dst,
                src,
            } => {
                let e = self.operand(st, src, *src_ty);
                let v = self.arena.cvt(*dst_ty, *src_ty, e);
                self.define(st, *dst, v);
            }
            Inst::Special { dst, reg } => {
                let v = match env.special(*reg) {
                    Some(c) => self.arena.cint(Ty::U32, c),
                    None => self.arena.special(*reg),
                };
                self.define(st, *dst, v);
            }
            Inst::Ld {
                space,
                ty,
                dst,
                addr,
            } => {
                let v = self.load(st, *space, *ty, addr, f, m, env);
                self.define(st, *dst, v);
            }
            Inst::St {
                space,
                ty,
                addr,
                src,
            } => {
                let a = self.resolve_addr(st, addr, *space, f, m);
                let v = self.operand(st, src, *ty);
                if let Some(ss) = space_state(st, *space) {
                    ss.events += 1;
                    let epoch = ss.epoch;
                    ss.stores.push(StoreRec {
                        addr: a,
                        ty: *ty,
                        value: v,
                        epoch,
                    });
                }
                if matches!(space, Space::Global | Space::Shared) {
                    st.effects.push(Effect::Store {
                        space: *space,
                        ty: *ty,
                        addr: a,
                        value: v,
                    });
                }
            }
            Inst::Bar => {
                // A barrier publishes other threads' shared and global
                // writes: close the forwarding epoch (local memory is
                // private and unaffected).
                for space in [Space::Global, Space::Shared] {
                    if let Some(ss) = space_state(st, space) {
                        ss.events += 1;
                        ss.epoch += 1;
                    }
                }
                st.effects.push(Effect::Barrier);
            }
            Inst::Tex { ty, dst, tex, idx } => {
                let e = self.operand(st, idx, Ty::S32);
                let name = m
                    .textures
                    .get(*tex as usize)
                    .map(String::as_str)
                    .unwrap_or("<tex>");
                let sym = self.arena.symbol(name);
                // Texture fetches read global memory coherently in the
                // simulator: version them with the global event counter.
                let version = st.global.events;
                let v = self.arena.intern(crate::expr::Expr::Tex {
                    tex: sym,
                    ty: *ty,
                    idx: e,
                    version,
                });
                self.define(st, *dst, v);
            }
        }
    }

    fn define(&mut self, st: &mut PathState, dst: VReg, v: ExprId) {
        st.regs.insert(dst, v);
    }

    /// Resolve an address operand to a normalized expression.
    fn resolve_addr(
        &mut self,
        st: &mut PathState,
        addr: &Address,
        space: Space,
        f: &Function,
        m: &Module,
    ) -> ExprId {
        let raw = match addr.base {
            Some(base) => {
                let base_ty = f
                    .vreg_types
                    .get(base.0 as usize)
                    .copied()
                    .unwrap_or(Ty::Ptr(space));
                let b = self.reg(st, base);
                self.arena.addr_offset(b, base_ty, addr.offset)
            }
            None => self.arena.cint(Ty::Ptr(space), addr.offset),
        };
        self.normalize_space_addr(raw, space, f, m)
    }

    /// Rebase shared/const/local addresses onto their declarations so RE
    /// and SK layouts align.
    fn normalize_space_addr(
        &mut self,
        raw: ExprId,
        space: Space,
        f: &Function,
        m: &Module,
    ) -> ExprId {
        use crate::expr::{Expr, Width};
        // Extract the constant displacement of the expression (Lin konst /
        // plain const), leaving the symbolic remainder untouched.
        type Rebuild = Option<(Width, Vec<(ExprId, u64)>)>;
        let (disp, rebuild): (i64, Rebuild) = match self.arena.get(raw) {
            Expr::ConstI { w, bits } => {
                let v = match w {
                    Width::W32 => *bits as u32 as i64,
                    Width::W64 => *bits as i64,
                };
                (v, Some((*w, vec![])))
            }
            Expr::Lin { w, terms, k } => {
                let v = match w {
                    Width::W32 => *k as u32 as i64,
                    Width::W64 => *k as i64,
                };
                (v, Some((*w, terms.to_vec())))
            }
            _ => (0, None),
        };
        let decl: Option<(&str, i64)> = match space {
            Space::Shared => f
                .shared
                .iter()
                .find(|d| disp >= d.offset as i64 && disp < (d.offset + d.size_bytes) as i64)
                .map(|d| (d.name.as_str(), d.offset as i64)),
            Space::Const => m
                .consts
                .iter()
                .find(|d| disp >= d.offset as i64 && disp < (d.offset + d.size_bytes) as i64)
                .map(|d| (d.name.as_str(), d.offset as i64)),
            _ => None,
        };
        match (decl, rebuild) {
            (Some((name, base_off)), Some((_, mut terms))) => {
                let base = self.arena.base(space, name);
                terms.push((base, 1));
                // The rebased form is always a 32-bit linear combination
                // (shared/const windows are small), so RE and SK sides that
                // computed the raw address in different integer widths
                // still canonicalize identically.
                let k = (disp - base_off) as u64;
                self.arena.lin_with(Width::W32, terms, k)
            }
            _ => raw,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn load(
        &mut self,
        st: &mut PathState,
        space: Space,
        ty: Ty,
        addr: &Address,
        f: &Function,
        m: &Module,
        env: &Env,
    ) -> ExprId {
        if space == Space::Param {
            // Param loads resolve to the named parameter (bound or
            // symbolic); lowering always uses absolute offsets here.
            if addr.base.is_none() {
                if let Some(p) = f.params.iter().find(|p| p.offset as i64 == addr.offset) {
                    return match env.param(&p.name) {
                        Some(Val::I(v)) => self.arena.cint(p.ty, v),
                        Some(Val::F(v)) => self.arena.cf32(v),
                        None => self.arena.param(&p.name),
                    };
                }
            }
            let a = self.resolve_addr(st, addr, space, f, m);
            return self.arena.intern(crate::expr::Expr::Load {
                space,
                ty,
                addr: a,
                version: 0,
            });
        }
        let a = self.resolve_addr(st, addr, space, f, m);
        let (forwardable, version) = match space_state(st, space) {
            Some(ss) => {
                // Scan newest→oldest within the current epoch.
                let mut fwd = None;
                for rec in ss.stores.iter().rev() {
                    if rec.epoch != ss.epoch && matches!(space, Space::Shared | Space::Global) {
                        break; // barrier boundary: other threads' writes intervene
                    }
                    if rec.addr == a && rec.ty == ty {
                        fwd = Some(rec.value);
                        break;
                    }
                    if !self.disjoint(rec.addr, a, rec.ty, ty) {
                        break; // may alias: stop forwarding
                    }
                }
                (fwd, ss.events)
            }
            None => (None, 0),
        };
        if let Some(v) = forwardable {
            return v;
        }
        self.arena.intern(crate::expr::Expr::Load {
            space,
            ty,
            addr: a,
            version,
        })
    }

    /// Conservative disjointness: provable only when the symbolic parts
    /// match and the constant displacements are far enough apart, or the
    /// addresses are anchored at different declarations.
    fn disjoint(&self, a: ExprId, b: ExprId, ty_a: Ty, ty_b: Ty) -> bool {
        use crate::expr::{Expr, Width};
        if a == b {
            return false;
        }
        fn parts(arena: &Arena, id: ExprId) -> (Vec<(ExprId, u64)>, i64) {
            match arena.get(id) {
                Expr::ConstI { w, bits } => {
                    let v = match w {
                        Width::W32 => *bits as u32 as i64,
                        Width::W64 => *bits as i64,
                    };
                    (vec![], v)
                }
                Expr::Lin { w, terms, k } => {
                    let v = match w {
                        Width::W32 => *k as u32 as i64,
                        Width::W64 => *k as i64,
                    };
                    (terms.to_vec(), v)
                }
                _ => (vec![(id, 1)], 0),
            }
        }
        let (ta, ka) = parts(self.arena, a);
        let (tb, kb) = parts(self.arena, b);
        if ta == tb {
            let (lo, hi, lo_sz) = if ka <= kb {
                (ka, kb, ty_a.size_bytes() as i64)
            } else {
                (kb, ka, ty_b.size_bytes() as i64)
            };
            return lo + lo_sz <= hi;
        }
        // Different declaration anchors ⇒ different windows (assumes
        // in-bounds indexing, which KSA bounds lints check separately).
        let anchor = |terms: &[(ExprId, u64)]| -> Option<(Space, crate::expr::Symbol)> {
            terms.iter().find_map(|&(t, _)| match self.arena.get(t) {
                Expr::Base(space, s) => Some((*space, *s)),
                _ => None,
            })
        };
        if let (Some(aa), Some(ab)) = (anchor(&ta), anchor(&tb)) {
            if aa != ab {
                return true;
            }
        }
        false
    }
}

fn finish(st: PathState, end: PathEnd) -> PathSummary {
    PathSummary {
        conds: st.conds,
        effects: st.effects,
        end,
    }
}

fn space_state(st: &mut PathState, space: Space) -> Option<&mut SpaceState> {
    match space {
        Space::Global => Some(&mut st.global),
        Space::Shared => Some(&mut st.shared),
        Space::Local => Some(&mut st.local),
        _ => None,
    }
}
