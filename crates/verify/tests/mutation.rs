//! Mutation-testing harness: inject known-bad IR rewrites (the kinds of
//! bugs a broken optimization pass would introduce) and require ks-verify
//! to catch every one.

use ks_codegen::CodegenOptions;
use ks_ir::Module;
use ks_verify::{check_function_pair, default_envs, mutate, Limits};

const TEMPLATE_MATCH: &str = include_str!("../../apps/src/kernels/template_match.cu");
const PIV: &str = include_str!("../../apps/src/kernels/piv.cu");
const BACKPROJ: &str = include_str!("../../apps/src/kernels/backproj.cu");

fn defs(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
    pairs
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

fn build_opt(source: &str, defines: &[(String, String)]) -> Module {
    let prog = ks_lang::frontend(source, defines).expect("frontend");
    let mut m = ks_codegen::compile(&prog, &CodegenOptions::default()).expect("codegen");
    ks_opt::optimize_module(&mut m);
    m
}

/// Apply `per_fn` sampled mutations to every function of the module and
/// count how many are caught. Returns (caught, missed descriptions).
fn run_mutations(m: &Module, seed: u64, per_fn: usize) -> (usize, Vec<String>) {
    let envs = default_envs();
    let limits = Limits::default();
    let ctx = Module {
        functions: vec![],
        consts: m.consts.clone(),
        textures: m.textures.clone(),
    };
    let mut caught = 0;
    let mut missed = Vec::new();
    for f in &m.functions {
        let sites = mutate::enumerate(f);
        assert!(!sites.is_empty(), "{}: no mutation sites", f.name);
        for mu in mutate::sample(&sites, seed, per_fn) {
            let mut bad = f.clone();
            assert!(
                mutate::apply(&mut bad, &mu),
                "{}: {} did not apply",
                f.name,
                mu.desc
            );
            let report = check_function_pair(f, &ctx, &bad, &ctx, &envs, limits, &mu.desc);
            if report.findings.iter().any(|fi| fi.is_error()) {
                caught += 1;
            } else {
                missed.push(format!("{}: {}", f.name, mu.desc));
            }
        }
    }
    (caught, missed)
}

#[test]
fn catches_all_mutations_small_kernels() {
    let fixtures = [
        r#"
__global__ void saxpy(float* y, const float* x, float a, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        y[i] = a * x[i] + y[i];
    }
}
"#,
        r#"
__global__ void reduce(float* out, const float* in, int n) {
    __shared__ float buf[128];
    int t = (int)threadIdx.x;
    buf[t] = in[blockIdx.x * 128 + t];
    __syncthreads();
    for (int s = 64; s > 0; s = s / 2) {
        if (t < s) {
            buf[t] = buf[t] + buf[t + s];
        }
        __syncthreads();
    }
    if (t == 0) {
        out[blockIdx.x] = buf[0];
    }
}
"#,
        r#"
__global__ void stride(int* out, const int* in, int w) {
    int x = (int)threadIdx.x;
    int y = (int)blockIdx.x;
    out[(y * w + x) * 2] = in[y * w + x] << 3;
}
"#,
    ];
    let mut total = 0;
    let mut all_missed = Vec::new();
    for src in fixtures {
        let m = build_opt(src, &[]);
        let (caught, missed) = run_mutations(&m, 0xC0FFEE, 8);
        total += caught + missed.len();
        all_missed.extend(missed);
    }
    assert!(total >= 10, "too few mutations exercised: {total}");
    assert!(
        all_missed.is_empty(),
        "{} of {} mutations escaped:\n{}",
        all_missed.len(),
        total,
        all_missed.join("\n")
    );
}

#[test]
fn catches_all_mutations_app_kernels() {
    let apps = [
        (
            TEMPLATE_MATCH,
            defs(&[
                ("TILE_W", "16"),
                ("TILE_H", "16"),
                ("SHIFT_W", "16"),
                ("NUM_TILES", "16"),
                ("TEMPL_W", "64"),
                ("TEMPL_H", "56"),
                ("THREADS", "128"),
            ]),
        ),
        (
            PIV,
            defs(&[
                ("RB", "4"),
                ("THREADS", "64"),
                ("MASK_W", "16"),
                ("MASK_H", "16"),
                ("OFFS_W", "9"),
            ]),
        ),
        (
            BACKPROJ,
            defs(&[("PPL", "8"), ("ZB", "4"), ("VOL_N", "32")]),
        ),
    ];
    let mut total = 0;
    let mut all_missed = Vec::new();
    for (src, defines) in apps {
        let m = build_opt(src, &defines);
        let (caught, missed) = run_mutations(&m, 0xDECADE, 3);
        total += caught + missed.len();
        all_missed.extend(missed);
    }
    assert!(total >= 15, "too few mutations exercised: {total}");
    assert!(
        all_missed.is_empty(),
        "{} of {} mutations escaped:\n{}",
        all_missed.len(),
        total,
        all_missed.join("\n")
    );
}
