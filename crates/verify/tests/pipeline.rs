//! End-to-end translation validation over the real pipeline: every
//! ks-codegen HIR stage and every ks-opt IR pass must preserve the summary
//! of every kernel, and each specialized (SK) build must match the generic
//! (RE) build under its define bindings.

use ks_codegen::CodegenOptions;
use ks_ir::Module;
use ks_verify::{check_specialization, Limits, VerifyReport};

const TEMPLATE_MATCH: &str = include_str!("../../apps/src/kernels/template_match.cu");
const PIV: &str = include_str!("../../apps/src/kernels/piv.cu");
const BACKPROJ: &str = include_str!("../../apps/src/kernels/backproj.cu");

fn defs(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
    pairs
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

fn lower(source: &str, defines: &[(String, String)]) -> Module {
    let prog = ks_lang::frontend(source, defines).expect("frontend");
    ks_codegen::compile(&prog, &CodegenOptions::default()).expect("codegen")
}

fn validate_pipeline(source: &str, defines: &[(String, String)]) -> VerifyReport {
    ks_verify::validate_pipeline(source, defines, Limits::default()).expect("pipeline")
}

fn assert_clean(name: &str, report: &VerifyReport) {
    let errors: Vec<_> = report.findings.iter().filter(|f| f.is_error()).collect();
    assert!(
        errors.is_empty(),
        "{name}: {} verification errors (of {} checks):\n{}",
        errors.len(),
        report.checks,
        errors
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.checks > 0, "{name}: no checks ran");
}

#[test]
fn pipeline_clean_small_kernel() {
    let src = r#"
__global__ void axpy(float* y, const float* x, float a, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        y[i] = a * x[i] + y[i];
    }
}
"#;
    let report = validate_pipeline(src, &[]);
    assert_clean("axpy", &report);
}

#[test]
fn pipeline_clean_template_match_sk() {
    let defines = defs(&[
        ("TILE_W", "16"),
        ("TILE_H", "16"),
        ("SHIFT_W", "16"),
        ("NUM_TILES", "16"),
        ("TEMPL_W", "64"),
        ("TEMPL_H", "56"),
        ("THREADS", "128"),
    ]);
    let report = validate_pipeline(TEMPLATE_MATCH, &defines);
    assert_clean("template_match sk", &report);
}

#[test]
fn pipeline_clean_piv_sk() {
    let defines = defs(&[
        ("RB", "4"),
        ("THREADS", "64"),
        ("MASK_W", "16"),
        ("MASK_H", "16"),
        ("OFFS_W", "9"),
    ]);
    let report = validate_pipeline(PIV, &defines);
    assert_clean("piv sk", &report);
}

#[test]
fn pipeline_clean_backproj_sk() {
    let defines = defs(&[("PPL", "8"), ("ZB", "4"), ("VOL_N", "32")]);
    let report = validate_pipeline(BACKPROJ, &defines);
    assert_clean("backproj sk", &report);
}

#[test]
fn pipeline_clean_apps_re() {
    for (name, src) in [
        ("template_match re", TEMPLATE_MATCH),
        ("piv re", PIV),
        ("backproj re", BACKPROJ),
    ] {
        let report = validate_pipeline(src, &[]);
        assert_clean(name, &report);
    }
}

#[test]
fn specialization_equivalence_small_kernel() {
    let src = r#"
#ifndef N
#define N n
#endif
#ifndef THREADS
#define THREADS (int)blockDim.x
#endif
__global__ void scale(float* y, float a, int n) {
    int i = blockIdx.x * THREADS + threadIdx.x;
    for (int j = 0; j < 4; j++) {
        if (i * 4 + j < N) {
            y[i * 4 + j] = a * y[i * 4 + j];
        }
    }
}
"#;
    let re = lower(src, &[]);
    let defines = defs(&[("N", "256"), ("THREADS", "64")]);
    let sk = lower(src, &defines);
    let report = check_specialization(&re, &sk, src, &defines, Limits::default());
    assert_clean("scale spec", &report);
}

#[test]
fn specialization_diff_is_caught() {
    // RE reads parameter `n`; "SK" is compiled from a genuinely different
    // source (off-by-one bound) — the checker must flag it.
    let re_src = r#"
#ifndef N
#define N n
#endif
__global__ void k(float* y, int n) {
    int i = (int)threadIdx.x;
    if (i < N) { y[i] = 1.0f; }
}
"#;
    let sk_src = r#"
__global__ void k(float* y, int n) {
    int i = (int)threadIdx.x;
    if (i < 257) { y[i] = 1.0f; }
}
"#;
    let re = lower(re_src, &[]);
    let sk = lower(sk_src, &[]);
    let defines = defs(&[("N", "256")]);
    let report = check_specialization(&re, &sk, re_src, &defines, Limits::default());
    assert!(
        report.findings.iter().any(|f| f.code == "KSV002"),
        "expected a KSV002 spec diff, got: {:?}",
        report.findings
    );
}

#[test]
fn specialization_equivalence_apps() {
    for (name, src, defines) in [
        (
            "template_match",
            TEMPLATE_MATCH,
            defs(&[
                ("TILE_W", "16"),
                ("TILE_H", "16"),
                ("SHIFT_W", "16"),
                ("NUM_TILES", "16"),
                ("TEMPL_W", "64"),
                ("TEMPL_H", "56"),
                ("THREADS", "128"),
            ]),
        ),
        (
            "piv",
            PIV,
            defs(&[
                ("RB", "4"),
                ("THREADS", "64"),
                ("MASK_W", "16"),
                ("MASK_H", "16"),
                ("OFFS_W", "9"),
            ]),
        ),
        (
            "backproj",
            BACKPROJ,
            defs(&[("PPL", "8"), ("ZB", "4"), ("VOL_N", "32")]),
        ),
    ] {
        let re = lower(src, &[]);
        let sk = lower(src, &defines);
        let report = check_specialization(&re, &sk, src, &defines, Limits::default());
        assert_clean(&format!("{name} spec"), &report);
    }
}
