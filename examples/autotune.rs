//! Autotuning + kernel specialization, composed (§3.2/§3.4/§7.2.3):
//! greedy search over the PIV implementation-parameter space, where every
//! evaluation compiles a specialized kernel (cache-backed) and measures it
//! on the simulator — then a comparison against exhaustive ground truth
//! evaluated in parallel through the compiler's concurrent cache.
//!
//! Run with: `cargo run --release --example autotune`

use ks_apps::piv::{run_gpu, PivImpl, PivKernel, PivProblem};
use ks_apps::{synth, Variant};
use ks_core::Compiler;
use ks_sim::DeviceConfig;
use ks_tune::ParamSpace;
use ks_tune::{tune, tune_parallel, Config, Strategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let prob = PivProblem::standard(256, 32, 50, 8);
    let scen = synth::piv_scenario(prob.img_w, prob.img_h, (2, 2), 123);
    let space = ParamSpace::new()
        .dim("rb", vec![1, 2, 3, 4, 6, 8, 12, 16])
        .dim("threads", vec![32, 64, 128, 256, 512]);

    for dev in DeviceConfig::presets() {
        let compiler = Compiler::new(dev.clone());
        println!(
            "── {} — space of {} configurations ──",
            dev.name,
            space.size()
        );
        // Shared by the sequential greedy walk and the parallel
        // exhaustive pass: one compiler, one single-flight cache.
        let evaluate = |c: &Config| -> Result<f64, String> {
            let imp = PivImpl {
                rb: c.get("rb") as u32,
                threads: c.get("threads") as u32,
            };
            match run_gpu(
                &compiler,
                Variant::Sk,
                PivKernel::Basic,
                &prob,
                &imp,
                &scen,
                false,
            ) {
                Ok(out) => Ok(out.run.sim_ms),
                // Configurations exceeding device limits (too many
                // registers/threads for the SM) are legal search points
                // with infinite cost.
                Err(e) if e.to_string().contains("infeasible") => Ok(f64::INFINITY),
                Err(e) => Err(e.to_string()),
            }
        };

        let greedy = tune(
            &space,
            Strategy::Greedy {
                restarts: 3,
                seed: 2012,
            },
            evaluate,
        )?;
        println!(
            "greedy    : best {} -> {:.3} ms after {} evaluations",
            greedy.best, greedy.best_cost, greedy.evaluations
        );

        // Ground truth: all 40 points, candidate evaluations fanned out
        // across threads; the cache dedups the compiles greedy already
        // paid for and compiles the rest concurrently.
        let exhaustive = tune_parallel(&space, evaluate)?;
        println!(
            "exhaustive: best {} -> {:.3} ms after {} parallel evaluations",
            exhaustive.best, exhaustive.best_cost, exhaustive.evaluations
        );
        let quality = exhaustive.best_cost / greedy.best_cost * 100.0;
        println!(
            "greedy reached {quality:.1}% of the true optimum with {} vs {} evaluations",
            greedy.evaluations, exhaustive.evaluations
        );
        println!("compiler cache: {}\n", compiler.cache_stats());
        assert!(quality > 85.0, "greedy landed too far from the optimum");
    }
    Ok(())
}
