//! Cone-beam backprojection (§5.3): reconstruct an ellipsoid phantom from
//! synthetic projections, validating the GPU kernel against the
//! multi-threaded CPU reference and showing the specialization effect of
//! the projections-per-launch and z-register-blocking parameters.
//!
//! Run with: `cargo run --release --example backprojection`

use ks_apps::backproj::{cpu_backproject, run_gpu, BackprojImpl, BackprojProblem};
use ks_apps::{synth, Variant};
use ks_core::Compiler;
use ks_sim::DeviceConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let prob = BackprojProblem {
        n: 32,
        num_proj: 16,
        det_u: 48,
        det_v: 48,
    };
    println!(
        "volume {}^3, {} projections of {}x{} — forward projecting phantom...",
        prob.n, prob.num_proj, prob.det_u, prob.det_v
    );
    let scen = synth::ct_scenario(prob.n, prob.num_proj, prob.det_u, prob.det_v);

    // CPU reference (and correctness oracle).
    let t0 = std::time::Instant::now();
    let cpu = cpu_backproject(&prob, &scen, 4);
    let cpu_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!("CPU reference (4 threads): {cpu_ms:.2} ms wall-clock");

    let compiler = Compiler::new(DeviceConfig::tesla_c2070());
    println!(
        "\nPPL × ZB sweep on {} (SK) vs run-time evaluated:",
        compiler.device().name
    );
    println!("  ppl  zb | RE ms     SK ms     speedup | regs RE/SK | max rel err");
    for ppl in [4u32, 8, 16] {
        for zb in [1u32, 2, 4] {
            let imp = BackprojImpl {
                block_x: 8,
                block_y: 8,
                ppl,
                zb,
            };
            let re = run_gpu(&compiler, Variant::Re, &prob, &imp, &scen, false)?;
            let sk = run_gpu(&compiler, Variant::Sk, &prob, &imp, &scen, true)?;
            let mut max_rel = 0.0f32;
            for (g, c) in sk.volume.iter().zip(&cpu) {
                max_rel = max_rel.max((g - c).abs() / c.abs().max(1.0));
            }
            println!(
                "  {ppl:3} {zb:3} | {:8.4}  {:8.4}  {:5.2}x  | {:3} / {:2}  | {max_rel:.2e}",
                re.run.sim_ms,
                sk.run.sim_ms,
                re.run.sim_ms / sk.run.sim_ms,
                re.run.regs_per_thread(),
                sk.run.regs_per_thread(),
            );
            assert!(max_rel < 1e-3, "GPU must match the CPU reference");
        }
    }

    // A coarse look at the reconstruction (central slice, downsampled).
    let best = run_gpu(
        &compiler,
        Variant::Sk,
        &prob,
        &BackprojImpl {
            block_x: 8,
            block_y: 8,
            ppl: 16,
            zb: 2,
        },
        &scen,
        true,
    )?;
    let n = prob.n;
    let z = n / 2;
    let vmax = best.volume.iter().cloned().fold(0.0f32, f32::max);
    println!("\ncentral slice (z={z}), '@'=dense, '.'=air:");
    for y in (0..n).step_by(2) {
        let row: String = (0..n)
            .step_by(2)
            .map(|x| {
                let v = best.volume[(z * n + y) * n + x] / vmax;
                match (v * 4.0) as i32 {
                    0 => ' ',
                    1 => '.',
                    2 => '+',
                    3 => '*',
                    _ => '@',
                }
            })
            .collect();
        println!("  {row}");
    }
    Ok(())
}
