//! Fault-injection drill: GPU-PF pipelines under a seeded fault plan.
//!
//! Installs a process-wide [`ks_fault::FaultPlan`] that injects transient
//! compile errors (default 10%), transient launch timeouts (default 5%),
//! and a persistent compile fault pinned to one module's specialization
//! defines. Three small pipelines then run to completion anyway: the
//! resilient compiler retries transient compile faults, the pipeline
//! retries transient launches, and the permanently failing specialization
//! degrades to its generic (runtime-argument) kernel with identical
//! results. A separate breaker drill hammers one doomed key until its
//! circuit breaker opens.
//!
//! Everything printed is deterministic for a given seed — the fault
//! event log carries no timestamps — so two runs with the same seed are
//! byte-identical (the CI fault tier diffs them).
//!
//! Run with: `cargo run --release --example fault_injection -- --seed 77`

use gpu_pf::{Arg, FallbackKind, MacroBinding, Pipeline};
use ks_core::{Compiler, Defines, ResilienceConfig};
use ks_fault::{FaultKind, FaultPlan, FaultRule, Target};
use ks_sim::DeviceConfig;
use std::sync::Arc;
use std::time::Duration;

const SCALE: &str = r#"
#ifndef FACTOR
#define FACTOR factor
#endif
__global__ void scale(int* x, int* y, int n, int factor) {
    int i = (int)(blockIdx.x * blockDim.x + threadIdx.x);
    if (i < n) {
        y[i] = x[i] * FACTOR;
    }
}
"#;

const SHIFT: &str = r#"
#ifndef OFFSET
#define OFFSET offset
#endif
__global__ void shiftk(int* x, int* y, int n, int offset) {
    int i = (int)(blockIdx.x * blockDim.x + threadIdx.x);
    if (i < n) {
        y[i] = x[i] + OFFSET;
    }
}
"#;

/// The fault plan pins a persistent compile error to this module's
/// `-D STUBBORN_SCALE=` define, so every specialized compile fails and
/// every refresh degrades to the generic kernel — which still computes
/// the right answer from the runtime argument.
const STUBBORN: &str = r#"
#ifndef STUBBORN_SCALE
#define STUBBORN_SCALE s
#endif
__global__ void stubborn(int* x, int* y, int n, int s) {
    int i = (int)(blockIdx.x * blockDim.x + threadIdx.x);
    if (i < n) {
        y[i] = x[i] * STUBBORN_SCALE + i;
    }
}
"#;

const N: usize = 256;
const ITERS: u64 = 10;

/// The deterministic slice of [`ks_core::CacheStats`]: everything except
/// the wall-clock timings, so two same-seed runs print identical text.
fn fmt_stats(s: &ks_core::CacheStats) -> String {
    format!(
        "{} hits / {} misses / {} failures / {} quarantined / {} retries / {} breaker-opens",
        s.hits, s.misses, s.failures, s.quarantined, s.retries, s.breaker_opens
    )
}

fn arg_u64(args: &[String], name: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

/// Build and run one single-kernel pipeline twice: once with the macro
/// bound to `values[0]`, then re-specialized to `values[1]`. Verifies
/// the downloaded output against `expect` on every phase, so a run that
/// degraded to the generic kernel still proves correctness.
fn run_pipeline(
    compiler: &Arc<Compiler>,
    source: &str,
    kernel: &str,
    macro_name: &str,
    values: [i64; 2],
    expect: impl Fn(i32, i64, usize) -> i32,
) -> Result<Vec<FallbackKind>, gpu_pf::PfError> {
    let mut p = Pipeline::new(compiler.clone(), 16 << 20);
    p.set_logger(Box::new(std::io::stderr()));

    let fac = p.int_param(macro_name, values[0]);
    let n_p = p.int_param("n", N as i64);
    let ext = p.extent_param("buf", [N as u32, 1, 1], 4);
    let module = p.module(source, vec![(macro_name, MacroBinding::Param(fac))]);
    let k = p.kernel(module, kernel);
    let hx = p.host_memory(ext);
    let dx = p.global_memory(ext);
    let dy = p.global_memory(ext);
    let hy = p.host_memory(ext);
    let every = p.schedule_param("every", 1, 0);
    let grid = p.triplet_param("grid", [(N as u32).div_ceil(64), 1, 1]);
    let blk = p.triplet_param("block", [64, 1, 1]);
    p.copy("upload", hx, dx, every);
    p.exec(
        "exec",
        k,
        grid,
        blk,
        None,
        vec![Arg::Mem(dx), Arg::Mem(dy), Arg::Param(n_p), Arg::Param(fac)],
        every,
    );
    p.copy("download", dy, hy, every);

    let xs: Vec<i32> = (0..N as i32).map(|i| (i * 7) % 101).collect();
    let bytes: Vec<u8> = xs.iter().flat_map(|v| v.to_le_bytes()).collect();

    for &v in &values {
        p.set_int(fac, v);
        p.refresh()?;
        p.try_set_host_data(hx, &bytes)?;
        p.run(ITERS)?;
        let out: Vec<i32> = p
            .try_host_data(hy)?
            .chunks_exact(4)
            .map(|c| i32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        for (i, (&x, &y)) in xs.iter().zip(&out).enumerate() {
            assert_eq!(y, expect(x, v, i), "{kernel}: wrong output at {i}");
        }
    }
    Ok(p.degradations().iter().map(|d| d.fallback).collect())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed = arg_u64(&args, "--seed").unwrap_or(77);
    let compile_ppm = arg_u64(&args, "--compile-ppm").unwrap_or(100_000) as u32;
    let device_ppm = arg_u64(&args, "--device-ppm").unwrap_or(50_000) as u32;

    let plan = Arc::new(
        FaultPlan::new(seed)
            .rule(
                FaultRule::new(
                    FaultKind::CompileError,
                    Target::Define("STUBBORN_SCALE".into()),
                )
                .persistent(),
            )
            .rule(FaultRule::new(FaultKind::CompileError, Target::Any).rate_ppm(compile_ppm))
            .rule(FaultRule::new(FaultKind::LaunchTimeout, Target::Any).rate_ppm(device_ppm)),
    );
    ks_fault::install(plan.clone());

    let compiler = Arc::new(Compiler::new(DeviceConfig::tesla_c2070()).with_resilience(
        ResilienceConfig {
            max_retries: 3,
            backoff_base: Duration::from_micros(100),
            backoff_cap: Duration::from_millis(2),
            compile_timeout: Some(Duration::from_secs(30)),
            catch_panics: true,
            ..ResilienceConfig::default()
        },
    ));

    println!(
        "fault plan: seed={seed} compile={compile_ppm}ppm device={device_ppm}ppm \
         + persistent fault on -D STUBBORN_SCALE"
    );

    let mut completed = 0u32;
    let mut panics = 0u32;
    type Drill = (
        &'static str,
        &'static str,
        &'static str,
        &'static str,
        [i64; 2],
        fn(i32, i64, usize) -> i32,
    );
    let drills: [Drill; 3] = [
        ("scale", SCALE, "scale", "FACTOR", [3, 5], |x, v, _| {
            x * v as i32
        }),
        ("shift", SHIFT, "shiftk", "OFFSET", [11, -4], |x, v, _| {
            x + v as i32
        }),
        (
            "stubborn",
            STUBBORN,
            "stubborn",
            "STUBBORN_SCALE",
            [2, 9],
            |x, v, i| x * v as i32 + i as i32,
        ),
    ];
    for (name, source, kernel, macro_name, values, expect) in drills {
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_pipeline(&compiler, source, kernel, macro_name, values, expect)
        }));
        match r {
            Ok(Ok(fallbacks)) => {
                completed += 1;
                let generic = fallbacks
                    .iter()
                    .filter(|f| **f == FallbackKind::Generic)
                    .count();
                let last_good = fallbacks.len() - generic;
                println!(
                    "pipeline `{name}`: ok ({} iterations x 2 specializations, \
                     degradations: {generic} generic, {last_good} last-known-good)",
                    ITERS
                );
            }
            Ok(Err(e)) => println!("pipeline `{name}`: FAILED: {e}"),
            Err(_) => {
                panics += 1;
                println!("pipeline `{name}`: PANICKED");
            }
        }
    }

    // Breaker drill: hammer one permanently failing specialization with a
    // fail-fast compiler (no retries, no quarantine) until its circuit
    // breaker opens, then show the fast-fail.
    let breaker = Compiler::new(DeviceConfig::tesla_c2070()).with_resilience(ResilienceConfig {
        breaker_threshold: 3,
        breaker_cooldown: Duration::from_millis(200),
        ..ResilienceConfig::default()
    });
    let doomed = Defines::new().def("STUBBORN_SCALE", 9);
    let mut last_err = String::new();
    for _ in 0..5 {
        if let Err(e) = breaker.compile(STUBBORN, &doomed) {
            last_err = e.message;
        }
    }
    println!("breaker drill : {}", fmt_stats(&breaker.cache_stats()));
    println!("breaker error : {last_err}");

    println!("\n== fault event log (seed {seed}) ==");
    print!("{}", plan.event_log());
    println!("injected: {} faults", plan.injected_count());

    println!("\n== resilience counters ==");
    println!("pipeline cache: {}", fmt_stats(&compiler.cache_stats()));
    let reg = ks_trace::registry();
    for name in [
        ks_trace::names::COMPILE_RETRIES,
        ks_trace::names::CACHE_FAILURES,
        ks_trace::names::CACHE_QUARANTINED,
        ks_trace::names::BREAKER_OPEN,
        ks_trace::names::PF_FALLBACK_GENERIC,
        ks_trace::names::PF_FALLBACK_LAST_GOOD,
        ks_trace::names::PF_LAUNCH_RETRIES,
        ks_trace::names::SIM_FAULTS_INJECTED,
    ] {
        println!("{name} = {}", reg.counter_value(name));
    }

    println!("\npipelines completed: {completed}/3, panics: {panics}");
    if completed != 3 || panics != 0 {
        std::process::exit(1);
    }
}
