//! Persistent artifact store: warm starts across process restarts.
//!
//! The drill runs three phases over one store directory, using a fresh
//! [`Compiler`] per phase (each phase therefore starts with an empty
//! in-memory cache, the process-restart analogue):
//!
//! 1. **cold** — compile the three app kernels; every compile is a disk
//!    miss that publishes a content-addressed record;
//! 2. **warm restart** — a new compiler on the same directory resolves
//!    all three kernels from disk: zero compiles, byte-identical PTX;
//! 3. **corruption** — one record gets a byte flipped on disk; the
//!    loader must reject it on checksum, recompile gracefully (never
//!    panic, never fail), count exactly one `store_error`, and still
//!    produce byte-identical output.
//!
//! The summary lines at the end are pinned by ci.sh greps; the process
//! exits non-zero on any violation.
//!
//! Run with: `cargo run --release --example persistent_store`

use ks_core::{Binary, Compiler, Defines};
use ks_sim::DeviceConfig;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn kernels() -> Vec<(&'static str, Defines)> {
    vec![
        (
            ks_apps::template_match::KERNELS,
            Defines::new()
                .def("TILE_W", 16)
                .def("TILE_H", 16)
                .def("SHIFT_W", 16)
                .def("NUM_TILES", 16)
                .def("TEMPL_W", 64)
                .def("TEMPL_H", 56)
                .def("THREADS", 128),
        ),
        (
            ks_apps::piv::KERNELS,
            Defines::new()
                .def("RB", 4)
                .def("THREADS", 64)
                .def("MASK_W", 16)
                .def("MASK_H", 16)
                .def("OFFS_W", 9),
        ),
        (
            ks_apps::backproj::KERNELS,
            Defines::new().def("PPL", 8).def("ZB", 4).def("VOL_N", 32),
        ),
    ]
}

fn fresh_compiler(dir: &Path) -> Compiler {
    Compiler::new(DeviceConfig::tesla_c2070())
        .with_store(dir)
        .unwrap_or_else(|e| {
            eprintln!("persistent_store: cannot open store at {dir:?}: {e}");
            std::process::exit(1);
        })
}

fn compile_all(c: &Compiler) -> Vec<Arc<Binary>> {
    kernels()
        .iter()
        .map(|(src, defs)| {
            c.compile(src, defs).unwrap_or_else(|e| {
                eprintln!("persistent_store: compile failed: {e}");
                std::process::exit(1);
            })
        })
        .collect()
}

fn record_files(root: &Path) -> Vec<PathBuf> {
    let mut found = Vec::new();
    let Ok(entries) = std::fs::read_dir(root) else {
        return found;
    };
    for e in entries.flatten() {
        let path = e.path();
        if path.is_dir() {
            found.extend(record_files(&path));
        } else if path.extension().is_some_and(|x| x == "ksb") {
            found.push(path);
        }
    }
    found
}

fn fail(msg: &str) -> ! {
    eprintln!("persistent_store: FAILED: {msg}");
    std::process::exit(1);
}

fn main() {
    let mut dir = std::env::temp_dir();
    dir.push(format!("ks-persistent-store-drill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let n = kernels().len() as u64;

    // Phase 1: cold. Every kernel compiles and publishes a record.
    let cold = fresh_compiler(&dir);
    let cold_bins = compile_all(&cold);
    let s = cold.cache_stats();
    if (s.misses, s.disk_misses, s.disk_hits, s.store_errors) != (n, n, 0, 0) {
        fail(&format!("cold phase accounting off: {s}"));
    }
    let records = record_files(&dir);
    if records.len() as u64 != n {
        fail(&format!("expected {n} records, found {}", records.len()));
    }
    println!("cold: {n} compiles, {n} records");

    // Phase 2: warm restart. A fresh compiler (empty in-memory cache)
    // must serve everything from disk, byte-identical.
    let warm = fresh_compiler(&dir);
    let warm_bins = compile_all(&warm);
    let s = warm.cache_stats();
    if (s.misses, s.disk_hits, s.store_errors) != (0, n, 0) {
        fail(&format!("warm phase accounting off: {s}"));
    }
    if s.total_compile_micros != 0 {
        fail(&format!("warm phase paid compile time: {s}"));
    }
    for (a, b) in cold_bins.iter().zip(&warm_bins) {
        if a.ptx != b.ptx {
            fail("reloaded PTX differs from the compiled PTX");
        }
    }
    println!("warm restart: 0 compiles, {n}/{n} disk hits, identical: ok");

    // Phase 3: corruption. Flip one byte in one record; the checksum
    // must reject it and the compiler must recompile gracefully.
    let victim = &records[0];
    let mut bytes = std::fs::read(victim).unwrap_or_else(|e| {
        fail(&format!("cannot read record {victim:?}: {e}"));
    });
    let last = bytes.len() - 1;
    bytes[last] ^= 0xA5;
    if let Err(e) = std::fs::write(victim, &bytes) {
        fail(&format!("cannot corrupt record {victim:?}: {e}"));
    }
    let repaired = fresh_compiler(&dir);
    let repaired_bins = compile_all(&repaired);
    let s = repaired.cache_stats();
    if s.store_errors != 1 {
        fail(&format!("expected exactly 1 store error: {s}"));
    }
    if (s.misses, s.disk_hits) != (1, n - 1) {
        fail(&format!("corruption phase accounting off: {s}"));
    }
    for (a, b) in cold_bins.iter().zip(&repaired_bins) {
        if a.ptx != b.ptx {
            fail("post-corruption PTX differs from the original");
        }
    }
    println!("corruption: recovered 1/1, store errors: 1, identical: ok");

    let _ = std::fs::remove_dir_all(&dir);
    println!("persistent store drill: ok");
}
