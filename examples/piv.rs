//! PIV flow-field estimation (§5.2): recover a known uniform displacement
//! from a synthetic particle-image pair, comparing the run-time-evaluated
//! kernel, the specialized kernel, and the warp-specialized reduction
//! variant on both simulated GPUs.
//!
//! Run with: `cargo run --release --example piv`

use ks_apps::piv::{run_gpu, PivImpl, PivKernel, PivProblem};
use ks_apps::{synth, Variant};
use ks_core::Compiler;
use ks_sim::DeviceConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let prob = PivProblem::standard(192, 32, 50, 6);
    let flow = (4, -3);
    let scen = synth::piv_scenario(prob.img_w, prob.img_h, flow, 2024);
    println!(
        "image {}x{}, {} masks of {}x{}, {} search offsets, true flow {:?}",
        prob.img_w,
        prob.img_h,
        prob.num_masks(),
        prob.mask_w,
        prob.mask_h,
        prob.num_offsets(),
        flow
    );

    let imp = PivImpl {
        rb: 4,
        threads: 128,
    };
    for dev in DeviceConfig::presets() {
        let compiler = Compiler::new(dev.clone());
        println!("\n── {} ──", dev.name);
        for (variant, kernel, tag) in [
            (Variant::Re, PivKernel::Basic, "run-time evaluated "),
            (Variant::Sk, PivKernel::Basic, "specialized        "),
            (Variant::Sk, PivKernel::WarpSpec, "specialized + warp "),
        ] {
            let out = run_gpu(&compiler, variant, kernel, &prob, &imp, &scen, true)?;
            let hits = out.displacements.iter().filter(|d| **d == flow).count();
            let rep = &out.run.reports[0];
            println!(
                "{tag}: {:8.4} ms | {:2} regs | occ {:.2} | local {:4} B | {}/{} vectors correct",
                out.run.sim_ms,
                out.run.regs_per_thread(),
                rep.occupancy.occupancy,
                rep.local_bytes_per_thread,
                hits,
                out.displacements.len()
            );
        }
    }

    // Show part of the recovered flow field.
    let compiler = Compiler::new(DeviceConfig::tesla_c2070());
    let out = run_gpu(
        &compiler,
        Variant::Sk,
        PivKernel::Basic,
        &prob,
        &imp,
        &scen,
        true,
    )?;
    let (gx, gy) = prob.mask_grid();
    println!("\nrecovered flow field ({gx}x{gy} vectors):");
    for y in 0..gy.min(6) {
        let row: Vec<String> = (0..gx.min(8))
            .map(|x| {
                let (dx, dy) = out.displacements[y * gx + x];
                format!("({dx:+},{dy:+})")
            })
            .collect();
        println!("  {}", row.join(" "));
    }
    Ok(())
}
