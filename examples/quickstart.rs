//! Quickstart: the dissertation's `mathTest` kernel (Listings 4.1/4.2,
//! Appendices B–D) run both ways.
//!
//! A single CUDA-C-dialect source, written in terms of undefined constants
//! with run-time-evaluated fallbacks, is compiled twice: once with no
//! defines (the RE kernel of Appendix C — loops, parameter loads, control
//! flow) and once with every parameter specialized (the SK kernel of
//! Appendix D — straight-line, immediate-laden PTX). Both are executed on
//! the simulated Tesla C1060 and compared.
//!
//! Run with: `cargo run --release --example quickstart`

use ks_core::{Compiler, Defines};
use ks_sim::{launch, DeviceConfig, DeviceState, KArg, LaunchDims, LaunchOptions};

/// Appendix-B-style flexibly specializable kernel: every `#ifndef` gives a
/// parameter a run-time-evaluated fallback, so the same source compiles
/// with any subset of parameters specialized.
const MATHTEST: &str = r#"
#ifndef LOOP_COUNT
#define LOOP_COUNT loopCount
#endif
#ifndef ARG_A
#define ARG_A argA
#endif
#ifndef ARG_B
#define ARG_B argB
#endif
#ifndef BLOCK_DIM_X
#define BLOCK_DIM_X blockDim.x
#endif
__global__ void mathTest(int* in, int* out, int argA, int argB, int loopCount) {
    int acc = 0;
    const unsigned int stride = ARG_A * ARG_B;
    const unsigned int offset = blockIdx.x * BLOCK_DIM_X + threadIdx.x;
    for (int i = 0; i < LOOP_COUNT; i++) {
        acc += *(in + offset + i * stride);
    }
    *(out + offset) = acc;
    return;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dev = DeviceConfig::tesla_c1060();
    let compiler = Compiler::new(dev.clone());

    // Problem instance.
    let (threads, blocks) = (128u32, 4u32);
    let (arg_a, arg_b, loop_count) = (3i32, 7i32, 5i32);
    let n = (threads * blocks) as usize;
    let elems = n + (loop_count as usize) * (arg_a * arg_b) as usize * n;

    // --- compile both variants of the same source ---
    let re = compiler.compile(MATHTEST, Defines::new())?;
    let sk = compiler.compile(
        MATHTEST,
        Defines::new()
            .def("LOOP_COUNT", loop_count)
            .def("ARG_A", arg_a)
            .def("ARG_B", arg_b)
            .def("BLOCK_DIM_X", threads),
    )?;

    println!("── run-time evaluated PTX (cf. Appendix C) ──");
    println!("{}", re.ptx);
    println!(
        "── specialized PTX, -D {} (cf. Appendix D) ──",
        sk.defines.command_line()
    );
    println!("{}", sk.ptx);

    println!(
        "static instructions : RE {:4}   SK {:4}",
        re.static_insts("mathTest"),
        sk.static_insts("mathTest")
    );
    println!(
        "registers / thread  : RE {:4}   SK {:4}",
        re.regs_per_thread("mathTest"),
        sk.regs_per_thread("mathTest")
    );

    // --- execute both on the simulated GPU; results must agree ---
    let mut st = DeviceState::new(dev, 64 << 20);
    let p_in = st.global.alloc((elems * 4) as u64)?;
    let p_out = st.global.alloc((n * 4) as u64)?;
    let data: Vec<i32> = (0..elems as i32).map(|i| i % 17).collect();
    st.global.write_i32_slice(p_in, &data)?;
    let args = [
        KArg::Ptr(p_in),
        KArg::Ptr(p_out),
        KArg::I32(arg_a),
        KArg::I32(arg_b),
        KArg::I32(loop_count),
    ];
    let dims = LaunchDims::linear(blocks, threads);

    let rep_re = launch(
        &mut st,
        &re.module,
        "mathTest",
        dims,
        &args,
        LaunchOptions::default(),
    )?;
    let out_re = st.global.read_i32_slice(p_out, n)?;
    let rep_sk = launch(
        &mut st,
        &sk.module,
        "mathTest",
        dims,
        &args,
        LaunchOptions::default(),
    )?;
    let out_sk = st.global.read_i32_slice(p_out, n)?;
    assert_eq!(out_re, out_sk, "RE and SK must compute identical results");

    println!(
        "\nsimulated time      : RE {:.4} ms   SK {:.4} ms   ({:.2}x)",
        rep_re.time_ms,
        rep_sk.time_ms,
        rep_re.time_ms / rep_sk.time_ms
    );
    println!(
        "dynamic instructions: RE {:6}   SK {:6}",
        rep_re.stats.dyn_insts, rep_sk.stats.dyn_insts
    );

    println!("\n── launch profile (specialized) ──");
    print!("{}", ks_sim::summarize(&rep_sk));

    // --- the binary cache (§4.3) ---
    let t0 = std::time::Instant::now();
    let _again = compiler.compile(
        MATHTEST,
        Defines::new()
            .def("LOOP_COUNT", loop_count)
            .def("ARG_A", arg_a)
            .def("ARG_B", arg_b)
            .def("BLOCK_DIM_X", threads),
    )?;
    println!(
        "\ncache hit on recompile: {:?} (first compile took {:?})",
        t0.elapsed(),
        sk.compile_time
    );
    let stats = compiler.cache_stats();
    println!("cache stats: {} hits, {} misses", stats.hits, stats.misses);
    Ok(())
}
