//! The OpenCV row-filter case study (§2.6 / §4.2, Appendices E/F).
//!
//! The original OpenCV CUDA module pre-instantiates ~800 kernel variants
//! (every filter size 1–32 × addressing mode × type pair) so the compiler
//! can unroll the filter loop, and caps the `__constant__` filter at 32
//! taps. With kernel specialization, the same single source compiles on
//! demand for the exact `KSIZE`/`ANCHOR` requested — including sizes the
//! precompiled ceiling would reject — and the run-time-evaluated fallback
//! still works when no parameters are known.
//!
//! Run with: `cargo run --release --example row_filter`

use ks_core::{Compiler, Defines};
use ks_sim::{launch, DeviceConfig, DeviceState, KArg, LaunchDims, LaunchOptions};

const ROW_FILTER: &str = r#"
// Separable row filter with replicate borders (OpenCV linearRowFilter).
#ifndef KSIZE
#define KSIZE ksize
// The precompiled-variant ceiling of the original implementation:
#define KSIZE_ALLOC 32
#else
#define KSIZE_ALLOC KSIZE
#endif
#ifndef ANCHOR
#define ANCHOR anchor
#endif

__constant__ float c_kernel[KSIZE_ALLOC];

__global__ void linearRowFilter(
    float* src, float* dst, int width, int height, int ksize, int anchor)
{
    int x = (int)(blockIdx.x * blockDim.x + threadIdx.x);
    int y = (int)(blockIdx.y * blockDim.y + threadIdx.y);
    if (x < width) {
        if (y < height) {
            float sum = 0.0f;
            for (int k = 0; k < KSIZE; k++) {
                int xx = x + k - ANCHOR;
                xx = max(0, min(xx, width - 1));
                sum += c_kernel[k] * src[y * width + xx];
            }
            dst[y * width + x] = sum;
        }
    }
}
"#;

fn box_filter(k: usize) -> Vec<f32> {
    vec![1.0 / k as f32; k]
}

/// CPU reference with replicate borders.
fn cpu_filter(src: &[f32], w: usize, h: usize, kern: &[f32], anchor: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; w * h];
    for y in 0..h {
        for x in 0..w {
            let mut s = 0.0;
            for (k, c) in kern.iter().enumerate() {
                let xx = (x + k).saturating_sub(anchor).min(w - 1);
                s += c * src[y * w + xx];
            }
            out[y * w + x] = s;
        }
    }
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dev = DeviceConfig::tesla_c2070();
    let compiler = Compiler::new(dev.clone());
    let (w, h) = (128usize, 96usize);
    let src: Vec<f32> = (0..w * h)
        .map(|i| ((i * 37) % 101) as f32 / 100.0)
        .collect();

    println!("filter | RE ms     SK ms     speedup | RE regs SK regs | max err");
    for ksize in [3usize, 7, 15, 31, 63] {
        let anchor = ksize / 2;
        let kern = box_filter(ksize);
        let reference = cpu_filter(&src, w, h, &kern, anchor);

        let mut results = Vec::new();
        for defines in [
            None,
            Some(Defines::new().def("KSIZE", ksize).def("ANCHOR", anchor)),
        ] {
            // The RE build caps filters at 32 taps (its fixed constant
            // ceiling, §2.6); specialization removes the ceiling.
            if defines.is_none() && ksize > 32 {
                results.push(None);
                continue;
            }
            let bin = compiler.compile(ROW_FILTER, defines.unwrap_or_default())?;
            let mut st = DeviceState::new(dev.clone(), 32 << 20);
            let kb: Vec<u8> = kern.iter().flat_map(|v| v.to_le_bytes()).collect();
            st.set_const(&bin.module, "c_kernel", &kb)?;
            let p_src = st.global.alloc((w * h * 4) as u64)?;
            let p_dst = st.global.alloc((w * h * 4) as u64)?;
            st.global.write_f32_slice(p_src, &src)?;
            let dims = LaunchDims {
                grid: ((w as u32).div_ceil(32), (h as u32).div_ceil(8), 1),
                block: (32, 8, 1),
                dynamic_shared: 0,
            };
            let rep = launch(
                &mut st,
                &bin.module,
                "linearRowFilter",
                dims,
                &[
                    KArg::Ptr(p_src),
                    KArg::Ptr(p_dst),
                    KArg::I32(w as i32),
                    KArg::I32(h as i32),
                    KArg::I32(ksize as i32),
                    KArg::I32(anchor as i32),
                ],
                LaunchOptions::default(),
            )?;
            let out = st.global.read_f32_slice(p_dst, w * h)?;
            let err = out
                .iter()
                .zip(&reference)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max);
            results.push(Some((rep.time_ms, rep.regs_per_thread, err)));
        }
        match (&results[0], &results[1]) {
            (Some(re), Some(sk)) => println!(
                "  {ksize:4} | {:8.4}  {:8.4}  {:5.2}x  |   {:4}   {:4}   | {:.1e}",
                re.0,
                sk.0,
                re.0 / sk.0,
                re.1,
                sk.1,
                re.2.max(sk.2)
            ),
            (None, Some(sk)) => println!(
                "  {ksize:4} |   (exceeds precompiled 32-tap ceiling)  {:8.4} ms |  -  {:4}  | {:.1e}",
                sk.0, sk.1, sk.2
            ),
            _ => unreachable!(),
        }
    }
    println!(
        "\none source file; {} binaries compiled on demand (the original \
         OpenCV module ships ~800 precompiled variants)",
        compiler.cache_stats().misses
    );
    Ok(())
}
