//! Silent-data-corruption drill: seeded in-flight bit flips against the
//! three case-study app kernels, end-to-end integrity checking, and the
//! store scrub pass.
//!
//! Default mode runs each app kernel (template-matching `sum_partials`,
//! PIV `piv_ssd`, cone-beam `backproject`) through a GPU-PF pipeline
//! twice: a fault-free pass, then a pass under a seeded
//! [`ks_fault::FaultKind::SilentFlip`] plan that corrupts one output bit
//! of each pipeline's specialized variant mid-run. Integrity checking
//! ([`gpu_pf::IntegrityConfig`]) must detect every injected corruption
//! via its generic-binary witness, adjudicate it as a transient flip by
//! re-execution voting, and recover — leaving final outputs
//! byte-identical to the fault-free pass. Everything printed is
//! deterministic for a given seed (the CI integrity tier diffs two
//! same-seed runs).
//!
//! `--scrub-drill <dir>` populates a persistent store, rots one record's
//! payload (header left intact, so the fast load-path check stays
//! blind), and shows the full-checksum scrub catching and quarantining
//! it at attach time. `--warm-start <dir>` is its cross-process
//! counterpart: a fresh process re-attaches the scrubbed store, finds it
//! clean, and warm-starts both variants from disk.
//!
//! Run with: `cargo run --release --example sdc_drill -- --seed 77`

use gpu_pf::{Arg, IntegrityConfig, MacroBinding, Pipeline, ResId, Verdict};
use ks_apps::{piv, template_match};
use ks_core::{Compiler, Defines};
use ks_fault::{FaultKind, FaultPlan, FaultRule, Target};
use ks_sim::DeviceConfig;
use std::sync::Arc;

/// Iterations per pipeline; the flip rule fires on the second launch of
/// each targeted variant (iteration index 1).
const ITERS: u64 = 3;

fn arg_u64(args: &[String], name: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn arg_str(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn compiler() -> Arc<Compiler> {
    Arc::new(Compiler::new(DeviceConfig::tesla_c1060()))
}

fn integrity() -> IntegrityConfig {
    IntegrityConfig {
        witness_period: 1,
        vote_m: 3,
        vote_n: 2,
    }
}

fn f32_bytes(vals: &[f32]) -> Vec<u8> {
    vals.iter().flat_map(|v| v.to_le_bytes()).collect()
}

/// Template-matching partial-sum reduction (`sum_partials`), NUM_TILES
/// specialized.
fn tm_pipeline(c: Arc<Compiler>) -> (Pipeline, ResId, ResId) {
    let (tiles, offsets) = (8u32, 128u32);
    let mut p = Pipeline::new(c, 16 << 20);
    p.set_integrity(Some(integrity()));
    let part_ext = p.extent_param("partial", [tiles * offsets, 1, 1], 4);
    let out_ext = p.extent_param("numer", [offsets, 1, 1], 4);
    let h_part = p.host_memory(part_ext);
    let d_part = p.global_memory(part_ext);
    let d_out = p.global_memory(out_ext);
    let h_out = p.host_memory(out_ext);
    let m = p.module(
        template_match::KERNELS,
        vec![("NUM_TILES", MacroBinding::Literal(tiles.to_string()))],
    );
    let k = p.kernel(m, "sum_partials");
    let grid = p.triplet_param("grid", [offsets.div_ceil(64), 1, 1]);
    let blk = p.triplet_param("block", [64, 1, 1]);
    let every = p.schedule_param("every", 1, 0);
    let tiles_p = p.int_param("numTiles", tiles as i64);
    let offs_p = p.int_param("numOffsets", offsets as i64);
    p.copy("h2d", h_part, d_part, every);
    p.exec(
        "sum_partials",
        k,
        grid,
        blk,
        None,
        vec![
            Arg::Mem(d_part),
            Arg::Mem(d_out),
            Arg::Param(tiles_p),
            Arg::Param(offs_p),
        ],
        every,
    );
    p.copy("d2h", d_out, h_out, every);
    let vals: Vec<f32> = (0..tiles * offsets)
        .map(|i| ((i * 7) % 101) as f32 * 0.25)
        .collect();
    p.set_host_data(h_part, &f32_bytes(&vals));
    (p, m, h_out)
}

/// PIV SSD correlation (`piv_ssd`), register-blocking and mask geometry
/// specialized.
fn piv_pipeline(c: Arc<Compiler>) -> (Pipeline, ResId, ResId) {
    let (img_w, mask, offs, rb, threads) = (64u32, 16u32, 8u32, 4u32, 64u32);
    let num_offsets = offs * offs; // 64
    let (masks_x, masks_y) = (2u32, 2u32);
    let num_masks = masks_x * masks_y;
    let mut p = Pipeline::new(c, 16 << 20);
    p.set_integrity(Some(integrity()));
    let img_ext = p.extent_param("img", [img_w * img_w, 1, 1], 4);
    let sc_ext = p.extent_param("scores", [num_masks * num_offsets, 1, 1], 4);
    let h_a = p.host_memory(img_ext);
    let h_b = p.host_memory(img_ext);
    let d_a = p.global_memory(img_ext);
    let d_b = p.global_memory(img_ext);
    let d_sc = p.global_memory(sc_ext);
    let h_sc = p.host_memory(sc_ext);
    let m = p.module(
        piv::KERNELS,
        vec![
            ("RB", MacroBinding::Literal(rb.to_string())),
            ("THREADS", MacroBinding::Literal(threads.to_string())),
            ("MASK_W", MacroBinding::Literal(mask.to_string())),
            ("MASK_H", MacroBinding::Literal(mask.to_string())),
            ("OFFS_W", MacroBinding::Literal(offs.to_string())),
        ],
    );
    let k = p.kernel(m, "piv_ssd");
    let grid = p.triplet_param("grid", [num_masks, num_offsets.div_ceil(rb), 1]);
    let blk = p.triplet_param("block", [threads, 1, 1]);
    let every = p.schedule_param("every", 1, 0);
    let args: Vec<Arg> = {
        let ints = [
            ("imgW", img_w),
            ("maskW", mask),
            ("maskH", mask),
            ("offsW", offs),
            ("numOffsets", num_offsets),
            ("masksX", masks_x),
            ("stepX", mask),
            ("stepY", mask),
            ("marginX", offs / 2),
            ("marginY", offs / 2),
            ("rb", rb),
        ];
        let mut v = vec![Arg::Mem(d_a), Arg::Mem(d_b), Arg::Mem(d_sc)];
        for (name, val) in ints {
            let id = p.int_param(name, val as i64);
            v.push(Arg::Param(id));
        }
        v
    };
    p.copy("h2d-a", h_a, d_a, every);
    p.copy("h2d-b", h_b, d_b, every);
    p.exec("piv_ssd", k, grid, blk, None, args, every);
    p.copy("d2h", d_sc, h_sc, every);
    let a: Vec<f32> = (0..img_w * img_w)
        .map(|i| ((i * 13) % 251) as f32 * 0.125)
        .collect();
    let b: Vec<f32> = (0..img_w * img_w)
        .map(|i| ((i * 13 + 29) % 251) as f32 * 0.125)
        .collect();
    p.set_host_data(h_a, &f32_bytes(&a));
    p.set_host_data(h_b, &f32_bytes(&b));
    (p, m, h_sc)
}

/// Cone-beam backprojection (`backproject`), geometry specialized; the
/// volume accumulates in place across iterations and the projection
/// geometry lives in constant memory.
fn bp_pipeline(c: Arc<Compiler>) -> (Pipeline, ResId, ResId) {
    let (vol_n, det, ppl, zb) = (16u32, 16u32, 4u32, 4u32);
    let mut p = Pipeline::new(c, 16 << 20);
    p.set_integrity(Some(integrity()));
    let proj_ext = p.extent_param("proj", [ppl * det * det, 1, 1], 4);
    let vol_ext = p.extent_param("vol", [vol_n * vol_n * vol_n, 1, 1], 4);
    let geo_ext = p.extent_param("geo", [ppl * 2, 1, 1], 4);
    let h_proj = p.host_memory(proj_ext);
    let d_proj = p.global_memory(proj_ext);
    let d_vol = p.global_memory(vol_ext);
    let h_vol = p.host_memory(vol_ext);
    let h_geo = p.host_memory(geo_ext);
    let m = p.module(
        ks_apps::backproj::KERNELS,
        vec![
            ("PPL", MacroBinding::Literal(ppl.to_string())),
            ("ZB", MacroBinding::Literal(zb.to_string())),
            ("VOL_N", MacroBinding::Literal(vol_n.to_string())),
        ],
    );
    let k = p.kernel(m, "backproject");
    let c_geo = p.constant_memory(m, "projGeo");
    let grid = p.triplet_param("grid", [vol_n / 8, vol_n / 8, vol_n / zb]);
    let blk = p.triplet_param("block", [8, 8, 1]);
    let every = p.schedule_param("every", 1, 0);
    let once = p.schedule_param("once", 1_000_000, 0);
    let int_args = [
        ("volN", vol_n as i64),
        ("detU", det as i64),
        ("detV", det as i64),
        ("ppl", ppl as i64),
        ("zb", zb as i64),
        ("z0", 0),
    ];
    let float_args = [
        ("sid", 40.0),
        ("sdd", 80.0),
        ("halfN", 8.0),
        ("halfU", 8.0),
        ("halfV", 8.0),
    ];
    let mut args = vec![Arg::Mem(d_proj), Arg::Mem(d_vol)];
    for (name, v) in int_args {
        let id = p.int_param(name, v);
        args.push(Arg::Param(id));
    }
    for (name, v) in float_args {
        let id = p.float_param(name, v);
        args.push(Arg::Param(id));
    }
    p.copy("geo2const", h_geo, c_geo, once);
    p.copy("h2d", h_proj, d_proj, every);
    p.exec("backproject", k, grid, blk, None, args, every);
    p.copy("d2h", d_vol, h_vol, every);
    let proj: Vec<f32> = (0..ppl * det * det)
        .map(|i| ((i * 11) % 127) as f32 * 0.5)
        .collect();
    let geo: Vec<f32> = (0..ppl)
        .flat_map(|pi| {
            let theta = pi as f32 * 0.7;
            [theta.cos(), theta.sin()]
        })
        .collect();
    p.set_host_data(h_proj, &f32_bytes(&proj));
    p.set_host_data(h_geo, &f32_bytes(&geo));
    (p, m, h_vol)
}

type Builder = fn(Arc<Compiler>) -> (Pipeline, ResId, ResId);

/// Refresh + run one pipeline; returns (bound key, final output bytes,
/// stats, violations).
fn drive(
    builder: Builder,
) -> (
    gpu_pf::BoundKey,
    Vec<u8>,
    gpu_pf::IntegrityStats,
    Vec<gpu_pf::IntegrityViolation>,
) {
    let (mut p, m, h_out) = builder(compiler());
    p.refresh().expect("refresh");
    let key = p.module_bound_key(m).expect("bound key").clone();
    p.run(ITERS).expect("run");
    (
        key,
        p.host_data(h_out).to_vec(),
        p.integrity_stats(),
        p.integrity_violations().to_vec(),
    )
}

fn flip_drill(seed: u64) {
    let drills: [(&str, Builder); 3] = [
        ("template_match", tm_pipeline),
        ("piv", piv_pipeline),
        ("backproj", bp_pipeline),
    ];

    // Fault-free pass: capture reference outputs and the per-variant
    // cache keys the flip rules will target.
    let mut clean = Vec::new();
    let mut clean_violations = 0u64;
    for (name, b) in drills {
        let (key, out, stats, violations) = drive(b);
        clean_violations += stats.violations;
        println!(
            "clean `{name}`: checks={} witness_launches={} violations={}",
            stats.checks,
            stats.witness_launches,
            violations.len()
        );
        clean.push((name, key, out));
    }
    assert_eq!(
        clean_violations, 0,
        "fault-free pass must be violation-free"
    );
    println!("clean pass: violations=0 across {} pipelines", clean.len());

    // Faulted pass: one silent flip per pipeline, keyed to exactly its
    // specialized variant (witness and vote launches carry the generic
    // key and stay clean), firing on the second launch.
    let mut plan = FaultPlan::new(seed);
    for (_, key, _) in &clean {
        plan = plan.rule(FaultRule::new(FaultKind::SilentFlip, Target::Key(key.lo64)).nth(2));
    }
    let plan = Arc::new(plan);
    ks_fault::install(plan.clone());

    let mut detected = 0u64;
    let mut recovered = 0u64;
    let mut identical = 0usize;
    for (i, (name, b)) in drills.iter().enumerate() {
        let (key, out, stats, violations) = drive(*b);
        assert_eq!(
            key.fingerprint, clean[i].1.fingerprint,
            "variant key must be stable across passes"
        );
        detected += stats.violations;
        recovered += stats.recovered;
        let same = out == clean[i].2;
        if same {
            identical += 1;
        }
        let transient = violations
            .iter()
            .filter(|v| v.verdict == Verdict::TransientFlip)
            .count();
        println!(
            "faulted `{name}`: violations={} transient={} recovered={} \
             reexecutions={} outputs_match_clean={}",
            stats.violations, transient, stats.recovered, stats.reexecutions, same
        );
    }
    ks_fault::clear();

    println!("\n== fault event log (seed {seed}) ==");
    print!("{}", plan.event_log());
    println!("injected: {} faults", plan.injected_count());

    assert_eq!(plan.injected_count(), 3, "one flip per pipeline");
    assert_eq!(detected, 3);
    assert_eq!(recovered, 3);
    assert_eq!(identical, 3);
    println!(
        "\nsdc drill: pipelines 3/3, injected 3, detected 3, recovered 3, \
         outputs byte-identical to fault-free run"
    );
}

/// The two store-scrub variants: one gets its payload rotted, one stays
/// intact.
fn scrub_defines() -> (Defines, Defines) {
    (
        Defines::new().def("NUM_TILES", 8),
        Defines::new().def("NUM_TILES", 4),
    )
}

fn scrub_drill(dir: &str) {
    let (rot, keep) = scrub_defines();
    let c = Compiler::new(DeviceConfig::tesla_c1060())
        .with_store(dir)
        .expect("attach store");
    c.compile(template_match::KERNELS, &rot).expect("compile");
    c.compile(template_match::KERNELS, &keep).expect("compile");
    let hex = c.cache_key(template_match::KERNELS, &rot).to_hex();
    drop(c);

    // Rot one payload byte. The record header (magic, version,
    // fingerprint, length) stays intact, so the fast load-path header
    // check cannot see it — only the full-checksum scrub can.
    let path = std::path::Path::new(dir)
        .join(&hex[..2])
        .join(format!("{hex}.ksb"));
    let mut bytes = std::fs::read(&path).expect("read record");
    *bytes.last_mut().expect("non-empty record") ^= 0x40;
    std::fs::write(&path, &bytes).expect("write rotted record");

    // Attach-time scrub: the rotted record is caught and quarantined
    // before the load path can ever serve it.
    let (c, report) = Compiler::new(DeviceConfig::tesla_c1060())
        .with_store_scrubbed(dir)
        .expect("scrubbed attach");
    println!("{report}");
    assert_eq!(report.scanned, 2);
    assert_eq!(report.quarantined.len(), 1);
    assert!(!path.exists(), "rotted record must leave the fanout");

    // The quarantined key recompiles cleanly (a miss, then written
    // through) — no store error ever surfaces to the compile path.
    c.compile(template_match::KERNELS, &rot).expect("recompile");
    let s = c.cache_stats();
    assert_eq!(s.store_errors, 0);
    println!(
        "scrub drill: scanned=2 quarantined=1 recompiled store_errors={}",
        s.store_errors
    );
}

fn warm_start(dir: &str) {
    // Fresh process, same store: the scrub finds nothing left to
    // quarantine and both variants warm-start from disk.
    let (rot, keep) = scrub_defines();
    let (c, report) = Compiler::new(DeviceConfig::tesla_c1060())
        .with_store_scrubbed(dir)
        .expect("scrubbed attach");
    c.compile(template_match::KERNELS, &rot).expect("compile");
    c.compile(template_match::KERNELS, &keep).expect("compile");
    let s = c.cache_stats();
    assert_eq!(report.quarantined.len(), 0);
    assert_eq!(s.disk_hits, 2);
    assert_eq!(s.store_errors, 0);
    println!(
        "warm start: scanned={} quarantined=0 disk_hits={} store_errors={}",
        report.scanned, s.disk_hits, s.store_errors
    );
}

/// Measure the per-iteration cost of integrity checking (not part of
/// the deterministic CI drill — wall-clock timings vary by machine).
fn overhead() {
    let iters = 200u64;
    let configs: [(&str, Option<IntegrityConfig>); 3] = [
        ("off", None),
        (
            "period=16",
            Some(IntegrityConfig {
                witness_period: 16,
                ..IntegrityConfig::default()
            }),
        ),
        (
            "period=1",
            Some(IntegrityConfig {
                witness_period: 1,
                ..IntegrityConfig::default()
            }),
        ),
    ];
    let drills: [(&str, Builder); 3] = [
        ("template_match", tm_pipeline),
        ("piv", piv_pipeline),
        ("backproj", bp_pipeline),
    ];
    for (name, b) in drills {
        for (label, cfg) in &configs {
            let (mut p, _, _) = b(compiler());
            p.set_integrity(*cfg);
            p.refresh().expect("refresh");
            p.run(1).expect("warmup"); // compile + first-touch outside the clock
            let t0 = std::time::Instant::now();
            p.run(iters).expect("run");
            let us = t0.elapsed().as_micros() as u64 / u128::from(iters) as u64;
            let s = p.integrity_stats();
            println!(
                "overhead `{name}` integrity={label}: {us} us/iter \
                 (witness_launches={}, violations={})",
                s.witness_launches, s.violations
            );
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(dir) = arg_str(&args, "--scrub-drill") {
        scrub_drill(&dir);
        return;
    }
    if args.iter().any(|a| a == "--overhead") {
        overhead();
        return;
    }
    if let Some(dir) = arg_str(&args, "--warm-start") {
        warm_start(&dir);
        return;
    }
    let seed = arg_u64(&args, "--seed").unwrap_or(77);
    println!("sdc drill: seed={seed}, {ITERS} iterations per pipeline, witness every launch");
    flip_drill(seed);
}
