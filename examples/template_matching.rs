//! Template matching as a GPU-PF streaming pipeline (§4.4.1 + §5.1).
//!
//! Frames stream through the pipeline via a moving subset window; the
//! numerator/summation/stats/normalize kernels run each iteration; tile
//! dimensions are bound to pipeline parameters, so changing them triggers
//! exactly one module recompilation at the next refresh. Appendix-G-style
//! logging is routed to stderr.
//!
//! Run with: `cargo run --release --example template_matching`

#![allow(clippy::needless_range_loop)]

use gpu_pf::{Arg, MacroBinding, Pipeline};
use ks_apps::synth;
use ks_apps::template_match::{tile_regions, KERNELS};
use ks_core::Compiler;
use ks_sim::DeviceConfig;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (frame_w, frame_h) = (256usize, 192usize);
    let (templ_w, templ_h) = (48usize, 36usize);
    let (shift_w, shift_h) = (16usize, 16usize);
    let num_offsets = shift_w * shift_h;
    let frames = 4usize;
    let (tile_w, tile_h, threads) = (16u32, 12u32, 64u32);

    // Synthesize a short frame sequence embedding the *same* template at a
    // drifting offset, so every frame has a different true position.
    let base = synth::match_scenario(frame_w, frame_h, templ_w, templ_h, shift_w, shift_h, 9);
    let mut frame_data: Vec<f32> = Vec::new();
    let mut truths = Vec::new();
    for f in 0..frames {
        let mut frame = synth::textured_image(frame_w, frame_h, 100 + f as u64);
        let truth = ((2 + 3 * f) % shift_w, (11 + 2 * f) % shift_h);
        for y in 0..templ_h {
            for x in 0..templ_w {
                frame.set(truth.0 + x, truth.1 + y, base.template.at(x, y));
            }
        }
        truths.push(truth);
        frame_data.extend_from_slice(&frame.data);
    }
    let tmean = base.template.mean();
    let templc: Vec<f32> = base.template.data.iter().map(|v| v - tmean).collect();
    let denom_a: f32 = templc.iter().map(|v| v * v).sum();

    let regions = tile_regions(templ_w as u32, templ_h as u32, tile_w, tile_h);
    let total_tiles: u32 = regions.iter().map(|r| r.num_tiles()).sum();
    assert_eq!(regions.len(), 1, "example uses an exact tiling for brevity");
    let region = regions[0];

    // --- specification phase ---
    let compiler = Arc::new(Compiler::new(DeviceConfig::tesla_c2070()));
    let mut p = Pipeline::new(compiler, 128 << 20);
    p.set_logger(Box::new(std::io::stderr()));

    // Parameters (Table 4.1 types).
    let tile_w_p = p.int_param("TILE_W", tile_w as i64);
    let tile_h_p = p.int_param("TILE_H", tile_h as i64);
    let shift_w_p = p.int_param("SHIFT_W", shift_w as i64);
    let ntiles_p = p.int_param("NUM_TILES", total_tiles as i64);
    let templ_w_p = p.int_param("TEMPL_W", templ_w as i64);
    let templ_h_p = p.int_param("TEMPL_H", templ_h as i64);
    let threads_p = p.int_param("THREADS", threads as i64);

    let frame_px = frame_w * frame_h;
    let all_frames_ext = p.extent_param("frames", [(frame_px * frames) as u32, 1, 1], 4);
    let _frame_ext = p.extent_param("frame", [frame_px as u32, 1, 1], 4);
    let templ_ext = p.extent_param("templc", [(templ_w * templ_h) as u32, 1, 1], 4);
    let partial_ext = p.extent_param("partial", [total_tiles * num_offsets as u32, 1, 1], 4);
    let offs_ext = p.extent_param("offsets", [num_offsets as u32, 1, 1], 4);

    // Resources: the module is specialized from the bound parameters.
    let module = p.module(
        KERNELS,
        vec![
            ("TILE_W", MacroBinding::Param(tile_w_p)),
            ("TILE_H", MacroBinding::Param(tile_h_p)),
            ("SHIFT_W", MacroBinding::Param(shift_w_p)),
            ("NUM_TILES", MacroBinding::Param(ntiles_p)),
            ("TEMPL_W", MacroBinding::Param(templ_w_p)),
            ("TEMPL_H", MacroBinding::Param(templ_h_p)),
            ("THREADS", MacroBinding::Param(threads_p)),
        ],
    );
    let k_numer = p.kernel(module, "numerator_tiles");
    let k_sum = p.kernel(module, "sum_partials");
    let k_stats = p.kernel(module, "window_stats");
    let k_norm = p.kernel(module, "normalize");

    let host_frames = p.host_memory(all_frames_ext);
    let dev_frames = p.global_memory(all_frames_ext);
    let host_templ = p.host_memory(templ_ext);
    let dev_templ = p.global_memory(templ_ext);
    let dev_partial = p.global_memory(partial_ext);
    let dev_numer = p.global_memory(offs_ext);
    let dev_sums = p.global_memory(offs_ext);
    let dev_sumsq = p.global_memory(offs_ext);
    let dev_ncc = p.global_memory(offs_ext);
    let host_ncc = p.host_memory(offs_ext);

    // Moving window: one frame per pipeline iteration.
    let window = p.subset_param("frame-window", 0, frame_px as u64, frame_px as i64, 0);
    let dev_frame = p.subset(dev_frames, window);

    // Schedules: uploads once, everything else each iteration.
    let once = p.schedule_param("once", u64::MAX >> 1, 0);
    let every = p.schedule_param("every", 1, 0);

    // Scalar kernel arguments.
    let a_frame_w = p.int_param("frameW", frame_w as i64);
    let a_shift_w = p.int_param("shiftW", shift_w as i64);
    let a_noffs = p.int_param("numOffsets", num_offsets as i64);
    let a_templ_w = p.int_param("templW", templ_w as i64);
    let a_templ_h = p.int_param("templH", templ_h as i64);
    let a_tile_w = p.int_param("tileW", tile_w as i64);
    let a_tile_h = p.int_param("tileH", tile_h as i64);
    let a_tiles_x = p.int_param("tilesX", region.tiles_x as i64);
    let a_zero = p.int_param("zero", 0);
    let a_ntiles = p.int_param("numTiles", total_tiles as i64);
    let a_inv_n = p.float_param("invN", 1.0 / (templ_w * templ_h) as f64);
    let a_denom = p.float_param("denomA", denom_a as f64);

    let oblocks = (num_offsets as u32).div_ceil(threads);
    let g_numer = p.triplet_param("g-numer", [oblocks, total_tiles, 1]);
    let g_lin = p.triplet_param("g-lin", [oblocks, 1, 1]);
    let g_stats = p.triplet_param("g-stats", [num_offsets as u32, 1, 1]);
    let blk = p.triplet_param("block", [threads, 1, 1]);

    // Actions, in pipeline order (Table 4.4).
    p.copy("upload frames", host_frames, dev_frames, once);
    p.copy("upload template", host_templ, dev_templ, once);
    p.exec(
        "numerator",
        k_numer,
        g_numer,
        blk,
        None,
        vec![
            Arg::Mem(dev_frame),
            Arg::Mem(dev_templ),
            Arg::Mem(dev_partial),
            Arg::Param(a_frame_w),
            Arg::Param(a_shift_w),
            Arg::Param(a_noffs),
            Arg::Param(a_templ_w),
            Arg::Param(a_tile_w),
            Arg::Param(a_tile_h),
            Arg::Param(a_tiles_x),
            Arg::Param(a_zero),
            Arg::Param(a_zero),
            Arg::Param(a_zero),
        ],
        every,
    );
    p.exec(
        "summation",
        k_sum,
        g_lin,
        blk,
        None,
        vec![
            Arg::Mem(dev_partial),
            Arg::Mem(dev_numer),
            Arg::Param(a_ntiles),
            Arg::Param(a_noffs),
        ],
        every,
    );
    p.exec(
        "window stats",
        k_stats,
        g_stats,
        blk,
        None,
        vec![
            Arg::Mem(dev_frame),
            Arg::Mem(dev_sums),
            Arg::Mem(dev_sumsq),
            Arg::Param(a_frame_w),
            Arg::Param(a_shift_w),
            Arg::Param(a_noffs),
            Arg::Param(a_templ_w),
            Arg::Param(a_templ_h),
        ],
        every,
    );
    p.exec(
        "normalize",
        k_norm,
        g_lin,
        blk,
        None,
        vec![
            Arg::Mem(dev_numer),
            Arg::Mem(dev_sums),
            Arg::Mem(dev_sumsq),
            Arg::Mem(dev_ncc),
            Arg::Param(a_noffs),
            Arg::Param(a_inv_n),
            Arg::Param(a_denom),
        ],
        every,
    );
    p.copy("download ncc", dev_ncc, host_ncc, every);

    // --- refresh + execution phases ---
    p.refresh()?;
    p.set_host_f32(host_frames, &frame_data);
    p.set_host_f32(host_templ, &templc);
    // Re-upload after filling host buffers (the `once` copies above fired
    // against empty buffers only if we had run; we have not yet).

    println!("frame |  found  |  truth  | ncc     | kernel ms");
    for f in 0..frames {
        p.run(1)?;
        let ncc = p.host_f32(host_ncc);
        let (mut bi, mut bv) = (0usize, f32::MIN);
        for (i, v) in ncc.iter().enumerate() {
            if *v > bv {
                bv = *v;
                bi = i;
            }
        }
        let found = (bi % shift_w, bi / shift_w);
        let iter_ms: f64 = p
            .timings()
            .iter()
            .filter(|t| t.iteration == f as u64 && !t.label.contains("upload"))
            .map(|t| t.sim_ms)
            .sum();
        println!(
            "{f:5} | ({:2},{:2}) | ({:2},{:2}) | {bv:.4}  | {iter_ms:.4}",
            found.0, found.1, truths[f].0, truths[f].1
        );
        assert_eq!(found, truths[f], "frame {f} must locate the template");
    }
    println!("\ntotal simulated GPU time: {:.4} ms", p.total_sim_ms());
    Ok(())
}
