//! Tiered execution: serve the generic kernel immediately, specialize
//! in the background, hot-swap on promotion.
//!
//! Three single-kernel pipelines share one compiler in
//! [`gpu_pf::RefreshMode::Tiered`]. Each `refresh()` binds the generic
//! (runtime-argument) binary without waiting for the specialized
//! compile, so the first launch is served straight away while a
//! background worker builds the `-D` specialization; the pipeline
//! hot-swaps to it between iterations. The example proves the three
//! core properties the CI tier greps for:
//!
//! 1. the first launch runs on the generic binary (tier is still
//!    `Promoting` when `run()` starts) and computes correct results;
//! 2. every module eventually reaches `Specialized`, and re-dirtying a
//!    module mid-promotion supersedes the stale ticket rather than
//!    swapping in an outdated binary;
//! 3. outputs are byte-identical to the same pipelines run in blocking
//!    mode — specialization is a latency strategy, never a semantics
//!    change.
//!
//! Run with: `cargo run --release --example tiered_execution`

use gpu_pf::{Arg, MacroBinding, Pipeline, RefreshMode, ResId, Tier};
use ks_core::Compiler;
use ks_sim::DeviceConfig;
use std::sync::Arc;

const SCALE: &str = r#"
#ifndef FACTOR
#define FACTOR factor
#endif
__global__ void scale(int* x, int* y, int n, int factor) {
    int i = (int)(blockIdx.x * blockDim.x + threadIdx.x);
    if (i < n) {
        y[i] = x[i] * FACTOR;
    }
}
"#;

const SHIFT: &str = r#"
#ifndef OFFSET
#define OFFSET offset
#endif
__global__ void shiftk(int* x, int* y, int n, int offset) {
    int i = (int)(blockIdx.x * blockDim.x + threadIdx.x);
    if (i < n) {
        y[i] = x[i] + OFFSET;
    }
}
"#;

const BLEND: &str = r#"
#ifndef WEIGHT
#define WEIGHT w
#endif
__global__ void blend(int* x, int* y, int n, int w) {
    int i = (int)(blockIdx.x * blockDim.x + threadIdx.x);
    if (i < n) {
        y[i] = x[i] * WEIGHT + i;
    }
}
"#;

const N: usize = 256;

struct Built {
    pipeline: Pipeline,
    module: ResId,
    hx: ResId,
    hy: ResId,
    param: gpu_pf::ParamId,
}

/// One single-kernel pipeline: upload, exec, download.
fn build(
    compiler: &Arc<Compiler>,
    mode: RefreshMode,
    source: &str,
    kernel: &str,
    macro_name: &str,
    value: i64,
) -> Built {
    let mut p = Pipeline::new(compiler.clone(), 16 << 20);
    p.set_refresh_mode(mode);
    let param = p.int_param(macro_name, value);
    let n_p = p.int_param("n", N as i64);
    let ext = p.extent_param("buf", [N as u32, 1, 1], 4);
    let module = p.module(source, vec![(macro_name, MacroBinding::Param(param))]);
    let k = p.kernel(module, kernel);
    let hx = p.host_memory(ext);
    let dx = p.global_memory(ext);
    let dy = p.global_memory(ext);
    let hy = p.host_memory(ext);
    let every = p.schedule_param("every", 1, 0);
    let grid = p.triplet_param("grid", [(N as u32).div_ceil(64), 1, 1]);
    let blk = p.triplet_param("block", [64, 1, 1]);
    p.copy("upload", hx, dx, every);
    p.exec(
        "exec",
        k,
        grid,
        blk,
        None,
        vec![
            Arg::Mem(dx),
            Arg::Mem(dy),
            Arg::Param(n_p),
            Arg::Param(param),
        ],
        every,
    );
    p.copy("download", dy, hy, every);
    Built {
        pipeline: p,
        module,
        hx,
        hy,
        param,
    }
}

fn output(b: &Built) -> Vec<i32> {
    b.pipeline
        .try_host_data(b.hy)
        .expect("host data")
        .chunks_exact(4)
        .map(|c| i32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

fn main() {
    let compiler = Arc::new(Compiler::new(DeviceConfig::tesla_c2070()));
    let xs: Vec<i32> = (0..N as i32).map(|i| (i * 13) % 97).collect();
    let bytes: Vec<u8> = xs.iter().flat_map(|v| v.to_le_bytes()).collect();

    type Kernel = (&'static str, &'static str, &'static str, i64);
    let kernels: [Kernel; 3] = [
        (SCALE, "scale", "FACTOR", 7),
        (SHIFT, "shiftk", "OFFSET", -5),
        (BLEND, "blend", "WEIGHT", 3),
    ];

    let mut specialized = 0usize;
    let mut first_launch_on_generic = 0usize;
    let mut parity_ok = true;

    for (source, kernel, macro_name, value) in kernels {
        // Tiered: refresh must return with a servable generic binary
        // while the specialization is still in flight.
        let mut t = build(
            &compiler,
            RefreshMode::Tiered,
            source,
            kernel,
            macro_name,
            value,
        );
        t.pipeline.refresh().expect("tiered refresh");
        let tier_at_first_launch = t.pipeline.module_tier(t.module).expect("module tier");
        if tier_at_first_launch == Tier::Promoting {
            first_launch_on_generic += 1;
        }
        t.pipeline.try_set_host_data(t.hx, &bytes).expect("upload");
        t.pipeline.run(2).expect("tiered run");
        let tiered_first = output(&t);

        // Drain the promotion and run again on the specialized binary.
        t.pipeline.wait_promotions();
        if t.pipeline.module_tier(t.module) == Some(Tier::Specialized) {
            specialized += 1;
        }
        t.pipeline.run(1).expect("post-promotion run");
        let tiered_promoted = output(&t);

        // Blocking reference: same pipeline, same inputs.
        let mut b = build(
            &compiler,
            RefreshMode::Blocking,
            source,
            kernel,
            macro_name,
            value,
        );
        b.pipeline.refresh().expect("blocking refresh");
        b.pipeline.try_set_host_data(b.hx, &bytes).expect("upload");
        b.pipeline.run(1).expect("blocking run");
        let blocking = output(&b);

        let ok = tiered_first == blocking && tiered_promoted == blocking;
        parity_ok &= ok;
        println!(
            "kernel `{kernel}`: first launch tier {tier_at_first_launch:?}, \
             final tier {:?}, parity {}",
            t.pipeline.module_tier(t.module).expect("module tier"),
            if ok { "ok" } else { "MISMATCH" }
        );
    }

    // Supersede drill: re-dirty a module while its promotion is still in
    // flight. The stale ticket must be cancelled — the eventual swap
    // reflects the *new* parameter value, never the outdated one.
    let mut s = build(
        &compiler,
        RefreshMode::Tiered,
        SCALE,
        "scale",
        "FACTOR",
        1000,
    );
    s.pipeline.refresh().expect("tiered refresh");
    s.pipeline.set_int(s.param, 2000);
    s.pipeline.refresh().expect("re-dirtied refresh");
    s.pipeline.wait_promotions();
    s.pipeline.try_set_host_data(s.hx, &bytes).expect("upload");
    s.pipeline.run(1).expect("superseded run");
    let out = output(&s);
    let fresh = out.iter().zip(&xs).all(|(&y, &x)| y == x * 2000);
    let stats = s.pipeline.promotion_stats();
    println!(
        "supersede drill: superseded {} in-flight promotion(s), final tier {:?}, \
         swapped binary is {}",
        stats.superseded,
        s.pipeline.module_tier(s.module).expect("module tier"),
        if fresh { "fresh" } else { "STALE" }
    );

    println!("\n== promotion counters ==");
    let reg = ks_trace::registry();
    for name in [
        ks_trace::names::PF_PROMOTIONS,
        ks_trace::names::PF_PROMOTIONS_FAILED,
        ks_trace::names::PF_PROMOTIONS_SUPERSEDED,
        ks_trace::names::ASYNC_SPAWNED,
        ks_trace::names::ASYNC_COMPLETED,
        ks_trace::names::ASYNC_CANCELLED,
    ] {
        println!("{name} = {}", reg.counter_value(name));
    }

    println!(
        "\ntiered execution: modules specialized: {specialized}/3, \
         first launch on generic: {first_launch_on_generic}/3, \
         superseded: {}, parity: {}",
        stats.superseded,
        if parity_ok && fresh { "ok" } else { "FAILED" }
    );
    if specialized != 3
        || first_launch_on_generic != 3
        || !parity_ok
        || !fresh
        || stats.superseded != 1
    {
        std::process::exit(1);
    }
}
