//! Tracing and metrics walkthrough: compile and launch a small kernel
//! with span tracing enabled, then render what ks-trace observed —
//! the span tree (compile phases, per-pass optimization windows, the
//! launch), the process-wide metrics registry, and the exporters the
//! `ks-prof` binary builds on.
//!
//! Run with: `cargo run --release --example trace_profile`

use ks_core::{Compiler, Defines};
use ks_sim::{launch, DeviceConfig, DeviceState, KArg, LaunchDims, LaunchOptions};
use ks_trace::ExportFormat;

const SAXPY: &str = r#"
#ifndef N
#define N n
#endif
__global__ void saxpy(float* x, float* y, float a, int n) {
    int i = (int)(blockIdx.x * blockDim.x + threadIdx.x);
    if (i < N) { y[i] = a * x[i] + y[i]; }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Metrics counters are always live; span capture is opt-in.
    ks_trace::set_enabled(true);

    let dev = DeviceConfig::tesla_c2070();
    let compiler = Compiler::new(dev.clone());
    let n = 1024u32;

    // One miss, one hit — both visible as cache-lookup spans and in the
    // ks_core.cache.* counters.
    let bin = compiler.compile(SAXPY, Defines::new().def("N", n))?;
    let _again = compiler.compile(SAXPY, Defines::new().def("N", n))?;

    let mut st = DeviceState::new(dev, 16 << 20);
    let p_x = st.global.alloc(n as u64 * 4)?;
    let p_y = st.global.alloc(n as u64 * 4)?;
    let xs: Vec<f32> = (0..n).map(|i| i as f32).collect();
    st.global.write_f32_slice(p_x, &xs)?;
    st.global.write_f32_slice(p_y, &vec![1.0; n as usize])?;
    launch(
        &mut st,
        &bin.module,
        "saxpy",
        LaunchDims::linear(n / 128, 128),
        &[
            KArg::Ptr(p_x),
            KArg::Ptr(p_y),
            KArg::F32(2.0),
            KArg::I32(n as i32),
        ],
        LaunchOptions::default(),
    )?;

    let spans = ks_trace::drain_spans();
    let exporter = ExportFormat::Text.exporter();
    println!("── span tree ──");
    print!("{}", exporter.spans(&spans));
    println!("\n── metrics registry ──");
    print!("{}", exporter.metrics(&ks_trace::registry().snapshot()));
    println!("\n(try `cargo run --bin ks-prof -- --kernel template_match --export jsonl`)");
    Ok(())
}
