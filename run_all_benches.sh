#!/bin/bash
# Regenerate every table and figure (full problem sizes).
set -e
cd "$(dirname "$0")"
for b in table_5_2 first_launch_latency tables_6_1_to_6_9 table_6_10 table_6_11 table_6_12 table_6_13 table_6_14 table_6_15 \
         table_6_16 table_6_17 table_6_18 table_6_19 table_6_20 table_6_21 \
         table_6_22 fig_6_1 fig_6_2 ablation_passes ablation_timing; do
    echo "### $b"
    cargo run --release -q -p ks-bench --bin "$b" "$@"
done
