//! Property tests on compiler and simulator invariants that don't depend
//! on any particular application:
//!
//! * every module that compiles also verifies, on both devices, for random
//!   specialization values;
//! * register allocation never assigns two simultaneously-live virtual
//!   registers to the same physical register (checked by differential
//!   execution through a register-pressure-heavy kernel);
//! * occupancy is monotone in resource usage;
//! * the preprocessor's command-line defines override in-source defaults.

use ks_core::{Compiler, Defines};
use ks_sim::{launch, occupancy, DeviceConfig, DeviceState, KArg, LaunchDims, LaunchOptions};
use proptest::prelude::*;

/// A kernel with tunable register pressure: KREGS live accumulators.
const PRESSURE: &str = r#"
#ifndef KREGS
#define KREGS 4
#endif
__global__ void pressure(float* in, float* out, int n) {
    int i = (int)(blockIdx.x * blockDim.x + threadIdx.x);
    float acc[KREGS];
    for (int r = 0; r < KREGS; r++) { acc[r] = in[(i + r) % n]; }
    for (int it = 0; it < 3; it++) {
        for (int r = 0; r < KREGS; r++) { acc[r] = acc[r] * 1.5f + 0.25f; }
    }
    float total = 0.0f;
    for (int r = 0; r < KREGS; r++) { total += acc[r]; }
    out[i] = total;
}
"#;

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Random specializations of the pressure kernel verify and execute
    /// identically to the host oracle — i.e. linear-scan register
    /// allocation with heavy pressure never corrupts live values.
    #[test]
    fn regalloc_preserves_live_values(kregs in 1usize..24) {
        let compiler = Compiler::new(DeviceConfig::tesla_c1060());
        let bin = compiler
            .compile(PRESSURE, Defines::new().def("KREGS", kregs))
            .unwrap();
        let f = bin.module.function("pressure").unwrap();
        prop_assert!(ks_ir::verify_function(f).is_empty());
        // Register demand grows with the accumulator count.
        prop_assert!(bin.regs_per_thread("pressure") as usize >= kregs.min(8));

        let n = 64usize;
        let mut st = DeviceState::new(DeviceConfig::tesla_c1060(), 8 << 20);
        let p_in = st.global.alloc((n * 4) as u64).unwrap();
        let p_out = st.global.alloc((n * 4) as u64).unwrap();
        let vals: Vec<f32> = (0..n).map(|i| (i % 9) as f32 * 0.5).collect();
        st.global.write_f32_slice(p_in, &vals).unwrap();
        launch(
            &mut st,
            &bin.module,
            "pressure",
            LaunchDims::linear(1, n as u32),
            &[KArg::Ptr(p_in), KArg::Ptr(p_out), KArg::I32(n as i32)],
            LaunchOptions::default(),
        )
        .unwrap();
        let out = st.global.read_f32_slice(p_out, n).unwrap();
        for (i, got) in out.iter().enumerate() {
            let mut expect = 0.0f32;
            for r in 0..kregs {
                let mut a = vals[(i + r) % n];
                for _ in 0..3 {
                    a = a * 1.5 + 0.25;
                }
                expect += a;
            }
            prop_assert!((got - expect).abs() < 1e-4, "thread {}: {} vs {}", i, got, expect);
        }
    }

    /// Occupancy never increases when a kernel consumes more registers or
    /// more shared memory, on either device.
    #[test]
    fn occupancy_monotone(
        threads_pow in 5u32..9,
        regs in 2u32..64,
        shared in 0u32..12288,
    ) {
        let threads = 1u32 << threads_pow;
        for dev in DeviceConfig::presets() {
            let base = occupancy(&dev, threads, regs, shared);
            let more_regs = occupancy(&dev, threads, regs + 4, shared);
            let more_shared = occupancy(&dev, threads, regs, shared + 1024);
            prop_assert!(more_regs.active_warps <= base.active_warps);
            prop_assert!(more_shared.active_warps <= base.active_warps);
        }
    }

    /// `-D NAME=value` overrides an in-source `#ifndef` default, matching
    /// nvcc semantics; the resulting constant lands in the PTX.
    #[test]
    fn command_line_defines_override_defaults(value in 2i64..4096) {
        let src = r#"
            #ifndef SCALE
            #define SCALE 1
            #endif
            __global__ void k(int* out) {
                out[threadIdx.x] = (int)threadIdx.x * SCALE;
            }
        "#;
        let compiler = Compiler::new(DeviceConfig::tesla_c2070());
        let default = compiler.compile(src, Defines::new()).unwrap();
        let custom = compiler.compile(src, Defines::new().def("SCALE", value)).unwrap();
        // Execute both; outputs must reflect the chosen scale.
        for (bin, scale) in [(&default, 1i64), (&custom, value)] {
            let mut st = DeviceState::new(DeviceConfig::tesla_c2070(), 4 << 20);
            let p = st.global.alloc(32 * 4).unwrap();
            launch(
                &mut st,
                &bin.module,
                "k",
                LaunchDims::linear(1, 32),
                &[KArg::Ptr(p)],
                LaunchOptions::default(),
            )
            .unwrap();
            let out = st.global.read_i32_slice(p, 32).unwrap();
            for (t, v) in out.iter().enumerate() {
                prop_assert_eq!(*v as i64, t as i64 * scale);
            }
        }
    }

    /// The whole front end + optimizer + verifier survives arbitrary
    /// whitespace and comment injection around a valid kernel.
    #[test]
    fn lexer_robust_to_trivia(pad in "[ \t\n]{0,20}", word in "[a-z]{1,8}") {
        let src = format!(
            "// comment {word}\n{pad}__global__ void k(int* o) {{{pad}o[0] = 1; /* {word} */{pad}}}"
        );
        let compiler = Compiler::new(DeviceConfig::tesla_c1060());
        let bin = compiler.compile(&src, Defines::new()).unwrap();
        prop_assert!(bin.module.function("k").is_some());
    }
}

/// Compile-time errors are reported, never panics, for a corpus of
/// malformed kernels.
#[test]
fn malformed_kernels_error_cleanly() {
    let cases = [
        "__global__ void k(int* o) { o[0] = ; }",
        "__global__ void k(int* o) { undeclared += 1; }",
        "__global__ void k(int* o) { o[0] = 1 }",
        "__global__ int k(int* o) { return 3; }",
        "#if 1\n__global__ void k(int* o) { o[0] = 1; }",
        "__global__ void k(int* o) { __shared__ float t[o]; }",
        "void k(int* o) { o[0] = 1; }",
        "__global__ void k(float f) { f[0] = 1.0f; }",
        "__global__ void k(int* o) { for (;;) {} }", // no-cond loop parses; body empty → infinite: still compiles
    ];
    let compiler = Compiler::new(DeviceConfig::tesla_c1060());
    for (i, src) in cases.iter().enumerate() {
        // Must not panic; the last case legitimately compiles.
        let r = compiler.compile(src, Defines::new());
        if i < cases.len() - 1 {
            assert!(r.is_err(), "case {i} should fail: {src}");
        }
    }
}

/// §2.4/§4.1: the paper's C++-template route handles multiple *data
/// types*; the preprocessor route covers the same ground — a type-token
/// macro specializes one source for int or float elements.
#[test]
fn data_type_specialization_via_macro() {
    let src = r#"
        #ifndef DTYPE
        #define DTYPE float
        #endif
        __global__ void scale2(DTYPE* in, DTYPE* out, int n) {
            int i = (int)(blockIdx.x * blockDim.x + threadIdx.x);
            if (i < n) { out[i] = in[i] + in[i]; }
        }
    "#;
    let compiler = Compiler::new(DeviceConfig::tesla_c2070());

    // float instantiation (the default)
    let fbin = compiler.compile(src, Defines::new()).unwrap();
    let mut st = DeviceState::new(DeviceConfig::tesla_c2070(), 4 << 20);
    let pin = st.global.alloc(32 * 4).unwrap();
    let pout = st.global.alloc(32 * 4).unwrap();
    let vals: Vec<f32> = (0..32).map(|i| i as f32 * 0.5).collect();
    st.global.write_f32_slice(pin, &vals).unwrap();
    launch(
        &mut st,
        &fbin.module,
        "scale2",
        LaunchDims::linear(1, 32),
        &[KArg::Ptr(pin), KArg::Ptr(pout), KArg::I32(32)],
        LaunchOptions::default(),
    )
    .unwrap();
    let out = st.global.read_f32_slice(pout, 32).unwrap();
    for (i, v) in out.iter().enumerate() {
        assert_eq!(*v, i as f32);
    }

    // int instantiation from the same source
    let ibin = compiler
        .compile(src, Defines::new().def("DTYPE", "int"))
        .unwrap();
    let mut st = DeviceState::new(DeviceConfig::tesla_c2070(), 4 << 20);
    let pin = st.global.alloc(32 * 4).unwrap();
    let pout = st.global.alloc(32 * 4).unwrap();
    let ivals: Vec<i32> = (0..32).map(|i| i * 3).collect();
    st.global.write_i32_slice(pin, &ivals).unwrap();
    launch(
        &mut st,
        &ibin.module,
        "scale2",
        LaunchDims::linear(1, 32),
        &[KArg::Ptr(pin), KArg::Ptr(pout), KArg::I32(32)],
        LaunchOptions::default(),
    )
    .unwrap();
    let out = st.global.read_i32_slice(pout, 32).unwrap();
    for (i, v) in out.iter().enumerate() {
        assert_eq!(*v, i as i32 * 6);
    }
}
