//! Differential fuzzing of the whole constant-evaluation chain: random C
//! integer expressions are compiled (specialized — all operands literal)
//! and the folded result the kernel stores must equal an independent
//! host-side evaluation with C (wrapping 32-bit) semantics.
//!
//! This exercises lexer → preprocessor → parser → sema (usual arithmetic
//! conversions) → HIR fold → lowering → IR fold → interpreter in one shot.

use ks_core::{Compiler, Defines};
use ks_sim::{launch, DeviceConfig, DeviceState, KArg, LaunchDims, LaunchOptions};
use proptest::prelude::*;

/// A generated expression: source text plus its expected i32 value.
#[derive(Debug, Clone)]
struct GenExpr {
    text: String,
    value: i32,
}

fn leaf() -> impl Strategy<Value = GenExpr> {
    // Small literals; negative ones via unary minus at a higher level.
    (0i32..1000).prop_map(|v| GenExpr {
        text: v.to_string(),
        value: v,
    })
}

fn expr(depth: u32) -> BoxedStrategy<GenExpr> {
    if depth == 0 {
        return leaf().boxed();
    }
    let sub = expr(depth - 1);
    let sub2 = expr(depth - 1);
    prop_oneof![
        leaf(),
        (sub.clone(), sub2.clone(), 0usize..8).prop_map(|(a, b, op)| {
            match op {
                0 => GenExpr {
                    text: format!("({} + {})", a.text, b.text),
                    value: a.value.wrapping_add(b.value),
                },
                1 => GenExpr {
                    text: format!("({} - {})", a.text, b.text),
                    value: a.value.wrapping_sub(b.value),
                },
                2 => GenExpr {
                    text: format!("({} * {})", a.text, b.text),
                    value: a.value.wrapping_mul(b.value),
                },
                3 => {
                    // Guard division by zero with a +1'd divisor.
                    let d = b.value.wrapping_abs().wrapping_add(1).max(1);
                    GenExpr {
                        text: format!(
                            "({} / ({} + 1))",
                            a.text,
                            format_args!("({})", b.value.wrapping_abs())
                        ),
                        value: a.value.wrapping_div(d),
                    }
                }
                4 => GenExpr {
                    text: format!("({} & {})", a.text, b.text),
                    value: a.value & b.value,
                },
                5 => GenExpr {
                    text: format!("({} | {})", a.text, b.text),
                    value: a.value | b.value,
                },
                6 => GenExpr {
                    text: format!("({} ^ {})", a.text, b.text),
                    value: a.value ^ b.value,
                },
                _ => GenExpr {
                    text: format!("({} << {})", a.text, (b.value & 7)),
                    value: a.value.wrapping_shl((b.value & 7) as u32),
                },
            }
        }),
        sub2.prop_map(|a| GenExpr {
            text: format!("(-{})", a.text),
            value: a.value.wrapping_neg()
        }),
        (expr(depth - 1), expr(depth - 1), expr(depth - 1)).prop_map(|(c, a, b)| GenExpr {
            text: format!("(({}) != 0 ? {} : {})", c.text, a.text, b.text),
            value: if c.value != 0 { a.value } else { b.value },
        }),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn folded_expression_matches_host_semantics(e in expr(3)) {
        let src = format!(
            "__global__ void k(int* out) {{ out[threadIdx.x] = {}; }}",
            e.text
        );
        let compiler = Compiler::new(DeviceConfig::tesla_c1060());
        let bin = compiler.compile(&src, Defines::new()).unwrap();
        // The store operand must already be a folded immediate.
        let f = bin.module.function("k").unwrap();
        let imm = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .find_map(|i| match i {
                ks_ir::Inst::St { src: ks_ir::Operand::ImmI(v), .. } => Some(*v as i32),
                _ => None,
            });
        prop_assert_eq!(imm, Some(e.value), "static fold mismatch for {}", e.text);

        // And the executed kernel must store the same value.
        let mut st = DeviceState::new(DeviceConfig::tesla_c1060(), 1 << 20);
        let p = st.global.alloc(32 * 4).unwrap();
        launch(
            &mut st,
            &bin.module,
            "k",
            LaunchDims::linear(1, 32),
            &[KArg::Ptr(p)],
            LaunchOptions::default(),
        )
        .unwrap();
        let out = st.global.read_i32_slice(p, 32).unwrap();
        prop_assert!(out.iter().all(|v| *v == e.value));
    }

    /// The same expressions, but fed through `-D EXPR=<text>` instead of
    /// being inline — exercising macro substitution of full expressions.
    #[test]
    fn defined_expression_matches_host_semantics(e in expr(2)) {
        let src = "__global__ void k(int* out) { out[0] = EXPR; }";
        let compiler = Compiler::new(DeviceConfig::tesla_c1060());
        let bin = compiler
            .compile(src, Defines::new().def("EXPR", &e.text))
            .unwrap();
        let f = bin.module.function("k").unwrap();
        let imm = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .find_map(|i| match i {
                ks_ir::Inst::St { src: ks_ir::Operand::ImmI(v), .. } => Some(*v as i32),
                _ => None,
            });
        prop_assert_eq!(imm, Some(e.value), "macro fold mismatch for {}", e.text);
    }
}
