//! Cross-crate integration tests: the three applications end-to-end on
//! both simulated devices, checked against their CPU references, plus a
//! GPU-PF streaming pipeline with mid-stream re-specialization.

use gpu_pf::{Arg, MacroBinding, Pipeline};
use ks_apps::backproj::{self, BackprojImpl, BackprojProblem};
use ks_apps::piv::{self, PivImpl, PivKernel, PivProblem};
use ks_apps::template_match::{self, MatchImpl, MatchProblem};
use ks_apps::{synth, Variant};
use ks_core::Compiler;
use ks_sim::DeviceConfig;
use std::sync::Arc;

/// All three applications agree with their CPU oracles on both devices
/// under both compilation regimes.
#[test]
fn all_apps_all_devices_all_variants() {
    for dev in DeviceConfig::presets() {
        let compiler = Compiler::new(dev.clone());
        for variant in [Variant::Re, Variant::Sk] {
            // Template matching.
            let mp = MatchProblem {
                frame_w: 96,
                frame_h: 80,
                templ_w: 24,
                templ_h: 20,
                shift_w: 8,
                shift_h: 8,
                frames: 1,
            };
            let ms = synth::match_scenario(96, 80, 24, 20, 8, 8, 5);
            let mi = MatchImpl {
                tile_w: 8,
                tile_h: 8,
                threads: 64,
            };
            let out = template_match::run_gpu(&compiler, variant, &mp, &mi, &ms, true)
                .expect("template matching");
            let cpu = template_match::cpu_ncc(&mp, &ms.frame, &ms.template, 2);
            for (g, c) in out.ncc.iter().zip(&cpu) {
                assert!((g - c).abs() < 2e-3, "{} {variant}: {g} vs {c}", dev.name);
            }

            // PIV.
            let pp = PivProblem {
                img_w: 80,
                img_h: 80,
                mask_w: 16,
                mask_h: 16,
                step_x: 16,
                step_y: 16,
                offs_w: 7,
                offs_h: 7,
            };
            let ps = synth::piv_scenario(80, 80, (2, -1), 6);
            let pi = PivImpl { rb: 3, threads: 64 };
            let pout = piv::run_gpu(&compiler, variant, PivKernel::Basic, &pp, &pi, &ps, true)
                .expect("piv");
            let pcpu = piv::cpu_ssd(&pp, &ps, 2);
            for (g, c) in pout.scores.iter().zip(&pcpu) {
                assert!(
                    (g - c).abs() <= 1e-3 * c.abs().max(1.0),
                    "{} {variant}: {g} vs {c}",
                    dev.name
                );
            }

            // Backprojection.
            let bp = BackprojProblem {
                n: 12,
                num_proj: 4,
                det_u: 20,
                det_v: 20,
            };
            let bs = synth::ct_scenario(12, 4, 20, 20);
            let bi = BackprojImpl {
                block_x: 4,
                block_y: 4,
                ppl: 4,
                zb: 2,
            };
            let bout =
                backproj::run_gpu(&compiler, variant, &bp, &bi, &bs, true).expect("backprojection");
            let bcpu = backproj::cpu_backproject(&bp, &bs, 2);
            for (g, c) in bout.volume.iter().zip(&bcpu) {
                assert!(
                    (g - c).abs() <= 1e-3 * c.abs().max(1.0),
                    "{} {variant}: {g} vs {c}",
                    dev.name
                );
            }
        }
    }
}

/// A GPU-PF pipeline whose specialization parameter changes mid-stream:
/// the refresh recompiles exactly once, results track the new value, and
/// returning to a previous value hits the binary cache.
#[test]
fn gpu_pf_respecialization_mid_stream() {
    const SRC: &str = r#"
        #ifndef POWER
        #define POWER power
        #endif
        __global__ void pow_k(float* in, float* out, int power, int n) {
            int i = (int)(blockIdx.x * blockDim.x + threadIdx.x);
            if (i < n) {
                float acc = 1.0f;
                for (int p = 0; p < POWER; p++) { acc *= in[i]; }
                out[i] = acc;
            }
        }
    "#;
    let compiler = Arc::new(Compiler::new(DeviceConfig::tesla_c2070()));
    let mut p = Pipeline::new(compiler.clone(), 16 << 20);
    let n = 128u32;
    let power = p.int_param("POWER", 2);
    let ext = p.extent_param("buf", [n, 1, 1], 4);
    let host_in = p.host_memory(ext);
    let host_out = p.host_memory(ext);
    let dev_in = p.global_memory(ext);
    let dev_out = p.global_memory(ext);
    let m = p.module(SRC, vec![("POWER", MacroBinding::Param(power))]);
    let k = p.kernel(m, "pow_k");
    let every = p.schedule_param("e", 1, 0);
    let grid = p.triplet_param("g", [1, 1, 1]);
    let blk = p.triplet_param("b", [n, 1, 1]);
    let nparam = p.int_param("n", n as i64);
    p.copy("h2d", host_in, dev_in, every);
    p.exec(
        "pow",
        k,
        grid,
        blk,
        None,
        vec![
            Arg::Mem(dev_in),
            Arg::Mem(dev_out),
            Arg::Param(power),
            Arg::Param(nparam),
        ],
        every,
    );
    p.copy("d2h", dev_out, host_out, every);

    let vals: Vec<f32> = (0..n).map(|i| 1.0 + (i % 5) as f32 * 0.1).collect();
    p.refresh().unwrap();
    p.set_host_f32(host_in, &vals);
    p.run(1).unwrap();
    let sq = p.host_f32(host_out);
    for (v, o) in vals.iter().zip(&sq) {
        assert!((v * v - o).abs() < 1e-5);
    }

    // Re-specialize to cubes.
    p.set_int(power, 3);
    p.refresh().unwrap();
    p.run(1).unwrap();
    let cu = p.host_f32(host_out);
    for (v, o) in vals.iter().zip(&cu) {
        assert!((v * v * v - o).abs() < 1e-4);
    }

    // Back to squares: cache hit, no new compile.
    let misses_before = compiler.cache_stats().misses;
    p.set_int(power, 2);
    p.refresh().unwrap();
    assert_eq!(compiler.cache_stats().misses, misses_before);
    p.run(1).unwrap();
    assert_eq!(p.host_f32(host_out), sq);
}

/// The performance claims hold across devices: for each app, SK ≤ RE in
/// simulated time, and the C2070 beats the C1060 at the same (SK) config.
#[test]
fn performance_shape_holds() {
    let mp = MatchProblem {
        frame_w: 128,
        frame_h: 96,
        templ_w: 32,
        templ_h: 24,
        shift_w: 16,
        shift_h: 16,
        frames: 1,
    };
    let ms = synth::match_scenario(128, 96, 32, 24, 16, 16, 11);
    let mi = MatchImpl {
        tile_w: 8,
        tile_h: 8,
        threads: 64,
    };
    let mut times = Vec::new();
    for dev in DeviceConfig::presets() {
        let compiler = Compiler::new(dev);
        let re = template_match::run_gpu(&compiler, Variant::Re, &mp, &mi, &ms, false).unwrap();
        let sk = template_match::run_gpu(&compiler, Variant::Sk, &mp, &mi, &ms, false).unwrap();
        assert!(
            sk.run.sim_ms < re.run.sim_ms,
            "{}: SK {} !< RE {}",
            compiler.device().name,
            sk.run.sim_ms,
            re.run.sim_ms
        );
        times.push(sk.run.sim_ms);
    }
    assert!(times[1] < times[0], "C2070 must outrun C1060");
}
