//! Property tests for the central soundness claim: for any parameter
//! values, the specialized kernel computes exactly what the run-time-
//! evaluated kernel computes — specialization may only change *speed*,
//! never results.

use ks_core::{Compiler, Defines};
use ks_sim::{launch, DeviceConfig, DeviceState, KArg, LaunchDims, LaunchOptions};
use proptest::prelude::*;

const MATHTEST: &str = r#"
#ifndef LOOP_COUNT
#define LOOP_COUNT loopCount
#endif
#ifndef ARG_A
#define ARG_A argA
#endif
#ifndef ARG_B
#define ARG_B argB
#endif
__global__ void mathTest(int* in, int* out, int argA, int argB, int loopCount) {
    int acc = 0;
    const unsigned int stride = ARG_A * ARG_B;
    const unsigned int offset = blockIdx.x * blockDim.x + threadIdx.x;
    for (int i = 0; i < LOOP_COUNT; i++) {
        acc += *(in + offset + i * stride);
    }
    *(out + offset) = acc;
    return;
}
"#;

/// Integer arithmetic kernel exercising the strength-reduction paths:
/// division, modulo, and multiplication by a specializable constant.
const INTMATH: &str = r#"
#ifndef DIVISOR
#define DIVISOR divisor
#endif
#ifndef FACTOR
#define FACTOR factor
#endif
__global__ void intmath(int* in, int* out, int divisor, int factor, int n) {
    int i = (int)(blockIdx.x * blockDim.x + threadIdx.x);
    if (i < n) {
        unsigned int x = (unsigned int)in[i];
        unsigned int q = x / DIVISOR;
        unsigned int r = x % DIVISOR;
        int m = in[i] * FACTOR;
        out[i] = (int)q + (int)r * 1000 + m;
    }
}
"#;

#[allow(clippy::too_many_arguments)]
fn run_mathtest(
    st: &mut DeviceState,
    bin: &ks_core::Binary,
    p_in: u64,
    p_out: u64,
    a: i32,
    b: i32,
    lc: i32,
    blocks: u32,
    threads: u32,
    n: usize,
) -> Vec<i32> {
    launch(
        st,
        &bin.module,
        "mathTest",
        LaunchDims::linear(blocks, threads),
        &[
            KArg::Ptr(p_in),
            KArg::Ptr(p_out),
            KArg::I32(a),
            KArg::I32(b),
            KArg::I32(lc),
        ],
        LaunchOptions::default(),
    )
    .unwrap();
    st.global.read_i32_slice(p_out, n).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// RE ≡ SK for the Appendix-B kernel across random parameters, plus a
    /// host-computed oracle.
    #[test]
    fn mathtest_re_equals_sk(
        a in 1i32..6,
        b in 1i32..6,
        lc in 0i32..9,
        threads_pow in 5u32..8, // 32..128 threads
        blocks in 1u32..4,
    ) {
        let threads = 1 << threads_pow;
        let n = (threads * blocks) as usize;
        let elems = n + lc as usize * (a * b) as usize * n + 1;

        let compiler = Compiler::new(DeviceConfig::tesla_c1060());
        let re = compiler.compile(MATHTEST, Defines::new()).unwrap();
        let sk = compiler
            .compile(
                MATHTEST,
                Defines::new().def("LOOP_COUNT", lc).def("ARG_A", a).def("ARG_B", b),
            )
            .unwrap();

        let mut st = DeviceState::new(DeviceConfig::tesla_c1060(), 64 << 20);
        let p_in = st.global.alloc((elems * 4) as u64).unwrap();
        let p_out = st.global.alloc((n * 4) as u64).unwrap();
        let data: Vec<i32> = (0..elems as i32).map(|i| (i * 7) % 23 - 11).collect();
        st.global.write_i32_slice(p_in, &data).unwrap();

        let out_re = run_mathtest(&mut st, &re, p_in, p_out, a, b, lc, blocks, threads, n);
        let out_sk = run_mathtest(&mut st, &sk, p_in, p_out, a, b, lc, blocks, threads, n);
        prop_assert_eq!(&out_re, &out_sk);

        // Host oracle.
        let stride = (a * b) as usize;
        for (off, v) in out_re.iter().enumerate() {
            let expect: i32 = (0..lc as usize).map(|i| data[off + i * stride]).sum();
            prop_assert_eq!(*v, expect, "offset {}", off);
        }
    }

    /// Strength-reduced division/modulo/multiply (powers of two) agree with
    /// the run-time-evaluated forms and with host arithmetic.
    #[test]
    fn strength_reduction_preserves_semantics(
        div_pow in 0u32..8,
        factor in prop::sample::select(vec![1i32, 2, 3, 4, 8, 16, 128, 5]),
        seed in 0u32..1000,
    ) {
        let divisor = 1i32 << div_pow;
        let n = 64usize;
        let compiler = Compiler::new(DeviceConfig::tesla_c2070());
        let re = compiler.compile(INTMATH, Defines::new()).unwrap();
        let sk = compiler
            .compile(INTMATH, Defines::new().def("DIVISOR", divisor).def("FACTOR", factor))
            .unwrap();
        // The SK build of a pow2 divisor must contain no division at all.
        if divisor > 1 {
            prop_assert!(!sk.ptx.contains("div."), "pow2 divide must strength-reduce");
            prop_assert!(!sk.ptx.contains("rem."), "pow2 modulo must strength-reduce");
        }

        let mut st = DeviceState::new(DeviceConfig::tesla_c2070(), 16 << 20);
        let p_in = st.global.alloc((n * 4) as u64).unwrap();
        let p_out = st.global.alloc((n * 4) as u64).unwrap();
        let data: Vec<i32> = (0..n as i32).map(|i| i * 31 + seed as i32).collect();
        st.global.write_i32_slice(p_in, &data).unwrap();
        let args = [
            KArg::Ptr(p_in),
            KArg::Ptr(p_out),
            KArg::I32(divisor),
            KArg::I32(factor),
            KArg::I32(n as i32),
        ];
        let mut results = Vec::new();
        for bin in [&re, &sk] {
            launch(
                &mut st,
                &bin.module,
                "intmath",
                LaunchDims::linear(1, 64),
                &args,
                LaunchOptions::default(),
            )
            .unwrap();
            results.push(st.global.read_i32_slice(p_out, n).unwrap());
        }
        prop_assert_eq!(&results[0], &results[1]);
        for (i, v) in results[0].iter().enumerate() {
            let x = data[i] as u32;
            let expect = (x / divisor as u32) as i32
                + (x % divisor as u32) as i32 * 1000
                + data[i].wrapping_mul(factor);
            prop_assert_eq!(*v, expect);
        }
    }

    /// Unrolling equivalence for geometric (reduction-tree) loops.
    #[test]
    fn reduction_tree_unroll_equivalence(size_pow in 1u32..8) {
        let size = 1u32 << size_pow;
        let src = r#"
            #ifndef SIZE
            #define SIZE size
            #endif
            __global__ void tree(float* buf, int size) {
                __shared__ float red[256];
                unsigned int t = threadIdx.x;
                red[t] = buf[t];
                __syncthreads();
                for (unsigned int s = SIZE / 2u; s > 0u; s = s / 2u) {
                    if (t < s) { red[t] += red[t + s]; }
                    __syncthreads();
                }
                if (t == 0u) { buf[0] = red[0]; }
            }
        "#;
        let compiler = Compiler::new(DeviceConfig::tesla_c1060());
        let re = compiler.compile(src, Defines::new()).unwrap();
        let sk = compiler.compile(src, Defines::new().def("SIZE", size)).unwrap();
        let data: Vec<f32> = (0..size).map(|i| (i % 13) as f32).collect();
        let expect: f32 = data.iter().sum();
        let mut outs = Vec::new();
        for bin in [&re, &sk] {
            let mut st = DeviceState::new(DeviceConfig::tesla_c1060(), 8 << 20);
            let p = st.global.alloc(256 * 4).unwrap();
            st.global.write_f32_slice(p, &data).unwrap();
            let kargs = vec![KArg::Ptr(p), KArg::I32(size as i32)];
            launch(
                &mut st,
                &bin.module,
                "tree",
                LaunchDims::linear(1, size.max(32)),
                &kargs,
                LaunchOptions::default(),
            )
            .unwrap();
            outs.push(st.global.read_f32_slice(p, 1).unwrap()[0]);
        }
        prop_assert_eq!(outs[0], expect);
        prop_assert_eq!(outs[1], expect);
    }
}
