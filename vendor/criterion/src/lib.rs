//! Offline stand-in for the `criterion` crate.
//!
//! Implements just enough of the criterion API for the workspace's
//! `[[bench]]` targets to compile and produce useful wall-clock numbers:
//! `Criterion::benchmark_group`, `bench_function`, `Bencher::iter` /
//! `iter_batched`, and the `criterion_group!` / `criterion_main!`
//! macros. Measurement is a fixed-budget loop reporting the mean —
//! no statistical analysis, plots, or saved baselines.

use std::time::{Duration, Instant};

/// How batched setup output is sized (accepted for API compatibility).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup { _c: self }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, &mut f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, &mut f);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, f: &mut F) {
    let mut b = Bencher {
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if b.iters == 0 {
        println!("  {name}: no iterations recorded");
        return;
    }
    let mean = b.elapsed.as_secs_f64() / b.iters as f64;
    println!("  {name}: {:.3} us/iter ({} iters)", mean * 1e6, b.iters);
}

/// Passed to each benchmark closure; records timed iterations.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

/// Per-target time budget. Deliberately small: these stand-in numbers
/// guide development, they are not publication statistics.
const BUDGET: Duration = Duration::from_millis(200);

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        loop {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.elapsed += t0.elapsed();
            self.iters += 1;
            if start.elapsed() > BUDGET {
                break;
            }
        }
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let start = Instant::now();
        loop {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            self.elapsed += t0.elapsed();
            self.iters += 1;
            if start.elapsed() > BUDGET {
                break;
            }
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut c = Criterion::default();
        let mut ran = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| ran += 1);
        });
        assert!(ran > 0);
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        let mut setups = 0u64;
        let mut runs = 0u64;
        g.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    setups
                },
                |v| {
                    runs += 1;
                    v
                },
                BatchSize::SmallInput,
            );
        });
        g.finish();
        assert_eq!(setups, runs);
        assert!(runs > 0);
    }
}
