//! Offline stand-in for the `parking_lot` crate.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors the tiny API subset it actually uses: a `Mutex`
//! whose `lock()` returns the guard directly (no poisoning `Result`).
//! Backed by `std::sync::Mutex`; a poisoned lock is recovered rather
//! than propagated, matching parking_lot's no-poisoning semantics.

use std::sync::PoisonError;

/// A mutual-exclusion primitive with parking_lot's panic-free `lock()`.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// A condition variable paired with [`Mutex`]. The wait methods take and
/// return the guard by value (std style, since [`MutexGuard`] is std's);
/// poisoning is recovered like everywhere else in this stub.
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar(std::sync::Condvar::new())
    }

    /// Block until notified. Spurious wakeups are possible, as with any
    /// condvar; prefer [`Condvar::wait_while`].
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.0.wait(guard).unwrap_or_else(PoisonError::into_inner)
    }

    /// Block until `condition` returns false.
    pub fn wait_while<'a, T, F>(&self, guard: MutexGuard<'a, T>, condition: F) -> MutexGuard<'a, T>
    where
        F: FnMut(&mut T) -> bool,
    {
        self.0
            .wait_while(guard, condition)
            .unwrap_or_else(PoisonError::into_inner)
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_blocks_on_contention() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = std::sync::Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let guard = cv.wait_while(m.lock(), |ready| !*ready);
            assert!(*guard);
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }
}
