//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach crates.io, so this vendored crate
//! reimplements the subset of proptest the workspace's property tests
//! use: the [`Strategy`] trait with `prop_map`/`boxed`, range / tuple /
//! string-pattern / collection / select strategies, `prop_oneof!`, and
//! the `proptest!` test macro with `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from upstream, deliberately accepted:
//! * no shrinking — a failing case reports the generated value via the
//!   normal assertion message instead of a minimized one;
//! * string strategies support only the `[class]{m,n}` regex shape the
//!   tests use;
//! * generation is seeded deterministically from the test's module path
//!   and case index, so failures reproduce exactly on re-run.

pub mod test_runner {
    /// Deterministic splitmix64 generator used to drive all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> TestRng {
            TestRng { state: seed }
        }

        /// Seed derived from the test name and case index: stable across
        /// runs (reproducible failures) and distinct across tests.
        pub fn for_case(test_name: &str, case: u32) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                state: h ^ ((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A generator of random values (no shrinking in this stand-in).
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                keep: f,
            }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    trait DynStrategy<T> {
        fn dyn_sample(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_sample(&self, rng: &mut TestRng) -> S::Value {
            self.sample(rng)
        }
    }

    /// Type-erased, cheaply cloneable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> BoxedStrategy<T> {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.dyn_sample(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        keep: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.sample(rng);
                if (self.keep)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 consecutive samples");
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct OneOf<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> OneOf<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> OneOf<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { arms }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].sample(rng)
        }
    }

    macro_rules! impl_range_int {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128 % span) as i128;
                    (self.start as i128 + v) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    let v = (rng.next_u64() as u128 % span) as i128;
                    (lo as i128 + v) as $t
                }
            }
        )*};
    }
    impl_range_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! impl_tuple {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple!(A: 0);
    impl_tuple!(A: 0, B: 1);
    impl_tuple!(A: 0, B: 1, C: 2);
    impl_tuple!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

    /// `"[class]{m,n}"` string-pattern strategy (the only regex shape the
    /// workspace's tests use).
    impl Strategy for &str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            let (chars, min, max) = parse_pattern(self);
            let len = min + rng.below((max - min + 1) as u64) as usize;
            (0..len)
                .map(|_| chars[rng.below(chars.len() as u64) as usize])
                .collect()
        }
    }

    fn parse_pattern(pat: &str) -> (Vec<char>, usize, usize) {
        let inner = pat
            .strip_prefix('[')
            .and_then(|r| r.split_once(']'))
            .unwrap_or_else(|| panic!("unsupported string pattern {pat:?} (want [class]{{m,n}})"));
        let (class, rest) = inner;
        let mut chars = Vec::new();
        let mut it = class.chars().peekable();
        while let Some(c) = it.next() {
            let c = if c == '\\' {
                match it.next() {
                    Some('n') => '\n',
                    Some('t') => '\t',
                    Some('r') => '\r',
                    Some(other) => other,
                    None => panic!("dangling escape in {pat:?}"),
                }
            } else {
                c
            };
            if it.peek() == Some(&'-') {
                let mut probe = it.clone();
                probe.next();
                if let Some(&hi) = probe.peek() {
                    it.next();
                    it.next();
                    for v in (c as u32)..=(hi as u32) {
                        chars.extend(char::from_u32(v));
                    }
                    continue;
                }
            }
            chars.push(c);
        }
        assert!(!chars.is_empty(), "empty character class in {pat:?}");
        let counts = rest
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
            .unwrap_or_else(|| panic!("unsupported repetition in {pat:?}"));
        let (min, max) = match counts.split_once(',') {
            Some((a, b)) => (a.trim().parse().unwrap(), b.trim().parse().unwrap()),
            None => {
                let n = counts.trim().parse().unwrap();
                (n, n)
            }
        };
        assert!(min <= max, "bad repetition bounds in {pat:?}");
        (chars, min, max)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for [`vec`]: a fixed size or a half-open range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max_exclusive: *r.end() + 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Strategy for `Vec`s whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Uniform choice from a non-empty list of options.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from empty list");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

/// Per-`proptest!` block configuration (subset of upstream's fields).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test function.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of upstream's `prop` path aliases (`prop::collection`, …).
    pub mod prop {
        pub use crate::{collection, sample};
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_tuples_and_maps_compose() {
        let s = (0i32..10, 5usize..6).prop_map(|(a, b)| a as usize + b);
        let mut rng = TestRng::from_seed(3);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((5..15).contains(&v));
        }
    }

    #[test]
    fn string_patterns_respect_class_and_length() {
        let mut rng = TestRng::from_seed(9);
        for _ in 0..200 {
            let s = "[a-c\\n]{2,5}".sample(&mut rng);
            assert!((2..=5).contains(&s.chars().count()));
            assert!(s.chars().all(|c| matches!(c, 'a'..='c' | '\n')));
        }
    }

    #[test]
    fn oneof_uses_every_arm() {
        let s = prop_oneof![0i32..1, 10i32..11, 20i32..21];
        let mut rng = TestRng::from_seed(11);
        let mut seen = [false; 3];
        for _ in 0..100 {
            match s.sample(&mut rng) {
                0 => seen[0] = true,
                10 => seen[1] = true,
                20 => seen[2] = true,
                other => panic!("unexpected sample {other}"),
            }
        }
        assert!(seen.iter().all(|s| *s), "arms hit: {seen:?}");
    }

    #[test]
    fn boxed_strategies_clone_and_recurse() {
        fn tree(depth: u32) -> BoxedStrategy<u32> {
            if depth == 0 {
                return (0u32..4).boxed();
            }
            let sub = tree(depth - 1);
            prop_oneof![sub.clone(), (sub, 0u32..4).prop_map(|(a, b)| a + b)].boxed()
        }
        let s = tree(3);
        let mut rng = TestRng::from_seed(5);
        for _ in 0..50 {
            assert!(s.sample(&mut rng) <= 12);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        /// The macro itself: multiple args, trailing comma, asserts.
        #[test]
        fn macro_generates_cases(
            xs in prop::collection::vec(0u8..4, 0..6),
            label in prop::sample::select(vec!["a", "b"]),
        ) {
            prop_assert!(xs.len() < 6);
            prop_assert!(xs.iter().all(|&x| x < 4), "bad element in {:?}", xs);
            prop_assert!(label == "a" || label == "b");
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a = TestRng::for_case("x::y", 3).next_u64();
        let b = TestRng::for_case("x::y", 3).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, TestRng::for_case("x::y", 4).next_u64());
    }
}
