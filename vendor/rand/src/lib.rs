//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build container cannot reach crates.io, so this vendored crate
//! provides the surface the workspace actually uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::gen_range` over half-open
//! ranges of the primitive integer and float types. The generator is
//! splitmix64 — deterministic, seedable, and statistically far better
//! than the synthetic-data use cases here require. It is *not* the
//! same stream as upstream `StdRng` (ChaCha12), which only matters if
//! golden outputs were recorded against upstream; none were.

use std::ops::Range;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (range.start as i128 + v) as $t
            }
        }
    )*};
}
impl_sample_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_sample_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                // 53 random bits -> uniform in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let lo = range.start as f64;
                let hi = range.end as f64;
                let v = lo + unit * (hi - lo);
                // Guard against rounding up to the excluded endpoint.
                if v >= hi { range.start } else { v as $t }
            }
        }
    )*};
}
impl_sample_float!(f32, f64);

/// The random-value source trait (subset of `rand::Rng`).
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_range(self, 0.0..1.0) < p
    }
}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    /// Deterministic splitmix64 generator standing in for `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            super::splitmix64(&mut self.state)
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let i = rng.gen_range(-5i32..17);
            assert!((-5..17).contains(&i));
            let u = rng.gen_range(3usize..9);
            assert!((3..9).contains(&u));
            let f = rng.gen_range(0.25f32..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn integer_range_covers_endpoints() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(
            seen.iter().all(|s| *s),
            "all of 0..4 should appear: {seen:?}"
        );
    }
}
