//! Offline stand-in for the `rayon` crate.
//!
//! Provides the API subset the workspace uses — `par_iter()` on slices
//! with `for_each` / `try_for_each` / `map`+`collect` — implemented
//! with `std::thread::scope` over per-thread chunks. Work is split
//! eagerly into one contiguous chunk per available core (no work
//! stealing); for the simulator's homogeneous per-block workloads that
//! is within noise of real rayon.

use std::num::NonZeroUsize;

fn threads_for(len: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(4);
    cores.min(len).max(1)
}

/// Parallel iterator over an immutable slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        let _ = self.try_for_each::<(), _>(|item| {
            f(item);
            Ok(())
        });
    }

    pub fn try_for_each<E, F>(self, f: F) -> Result<(), E>
    where
        E: Send,
        F: Fn(&'a T) -> Result<(), E> + Sync,
    {
        let n = threads_for(self.items.len());
        if n <= 1 {
            return self.items.iter().try_for_each(f);
        }
        let chunk = self.items.len().div_ceil(n);
        let f = &f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .items
                .chunks(chunk)
                .map(|c| scope.spawn(move || c.iter().try_for_each(f)))
                .collect();
            let mut result = Ok(());
            for h in handles {
                let r = h.join().expect("rayon-stub worker panicked");
                if result.is_ok() {
                    result = r;
                }
            }
            result
        })
    }

    pub fn map<U, F>(self, f: F) -> ParMap<'a, T, F>
    where
        U: Send,
        F: Fn(&'a T) -> U + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// Lazily mapped parallel iterator; realized by [`ParMap::collect`].
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    pub fn collect<U, C>(self) -> C
    where
        U: Send,
        F: Fn(&'a T) -> U + Sync,
        C: FromIterator<U>,
    {
        let n = threads_for(self.items.len());
        if n <= 1 {
            return self.items.iter().map(&self.f).collect();
        }
        let chunk = self.items.len().div_ceil(n);
        let f = &self.f;
        let per_chunk: Vec<Vec<U>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .items
                .chunks(chunk)
                .map(|c| scope.spawn(move || c.iter().map(f).collect::<Vec<U>>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rayon-stub worker panicked"))
                .collect()
        });
        per_chunk.into_iter().flatten().collect()
    }
}

/// Extension trait giving slices and `Vec`s a `par_iter()`.
pub trait IntoParallelRefIterator<T> {
    fn par_iter(&self) -> ParIter<'_, T>;
}

impl<T: Sync> IntoParallelRefIterator<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { items: self }
    }
}

impl<T: Sync> IntoParallelRefIterator<T> for Vec<T> {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { items: self }
    }
}

pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn try_for_each_visits_everything() {
        let items: Vec<u64> = (0..1000).collect();
        let sum = AtomicU64::new(0);
        items
            .par_iter()
            .try_for_each::<(), _>(|&v| {
                sum.fetch_add(v, Ordering::Relaxed);
                Ok(())
            })
            .unwrap();
        assert_eq!(sum.load(Ordering::Relaxed), 1000 * 999 / 2);
    }

    #[test]
    fn try_for_each_propagates_errors() {
        let items: Vec<u64> = (0..100).collect();
        let r = items
            .par_iter()
            .try_for_each(|&v| if v == 63 { Err(v) } else { Ok(()) });
        assert_eq!(r, Err(63));
    }

    #[test]
    fn map_collect_preserves_order() {
        let items: Vec<u64> = (0..257).collect();
        let doubled: Vec<u64> = items.par_iter().map(|v| v * 2).collect();
        assert_eq!(doubled, (0..257).map(|v| v * 2).collect::<Vec<_>>());
    }
}
